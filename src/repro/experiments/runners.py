"""Spec runners: the bridge from declarative specs to the engines.

Each entry compiles one ``ExperimentSpec`` cell into a call against an
existing engine — the wall-clock harness experiments, the virtual-time
simulation engine, or the multi-process scale-out engine — and returns
the engine's :class:`~repro.harness.results.ExperimentResult`.  The
experiment runner calls the same entry once per repetition with a
distinct seed; everything above this layer deals in aggregates only.

The ``cew`` runner is the fully generic cell: binding x fault schedule x
phases x properties against the Closed Economy Workload in virtual time,
deterministic per seed — the cell the CI perf gate runs, because its
numbers are reproducible across machines.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from ..harness.results import ExperimentResult, Point, Series

__all__ = ["RunnerInfo", "RUNNERS", "SpecValidationError", "runner_names"]


class SpecValidationError(ValueError):
    """An experiment spec that cannot run; the message says how to fix it."""


@dataclass(frozen=True)
class RunnerInfo:
    """One registered spec runner.

    ``fn(seed=..., quick=..., **params)`` must return an
    :class:`ExperimentResult`.  ``allowed_params`` is the closed set of
    spec ``params`` keys the runner accepts (unknown keys are spec
    errors, not silently ignored kwargs); ``validate`` may add
    runner-specific checks beyond key membership.
    """

    name: str
    fn: Callable[..., ExperimentResult]
    engine: str  # "wall" | "sim" | "scaleout"
    x_label: str = "threads"
    allowed_params: frozenset[str] = frozenset()
    description: str = ""
    validate: Callable[[Mapping[str, object]], None] | None = None
    #: Runners whose output is a pure function of the seed (virtual or
    #: fake time only) — safe to gate CI on across machines.
    deterministic: bool = False


# ---------------------------------------------------------------------------
# The generic virtual-time CEW cell
# ---------------------------------------------------------------------------

#: Phases a cew cell may run, in their only legal order.
CEW_PHASES = ("load", "run")


def _validate_cew_params(params: Mapping[str, object]) -> None:
    from ..sim.campaign import FAULT_SCHEDULES, SIM_BINDINGS

    binding = params.get("binding", "txn")
    if binding not in SIM_BINDINGS:
        raise SpecValidationError(
            f"unknown binding {binding!r}; the cew runner accepts one of "
            f"{sorted(SIM_BINDINGS)} (HTTP bindings need the scaleout "
            "engine — use the fig2mp runner)"
        )
    schedule = params.get("schedule", "baseline")
    if isinstance(schedule, str):
        if schedule != "none" and schedule not in FAULT_SCHEDULES:
            raise SpecValidationError(
                f"unknown fault schedule {schedule!r}; use one of "
                f"{sorted(FAULT_SCHEDULES) + ['none']} or an inline "
                "{'fault.<knob>': value} mapping"
            )
    elif not isinstance(schedule, Mapping):
        raise SpecValidationError(
            f"schedule must be a name or a mapping, got {type(schedule).__name__}"
        )
    phases = params.get("phases", CEW_PHASES)
    if isinstance(phases, str) or not isinstance(phases, Sequence):
        raise SpecValidationError(
            f"phases must be a sequence of phase names, got {phases!r}"
        )
    phases = tuple(phases)
    if len(set(phases)) != len(phases):
        raise SpecValidationError(
            f"conflicting phases {list(phases)}: each phase may appear once"
        )
    for phase in phases:
        if phase not in CEW_PHASES:
            raise SpecValidationError(
                f"unknown phase {phase!r}; valid phases are {list(CEW_PHASES)}"
            )
    if not phases:
        raise SpecValidationError("phases must not be empty")
    if phases == ("run",):
        raise SpecValidationError(
            "conflicting phases ['run']: the run phase needs the load phase "
            "first (every seed starts from an empty store); use "
            "['load', 'run']"
        )
    if phases not in (("load",), ("load", "run")):
        raise SpecValidationError(
            f"phases {list(phases)} are out of order; the only legal orders "
            f"are ['load'] and ['load', 'run']"
        )
    thread_counts = params.get("thread_counts")
    if thread_counts is not None:
        if isinstance(thread_counts, str) or not isinstance(thread_counts, Sequence):
            raise SpecValidationError(
                f"thread_counts must be a sequence of ints, got {thread_counts!r}"
            )
        for count in thread_counts:
            if not isinstance(count, int) or count < 1:
                raise SpecValidationError(
                    f"thread_counts entries must be ints >= 1, got {count!r}"
                )
    properties = params.get("properties", {})
    if not isinstance(properties, Mapping):
        raise SpecValidationError(
            f"properties must be a mapping of workload properties, got "
            f"{type(properties).__name__}"
        )


def run_cew_cell(
    seed: int = 0,
    quick: bool = True,
    binding: str = "txn",
    schedule: str | Mapping[str, str] = "baseline",
    phases: Sequence[str] = CEW_PHASES,
    thread_counts: Sequence[int] | None = None,
    properties: Mapping[str, str] | None = None,
) -> ExperimentResult:
    """One generic CEW cell in deterministic virtual time.

    Built on the simulation campaign's single-run machinery: load phase
    fault-free, the named fault schedule switched on for the measured run
    phase, every sleep on a fresh :class:`SimClock`.  ``thread_counts``
    turns the cell into a sweep (one point per thread count, each on its
    own clock and store); without it the cell is a single point at the
    configured ``threadcount``.
    """
    from ..sim.campaign import run_sim

    _validate_cew_params(
        {
            "binding": binding,
            "schedule": schedule,
            "phases": tuple(phases),
            "thread_counts": tuple(thread_counts) if thread_counts is not None else None,
            "properties": properties or {},
        }
    )
    phases = tuple(phases)
    overrides = {str(key): str(value) for key, value in (properties or {}).items()}
    if not quick:
        # The full variant runs 4x the operations unless the spec pins them.
        base_ops = int(overrides.get("operationcount", "400"))
        overrides.setdefault("operationcount", str(base_ops * 4))
    schedule_arg: str | Mapping[str, str]
    if schedule == "none":
        schedule_arg = {}
    else:
        schedule_arg = schedule

    schedule_label = schedule if isinstance(schedule, str) else "custom"
    result = ExperimentResult(
        experiment="cew",
        description=(
            f"Closed Economy Workload cell: {binding} binding, "
            f"{schedule_label} fault schedule, virtual time"
        ),
        notes=[
            f"phases: {'+'.join(phases)}",
            "deterministic: every metric is a pure function of the seed",
        ],
    )
    series = Series(label=f"{binding}/{schedule_label}")
    sweep = tuple(thread_counts) if thread_counts else (None,)
    for threads in sweep:
        point_overrides = dict(overrides)
        if threads is not None:
            point_overrides["threadcount"] = str(threads)
        run = run_sim(
            binding=binding,
            properties=point_overrides,
            seed=seed,
            schedule=schedule_arg,
            trace=False,
        )
        if run.errors:
            raise RuntimeError(
                f"cew cell (seed {seed}, threads {threads}) reported errors: "
                f"{run.errors}"
            )
        measured_run = phases != ("load",)
        operations = run.operations if measured_run else run.load_operations
        virtual_s = run.run_time_virtual_s
        x = float(threads) if threads is not None else float(
            int(run.properties.get("threadcount", "1"))
        )
        series.points.append(
            Point(
                x=x,
                throughput=(operations / virtual_s) if virtual_s > 0 else 0.0,
                anomaly_score=run.gamma,
                operations=operations,
                failed_operations=run.failed_operations,
                extra={
                    "events_processed": run.events_processed,
                    "virtual_run_time_s": virtual_s,
                },
            )
        )
    result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _harness(name: str):
    """Late import of a harness experiment (keeps import cost off the CLI)."""
    def call(seed: int = 42, quick: bool = True, **params):
        from .. import harness

        return getattr(harness, name)(quick=quick, seed=seed, **params)

    return call


RUNNERS: dict[str, RunnerInfo] = {}


def _register(info: RunnerInfo) -> None:
    RUNNERS[info.name] = info


def runner_names() -> list[str]:
    return sorted(RUNNERS)


_register(
    RunnerInfo(
        name="cew",
        fn=run_cew_cell,
        engine="sim",
        x_label="threads",
        allowed_params=frozenset(
            {"binding", "schedule", "phases", "thread_counts", "properties"}
        ),
        description="generic CEW cell: binding x fault schedule x phases, virtual time",
        validate=_validate_cew_params,
        deterministic=True,
    )
)
_register(
    RunnerInfo(
        name="fig2",
        fn=_harness("fig2_cloud_scaling"),
        engine="wall",
        allowed_params=frozenset({"thread_counts", "mixes", "scale"}),
        description="Fig. 2: throughput vs threads against the simulated WAS container",
    )
)
_register(
    RunnerInfo(
        name="sim_figure2",
        fn=_harness("sim_figure2"),
        engine="sim",
        allowed_params=frozenset({"thread_counts", "mixes"}),
        description="Fig. 2 regenerated in deterministic virtual time",
        deterministic=True,
    )
)
_register(
    RunnerInfo(
        name="fig2mp",
        fn=_harness("figure2_multiprocess"),
        engine="scaleout",
        x_label="processes",
        allowed_params=frozenset({"process_counts", "threads_per_worker"}),
        description="Fig. 2 with real worker processes over the scale-out engine",
    )
)
_register(
    RunnerInfo(
        name="fig3",
        fn=_harness("fig3_transaction_overhead"),
        engine="wall",
        allowed_params=frozenset({"thread_counts", "scale"}),
        description="Fig. 3: transactional vs raw throughput",
    )
)
_register(
    RunnerInfo(
        name="fig4",
        fn=_harness("fig4_anomaly_score"),
        engine="wall",
        allowed_params=frozenset({"thread_counts", "scale"}),
        description="Fig. 4: threads vs anomaly score",
    )
)
_register(
    RunnerInfo(
        name="fig5",
        fn=_harness("fig5_raw_scaling"),
        engine="wall",
        allowed_params=frozenset({"thread_counts", "scale"}),
        description="Fig. 5: threads vs raw throughput",
    )
)
_register(
    RunnerInfo(
        name="tier5",
        fn=_harness("tier5_operation_overhead"),
        engine="wall",
        allowed_params=frozenset({"scale", "threads"}),
        description="Tier 5: per-operation transactional overhead table",
    )
)
_register(
    RunnerInfo(
        name="tier6",
        fn=_harness("tier6_consistency"),
        engine="wall",
        allowed_params=frozenset({"scale", "threads"}),
        description="Tier 6: consistency validation, raw vs transactional",
    )
)
_register(
    RunnerInfo(
        name="ablation",
        fn=_harness("ablation_coordinators"),
        engine="wall",
        x_label="oracle RPC delay (ms)",
        allowed_params=frozenset({"oracle_delays_ms", "scale", "threads"}),
        description="coordinator designs vs central-oracle RPC delay",
    )
)
_register(
    RunnerInfo(
        name="isolation",
        fn=_harness("isolation_matrix"),
        engine="wall",
        allowed_params=frozenset({"scale", "threads"}),
        description="anomaly-targeting workloads vs isolation level",
    )
)
_register(
    RunnerInfo(
        name="staleness",
        fn=_harness("staleness_curve"),
        engine="wall",
        x_label="delay (ms)",
        allowed_params=frozenset({"delays_ms", "lag_ms", "samples"}),
        description="stale-read probability vs time since write (fake clock)",
        deterministic=True,
    )
)
