"""Run a spec N times and aggregate per-metric statistics.

Every repetition produces an :class:`ExperimentResult`; this module
aligns them (same series labels, same x positions — a structural
mismatch between repetitions is a bug, not noise, and raises) and folds
each numeric metric at each point into a :class:`SampleStats`, keeping
the per-repetition raw values alongside so nothing is lost to the
aggregation.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..harness.results import ExperimentResult
from ..measurements.hdr import HdrHistogramMeasurement
from .spec import ExperimentSpec
from .stats import SampleStats, summarize

__all__ = [
    "MetricSample",
    "AggregatePoint",
    "AggregateSeries",
    "LatencyAggregate",
    "AggregateResult",
    "run_spec",
    "aggregate_results",
]

#: Point attributes always treated as metrics (beyond numeric ``extra``).
_POINT_METRICS = ("throughput", "anomaly_score", "operations", "failed_operations")


@dataclass(frozen=True)
class MetricSample:
    """One metric at one point: the N raw values and their summary."""

    stats: SampleStats
    values: tuple[float, ...]

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricSample":
        return cls(stats=summarize(values), values=tuple(float(v) for v in values))


@dataclass
class AggregatePoint:
    x: float
    metrics: dict[str, MetricSample]


@dataclass
class AggregateSeries:
    label: str
    points: list[AggregatePoint] = field(default_factory=list)


@dataclass
class LatencyAggregate:
    """One operation's latency across repetitions.

    The merged view (``count`` / ``mean_us`` / ``p*_us``) comes from a
    lossless elementwise merge of the per-repetition HDR histograms, so
    its percentiles are the percentiles of the pooled sample.  The
    ``*_per_rep`` samples keep each repetition as one observation and
    carry the CI band — ``p99_per_rep.stats.ci95`` is the confidence
    band on p99 across seeds.
    """

    operation: str
    count: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    max_us: float
    mean_per_rep: MetricSample
    p95_per_rep: MetricSample
    p99_per_rep: MetricSample


@dataclass
class AggregateResult:
    """N repetitions of one spec, folded into per-metric statistics."""

    spec: ExperimentSpec
    seeds: list[int]
    description: str
    notes: list[str]
    series: list[AggregateSeries]
    #: Tables with numeric cells replaced by ``MetricSample``; non-numeric
    #: cells keep the first repetition's value (they are labels).
    tables: dict[str, list[dict[str, Any]]]
    #: Wall-clock seconds each repetition took (measurement overhead view).
    repetition_wall_s: list[float] = field(default_factory=list)
    #: Per-operation latency aggregates; empty when the runner attaches
    #: no histograms (most runners).
    latency: dict[str, LatencyAggregate] = field(default_factory=dict)

    @property
    def repetitions(self) -> int:
        return len(self.seeds)

    def series_by_label(self, label: str) -> AggregateSeries:
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(f"no series labelled {label!r} in {self.spec.name}")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _point_metric_values(points: Sequence[Any], attribute: str) -> list[float] | None:
    values = [getattr(point, attribute) for point in points]
    if any(value is None for value in values):
        # A metric missing in any repetition is dropped (anomaly_score on
        # load-only phases, for instance) — a partial sample would bias CI.
        return None
    return [float(value) for value in values]


def _aggregate_series(
    spec_name: str, results: Sequence[ExperimentResult]
) -> list[AggregateSeries]:
    reference = results[0]
    labels = [series.label for series in reference.series]
    for index, result in enumerate(results):
        got = [series.label for series in result.series]
        if got != labels:
            raise ValueError(
                f"{spec_name}: repetition {index} produced series {got}, "
                f"expected {labels} — repetitions must be structurally identical"
            )
    aggregated: list[AggregateSeries] = []
    for series_index, label in enumerate(labels):
        per_rep = [result.series[series_index] for result in results]
        xs = [point.x for point in per_rep[0].points]
        for rep_index, series in enumerate(per_rep):
            got_xs = [point.x for point in series.points]
            if got_xs != xs:
                raise ValueError(
                    f"{spec_name}: series {label!r} repetition {rep_index} has "
                    f"x positions {got_xs}, expected {xs}"
                )
        out = AggregateSeries(label=label)
        for point_index, x in enumerate(xs):
            points = [series.points[point_index] for series in per_rep]
            metrics: dict[str, MetricSample] = {}
            for attribute in _POINT_METRICS:
                values = _point_metric_values(points, attribute)
                if values is not None:
                    metrics[attribute] = MetricSample.of(values)
            extra_keys = set().union(*(point.extra.keys() for point in points))
            for key in sorted(extra_keys):
                raw = [point.extra.get(key) for point in points]
                if all(_is_number(value) for value in raw):
                    metrics[key] = MetricSample.of([float(v) for v in raw])
            out.points.append(AggregatePoint(x=float(x), metrics=metrics))
        aggregated.append(out)
    return aggregated


def _aggregate_tables(
    spec_name: str, results: Sequence[ExperimentResult]
) -> dict[str, list[dict[str, Any]]]:
    reference = results[0]
    names = list(reference.tables)
    for index, result in enumerate(results):
        if list(result.tables) != names:
            raise ValueError(
                f"{spec_name}: repetition {index} produced tables "
                f"{list(result.tables)}, expected {names}"
            )
    aggregated: dict[str, list[dict[str, Any]]] = {}
    for name in names:
        per_rep = [result.tables[name] for result in results]
        row_count = len(per_rep[0])
        if any(len(rows) != row_count for rows in per_rep):
            raise ValueError(
                f"{spec_name}: table {name!r} row counts differ across "
                f"repetitions ({[len(rows) for rows in per_rep]})"
            )
        out_rows: list[dict[str, Any]] = []
        for row_index in range(row_count):
            rows = [rep_rows[row_index] for rep_rows in per_rep]
            out_row: dict[str, Any] = {}
            for column in rows[0]:
                cells = [row.get(column) for row in rows]
                if all(_is_number(cell) for cell in cells):
                    out_row[column] = MetricSample.of([float(c) for c in cells])
                else:
                    out_row[column] = cells[0]
            out_rows.append(out_row)
        aggregated[name] = out_rows
    return aggregated


def _aggregate_latency(
    spec_name: str, results: Sequence[ExperimentResult]
) -> dict[str, LatencyAggregate]:
    reference = results[0]
    operations = sorted(reference.histograms)
    for index, result in enumerate(results):
        got = sorted(result.histograms)
        if got != operations:
            raise ValueError(
                f"{spec_name}: repetition {index} produced histograms for "
                f"{got}, expected {operations} — repetitions must be "
                "structurally identical"
            )
    aggregated: dict[str, LatencyAggregate] = {}
    for operation in operations:
        per_rep = [
            HdrHistogramMeasurement.from_dict(result.histograms[operation])
            for result in results
        ]
        merged = HdrHistogramMeasurement.from_dict(results[0].histograms[operation])
        for other in per_rep[1:]:
            merged.merge_from(other)
        pooled = merged.summary()
        per_rep_summaries = [rep.summary() for rep in per_rep]
        aggregated[operation] = LatencyAggregate(
            operation=operation,
            count=pooled.count,
            mean_us=pooled.average_us,
            p50_us=merged.percentile_us(0.50),
            p95_us=pooled.percentile_95_us,
            p99_us=pooled.percentile_99_us,
            max_us=float(pooled.max_us),
            mean_per_rep=MetricSample.of([s.average_us for s in per_rep_summaries]),
            p95_per_rep=MetricSample.of(
                [s.percentile_95_us for s in per_rep_summaries]
            ),
            p99_per_rep=MetricSample.of(
                [s.percentile_99_us for s in per_rep_summaries]
            ),
        )
    return aggregated


def aggregate_results(
    spec: ExperimentSpec,
    seeds: Sequence[int],
    results: Sequence[ExperimentResult],
    repetition_wall_s: Sequence[float] = (),
) -> AggregateResult:
    """Fold per-repetition results into one aggregate."""
    if len(results) != len(seeds) or not results:
        raise ValueError(
            f"{spec.name}: {len(results)} results for {len(seeds)} seeds"
        )
    reference = results[0]
    return AggregateResult(
        spec=spec,
        seeds=list(seeds),
        description=reference.description or spec.description,
        notes=list(reference.notes),
        series=_aggregate_series(spec.name, results),
        tables=_aggregate_tables(spec.name, results),
        repetition_wall_s=list(repetition_wall_s),
        latency=_aggregate_latency(spec.name, results),
    )


def run_spec(
    spec: ExperimentSpec,
    on_repetition: Callable[[int, int, ExperimentResult], None] | None = None,
) -> AggregateResult:
    """Execute every repetition of ``spec`` and aggregate.

    ``on_repetition(index, seed, result)`` fires after each repetition —
    the CLI uses it for progress lines.
    """
    info = spec.info
    seeds = spec.seeds()
    results: list[ExperimentResult] = []
    walls: list[float] = []
    for index, seed in enumerate(seeds):
        started = time.perf_counter()
        result = info.fn(seed=seed, quick=spec.quick, **dict(spec.params))
        walls.append(time.perf_counter() - started)
        results.append(result)
        if on_repetition is not None:
            on_repetition(index, seed, result)
    return aggregate_results(spec, seeds, results, repetition_wall_s=walls)
