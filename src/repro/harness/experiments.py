"""Per-figure experiment definitions.

Each public function reproduces one figure or table of the paper and
returns an :class:`~repro.harness.results.ExperimentResult` whose series
carry the same rows/lines the paper reports.  All experiments run
entirely in-process against the simulated substrates (see DESIGN.md for
the substitutions) with seeded randomness.

Every function takes a ``quick`` flag: ``True`` (default) uses scaled-down
operation counts suitable for the test suite and the benchmark harness;
``False`` runs a longer, lower-noise version.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from ..bindings.kv import KVStoreDB
from ..bindings.txn import TxnDB
from ..core.client import BenchmarkResult, Client
from ..core.closed_economy import ClosedEconomyWorkload
from ..core.db import DB
from ..kvstore.cloud import WAS_PROFILE, SimulatedCloudStore
from ..kvstore.latency import ConstantLatency, LatencyInjectingStore
from ..kvstore.memory import InMemoryKVStore
from ..measurements.registry import Measurements
from ..txn.clock import TimestampOracle
from ..txn.manager import ClientTransactionManager
from ..txn.retso import RetsoLikeManager, TransactionStatusOracle
from ..txn.percolator import PercolatorLikeManager
from .contention import ContendedDB, ContentionModel
from .results import ExperimentResult, Point, Series
from .runner import cew_properties

__all__ = [
    "fig2_cloud_scaling",
    "sim_figure2",
    "figure2_multiprocess",
    "fig3_transaction_overhead",
    "fig4_anomaly_score",
    "fig5_raw_scaling",
    "tier5_operation_overhead",
    "tier6_consistency",
    "ablation_coordinators",
    "staleness_curve",
    "THREADS_FIG2",
    "THREADS_LOCAL",
    "PROCESSES_FIG2",
]

#: Thread counts of Fig. 2 (EC2 -> WAS) and Figs. 3-5 (local store).
THREADS_FIG2 = (1, 2, 4, 8, 16, 32, 64, 128)
THREADS_LOCAL = (1, 2, 4, 8, 16)

#: Latency scale relative to the paper's testbed (10 = ten times faster).
DEFAULT_SCALE = 10.0


def _run_cew_phases(
    properties,
    load_factory: Callable[[], DB],
    run_factory: Callable[[], DB],
) -> BenchmarkResult:
    """Load with one binding, run with another, shared workload state."""
    measurements = Measurements()
    workload = ClosedEconomyWorkload()
    workload.init(properties, measurements)
    load_props = properties.merged({"threadcount": properties.get_str("loadthreads", "8")})
    Client(workload, load_factory, load_props, Measurements()).load()
    return Client(workload, run_factory, properties, measurements).run()


# ---------------------------------------------------------------------------
# Figure 2 — YCSB+T throughput on EC2 with WAS
# ---------------------------------------------------------------------------

def fig2_cloud_scaling(
    quick: bool = True,
    thread_counts: Sequence[int] = THREADS_FIG2,
    mixes: Sequence[float] = (0.9, 0.8, 0.7),
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
) -> ExperimentResult:
    """Transactions/s vs client threads against a simulated WAS container.

    Reproduces the three curves of Fig. 2 (read proportions 0.9/0.8/0.7):
    linear scaling while threads are latency-bound, a plateau once the
    container's request-rate ceiling is reached, and a decline at high
    thread counts once the client's serialised per-operation cost exceeds
    the ceiling (the "thread contention" the paper describes).
    """
    result = ExperimentResult(
        experiment="fig2",
        description="YCSB+T throughput on EC2 with WAS (simulated container)",
        notes=[
            f"latency scale 1/{scale:g} of the real service",
            "client contention model: 20us + 3us/thread serialised per request",
        ],
    )
    ops_per_thread = 50 if quick else 400
    for read_proportion in mixes:
        label = f"{int(read_proportion * 100)}:{int(round((1 - read_proportion) * 100))}"
        series = Series(label=label)
        for threads in thread_counts:
            store = SimulatedCloudStore(WAS_PROFILE, scale=scale, rng=random.Random(seed))
            fast_manager = ClientTransactionManager(store.backing_store)
            slow_manager = ClientTransactionManager(store)
            contention = ContentionModel(base_cost_s=20e-6, per_thread_cost_s=3e-6)
            properties = cew_properties(
                recordcount=1000 if quick else 10000,
                operationcount=max(300, ops_per_thread * threads),
                readproportion=read_proportion,
                readmodifywriteproportion=0.0,
                updateproportion=round(1.0 - read_proportion, 6),
                threadcount=threads,
                seed=seed,
            )
            run = _run_cew_phases(
                properties,
                load_factory=lambda: TxnDB(properties, manager=fast_manager),
                run_factory=lambda: ContendedDB(
                    TxnDB(properties, manager=slow_manager), contention
                ),
            )
            series.points.append(
                Point(
                    x=threads,
                    throughput=run.throughput,
                    anomaly_score=run.anomaly_score,
                    operations=run.operations,
                    failed_operations=run.failed_operations,
                    extra={"throttled_requests": store.throttled_requests},
                )
            )
        result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# Figure 2, virtual time — the same curve under deterministic simulation
# ---------------------------------------------------------------------------

def sim_figure2(
    quick: bool = True,
    thread_counts: Sequence[int] = THREADS_FIG2,
    mixes: Sequence[float] = (0.9, 0.8, 0.7),
    seed: int = 42,
) -> ExperimentResult:
    """Fig. 2 regenerated entirely in virtual time.

    Same substrate as :func:`fig2_cloud_scaling` — simulated WAS container
    behind the transaction manager, client contention model — but every
    point runs under a :class:`~repro.sim.scheduler.SimClock`, so the
    latency profile needs no speed-up scaling: the store pays the *real*
    service's ~15/25 ms medians against its 1000 req/s ceiling, thousands
    of simulated seconds complete in wall seconds, and the whole figure is
    a pure function of ``seed``.  The contention model's serialised cost
    (20 us + 30 us/thread on a FIFO virtual resource) crosses the
    container ceiling between 64 and 128 threads, reproducing the paper's
    rise, plateau and right-hand decline.
    """
    from ..sim.clock import use_clock
    from ..sim.scheduler import SimClock
    from .contention import VirtualTimeContentionModel

    result = ExperimentResult(
        experiment="sim_figure2",
        description="YCSB+T throughput vs threads, deterministic virtual time (simulated WAS)",
        notes=[
            "virtual-time simulation: unscaled WAS latency (15/25 ms medians, "
            "1000 req/s ceiling)",
            "client contention model: 20us + 30us/thread serialised per request "
            "(FIFO virtual resource)",
        ],
    )
    ops_per_thread = 30 if quick else 200
    for read_proportion in mixes:
        label = f"{int(read_proportion * 100)}:{int(round((1 - read_proportion) * 100))}"
        series = Series(label=label)
        for threads in thread_counts:
            clock = SimClock()
            with use_clock(clock):
                store = SimulatedCloudStore(
                    WAS_PROFILE, scale=1.0, rng=random.Random(seed)
                )
                fast_manager = ClientTransactionManager(store.backing_store)
                slow_manager = ClientTransactionManager(store)
                contention = VirtualTimeContentionModel(
                    clock, base_cost_s=20e-6, per_thread_cost_s=30e-6
                )
                properties = cew_properties(
                    recordcount=400 if quick else 4000,
                    operationcount=max(240, ops_per_thread * threads),
                    readproportion=read_proportion,
                    readmodifywriteproportion=0.0,
                    updateproportion=round(1.0 - read_proportion, 6),
                    threadcount=threads,
                    seed=seed,
                )
                run = _run_cew_phases(
                    properties,
                    load_factory=lambda: TxnDB(properties, manager=fast_manager),
                    run_factory=lambda: ContendedDB(
                        TxnDB(properties, manager=slow_manager), contention
                    ),
                )
            series.points.append(
                Point(
                    x=threads,
                    throughput=run.throughput,
                    anomaly_score=run.anomaly_score,
                    operations=run.operations,
                    failed_operations=run.failed_operations,
                    extra={
                        "throttled_requests": store.throttled_requests,
                        "virtual_run_time_s": run.run_time_ms / 1000.0,
                        "events_processed": clock.scheduler.events_processed,
                    },
                )
            )
        result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# Figure 2, multi-process — real worker processes against one HTTP store
# ---------------------------------------------------------------------------

#: Worker-process counts swept by :func:`figure2_multiprocess`.
PROCESSES_FIG2 = (1, 2, 4, 8)


def figure2_multiprocess(
    quick: bool = True,
    process_counts: Sequence[int] = PROCESSES_FIG2,
    threads_per_worker: int = 2,
    seed: int = 42,
) -> ExperimentResult:
    """Throughput vs *worker processes* against one rate-limited HTTP store.

    The in-process Fig. 2 reproduction sweeps threads inside one
    interpreter, so past ~8 workers it measures the GIL.  This variant
    sweeps real processes: the parent serves a simulated cloud container
    (latency + request-rate ceiling, queueing on throttle) over HTTP, and
    each point spawns N worker processes through the scale-out engine —
    barrier-started, keyspace-sharded, results merged.  The curve is the
    paper's shape for honest reasons: linear rise while workers are
    latency-bound, then a plateau pinned at the container's ceiling.

    Each worker runs a fixed per-worker operation budget, so the x axis
    scales offered load exactly like adding client machines does.
    """
    from ..http.server import KVStoreHTTPServer
    from ..kvstore.cloud import CloudStoreProfile
    from ..scaleout import ScaleoutSpec, run_scaleout

    # Low, tight latency and a ceiling low enough that a handful of
    # 2-thread workers saturate it; queueing (not rejection) on throttle
    # produces the plateau, as with a real cloud client library.
    profile = CloudStoreProfile(
        name="multiprocess",
        read_median_s=0.003,
        write_median_s=0.003,
        sigma=0.05,
        requests_per_second=100.0,
        burst=16.0,
        reject_on_throttle=False,
    )
    record_count = 200 if quick else 1000
    ops_per_worker = 150 if quick else 1500
    result = ExperimentResult(
        experiment="figure2_multiprocess",
        description="Throughput vs worker processes against one rate-limited HTTP store",
        notes=[
            f"store: {profile.read_median_s * 1000:.0f} ms median latency, "
            f"{profile.requests_per_second:.0f} req/s ceiling (queueing)",
            f"{threads_per_worker} threads and {ops_per_worker} ops per worker process",
        ],
    )
    series = Series(label="90:10 read/rmw")
    for processes in process_counts:
        store = SimulatedCloudStore(profile, rng=random.Random(seed + processes))
        with KVStoreHTTPServer(store) as server:
            spec = ScaleoutSpec(
                processes=processes,
                db="raw_http",
                properties=dict(
                    cew_properties(
                        recordcount=record_count,
                        operationcount=ops_per_worker,
                        totalcash=record_count * 1000,
                        readproportion=0.9,
                        updateproportion=0.0,
                        readmodifywriteproportion=0.1,
                        threadcount=threads_per_worker,
                        seed=seed + processes,
                    ).as_dict()
                )
                | {
                    "workload": "closed_economy",
                    # Client-side batched load: claim 25 records per call,
                    # coalesced into POST /batch by the batching wrapper.
                    "batchsize": "25",
                    "http.batchsize": "25",
                },
                phases=("load", "run"),
                store_address=server.address,
            )
            scaleout = run_scaleout(spec)
            if scaleout.worker_errors:
                raise RuntimeError(
                    f"{processes}-process point failed: {scaleout.worker_errors}"
                )
            run = scaleout.run
            requests = server.request_counts
        series.points.append(
            Point(
                x=processes,
                throughput=run.throughput,
                anomaly_score=scaleout.anomaly_score,
                operations=run.operations,
                failed_operations=run.failed_operations,
                extra={
                    "throttled_requests": store.throttled_requests,
                    "http_requests": requests,
                    "rate_ceiling": profile.requests_per_second,
                },
            )
        )
    result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# Figure 3 — impact of transactions on throughput
# ---------------------------------------------------------------------------

def fig3_transaction_overhead(
    quick: bool = True,
    thread_counts: Sequence[int] = THREADS_LOCAL,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
) -> ExperimentResult:
    """Non-transactional vs transactional throughput, threads 1..16.

    Both paths run the same CEW 90:10 read/read-modify-write mix against
    the same store with the same per-request latency; the transactional
    path pays the commit protocol's extra store requests.  The paper
    reports a 30-40 % throughput reduction.
    """
    result = ExperimentResult(
        experiment="fig3",
        description="Impact of transactions on throughput",
        notes=[f"store request latency {12 / scale:.2f} ms (paper-equivalent 12 ms)"],
    )
    latency_s = 0.012 / scale
    ops_per_thread = 120 if quick else 1000
    raw_series = Series(label="non-transactional")
    txn_series = Series(label="transactional")
    for threads in thread_counts:
        properties = cew_properties(
            recordcount=500 if quick else 10000,
            operationcount=max(300, ops_per_thread * threads),
            threadcount=threads,
            seed=seed,
        )
        # Raw path: plain store operations, start/commit are no-ops.
        raw_backing = InMemoryKVStore()
        raw_store = LatencyInjectingStore(raw_backing, ConstantLatency(latency_s))
        raw_run = _run_cew_phases(
            properties,
            load_factory=lambda: KVStoreDB(raw_backing, properties),
            run_factory=lambda: KVStoreDB(raw_store, properties),
        )
        raw_series.points.append(
            Point(
                x=threads,
                throughput=raw_run.throughput,
                anomaly_score=raw_run.anomaly_score,
                operations=raw_run.operations,
                failed_operations=raw_run.failed_operations,
            )
        )
        # Transactional path: same store shape behind the txn manager.
        txn_backing = InMemoryKVStore()
        txn_store = LatencyInjectingStore(txn_backing, ConstantLatency(latency_s))
        fast_manager = ClientTransactionManager(txn_backing)
        slow_manager = ClientTransactionManager(txn_store)
        txn_run = _run_cew_phases(
            properties,
            load_factory=lambda: TxnDB(properties, manager=fast_manager),
            run_factory=lambda: TxnDB(properties, manager=slow_manager),
        )
        txn_series.points.append(
            Point(
                x=threads,
                throughput=txn_run.throughput,
                anomaly_score=txn_run.anomaly_score,
                operations=txn_run.operations,
                failed_operations=txn_run.failed_operations,
            )
        )
    result.series.extend([raw_series, txn_series])
    overhead_rows = []
    for raw_point, txn_point in zip(raw_series.points, txn_series.points):
        reduction = 1.0 - (txn_point.throughput / raw_point.throughput) if raw_point.throughput else 0.0
        overhead_rows.append(
            {
                "threads": int(raw_point.x),
                "raw_ops_sec": raw_point.throughput,
                "txn_ops_sec": txn_point.throughput,
                "reduction": reduction,
            }
        )
    result.tables["overhead"] = overhead_rows
    return result


# ---------------------------------------------------------------------------
# Figures 4 & 5 — anomaly score and throughput on the raw local store
# ---------------------------------------------------------------------------

def _fig45_run(
    quick: bool, thread_counts: Sequence[int], scale: float, seed: int
) -> list[tuple[int, BenchmarkResult]]:
    """Shared runs behind Figs. 4 and 5 (same experiment, two plots).

    The store pays a fixed per-request latency modelling the paper's local
    HTTP hop (~1.5 ms there, scaled here).  Keeping the per-thread rate
    latency-bound is what preserves Fig. 5's linear scaling to 16 threads:
    client threads spend their time blocked in (simulated) I/O, exactly as
    the paper's did, rather than contending for the interpreter.
    """
    latency_s = max(0.0005, 0.0015 / scale)
    # Fixed operation count across thread counts, exactly like the paper's
    # 1 000 000: the anomaly score normalises drift by operations, so the
    # denominator must not change along the x axis.
    operation_count = 6000 if quick else 100_000
    runs: list[tuple[int, BenchmarkResult]] = []
    for threads in thread_counts:
        backing = InMemoryKVStore()
        store = LatencyInjectingStore(backing, ConstantLatency(latency_s))
        properties = cew_properties(
            recordcount=300 if quick else 10000,
            operationcount=operation_count,
            threadcount=threads,
            seed=seed + threads,
        )
        run = _run_cew_phases(
            properties,
            load_factory=lambda: KVStoreDB(backing, properties),
            run_factory=lambda: KVStoreDB(store, properties),
        )
        runs.append((threads, run))
    return runs


def fig4_anomaly_score(
    quick: bool = True,
    thread_counts: Sequence[int] = THREADS_LOCAL,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
) -> ExperimentResult:
    """Threads vs anomaly score, non-transactional store (Fig. 4).

    One thread produces no anomalies (no concurrency); more threads and
    the Zipfian hot set produce racing read-modify-writes whose lost
    updates the CEW validation stage quantifies.
    """
    result = ExperimentResult(
        experiment="fig4",
        description="Number of threads vs anomaly score (CEW, non-transactional)",
    )
    series = Series(label="anomaly score")
    for threads, run in _fig45_run(quick, thread_counts, scale, seed):
        series.points.append(
            Point(
                x=threads,
                throughput=run.throughput,
                anomaly_score=run.anomaly_score,
                operations=run.operations,
                failed_operations=run.failed_operations,
            )
        )
    result.series.append(series)
    return result


def fig5_raw_scaling(
    quick: bool = True,
    thread_counts: Sequence[int] = THREADS_LOCAL,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
) -> ExperimentResult:
    """Threads vs throughput for the same runs (Fig. 5): near-linear."""
    result = ExperimentResult(
        experiment="fig5",
        description="Number of threads vs throughput (CEW, non-transactional)",
    )
    series = Series(label="throughput")
    for threads, run in _fig45_run(quick, thread_counts, scale, seed):
        series.points.append(
            Point(
                x=threads,
                throughput=run.throughput,
                anomaly_score=run.anomaly_score,
                operations=run.operations,
                failed_operations=run.failed_operations,
            )
        )
    result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# Tier 5 — per-operation transactional overhead
# ---------------------------------------------------------------------------

def tier5_operation_overhead(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
    threads: int = 4,
) -> ExperimentResult:
    """Latency of each DB operation inside vs outside transactions.

    The Tier-5 table: for every raw operation (READ, UPDATE, ...) the
    latency measured on the raw path and on the transactional path, plus
    the transactional-bookkeeping operations START/COMMIT/ABORT in both
    modes (no-ops on the raw path, real work on the transactional path).
    """
    latency_s = 0.0015 / scale
    operation_count = 2000 if quick else 20000
    mix = {
        "readproportion": 0.5,
        "updateproportion": 0.2,
        "readmodifywriteproportion": 0.2,
        "insertproportion": 0.05,
        "deleteproportion": 0.05,
    }

    def run_mode(transactional: bool) -> dict[str, object]:
        backing = InMemoryKVStore()
        store = LatencyInjectingStore(backing, ConstantLatency(latency_s))
        properties = cew_properties(
            recordcount=500 if quick else 5000,
            operationcount=operation_count,
            threadcount=threads,
            seed=seed,
            **mix,
        )
        if transactional:
            fast_manager = ClientTransactionManager(backing)
            slow_manager = ClientTransactionManager(store)
            run = _run_cew_phases(
                properties,
                load_factory=lambda: TxnDB(properties, manager=fast_manager),
                run_factory=lambda: TxnDB(properties, manager=slow_manager),
            )
        else:
            run = _run_cew_phases(
                properties,
                load_factory=lambda: KVStoreDB(backing, properties),
                run_factory=lambda: KVStoreDB(store, properties),
            )
        return {"run": run, "summaries": run.measurements.summaries()}

    raw = run_mode(transactional=False)
    txn = run_mode(transactional=True)
    result = ExperimentResult(
        experiment="tier5",
        description="Tier 5: transactional overhead per operation",
        notes=[f"store request latency {latency_s * 1000:.2f} ms, {threads} threads"],
    )
    rows = []
    operations = sorted(
        set(raw["summaries"]) | set(txn["summaries"]),  # type: ignore[arg-type]
    )
    for operation in operations:
        raw_summary = raw["summaries"].get(operation)  # type: ignore[union-attr]
        txn_summary = txn["summaries"].get(operation)  # type: ignore[union-attr]
        rows.append(
            {
                "operation": operation,
                "raw_count": raw_summary.count if raw_summary else 0,
                "raw_avg_us": raw_summary.average_us if raw_summary else None,
                "txn_count": txn_summary.count if txn_summary else 0,
                "txn_avg_us": txn_summary.average_us if txn_summary else None,
            }
        )
    result.tables["operations"] = rows
    raw_run: BenchmarkResult = raw["run"]  # type: ignore[assignment]
    txn_run: BenchmarkResult = txn["run"]  # type: ignore[assignment]
    result.tables["throughput"] = [
        {
            "mode": "raw",
            "ops_sec": raw_run.throughput,
            "anomaly_score": raw_run.anomaly_score,
        },
        {
            "mode": "transactional",
            "ops_sec": txn_run.throughput,
            "anomaly_score": txn_run.anomaly_score,
        },
    ]
    return result


# ---------------------------------------------------------------------------
# Tier 6 — consistency validation
# ---------------------------------------------------------------------------

def tier6_consistency(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
    threads: int = 8,
) -> ExperimentResult:
    """Anomaly score with and without transactions at fixed concurrency.

    The Tier-6 claim in one table: the same contended workload yields a
    non-zero anomaly score on the raw store and exactly zero under the
    client-coordinated transaction manager (aborts instead of anomalies).
    """
    latency_s = 0.0015 / scale
    operation_count = 4000 if quick else 40000
    rows = []
    for mode in ("raw", "transactional"):
        backing = InMemoryKVStore()
        store = LatencyInjectingStore(backing, ConstantLatency(latency_s))
        properties = cew_properties(
            recordcount=500 if quick else 10000,
            operationcount=operation_count,
            threadcount=threads,
            seed=seed,
        )
        if mode == "transactional":
            run = _run_cew_phases(
                properties,
                load_factory=lambda: TxnDB(
                    properties, manager=ClientTransactionManager(backing)
                ),
                run_factory=lambda: TxnDB(
                    properties, manager=ClientTransactionManager(store)
                ),
            )
        else:
            run = _run_cew_phases(
                properties,
                load_factory=lambda: KVStoreDB(backing, properties),
                run_factory=lambda: KVStoreDB(store, properties),
            )
        validation = run.validation
        rows.append(
            {
                "mode": mode,
                "anomaly_score": run.anomaly_score,
                "validation_passed": validation.passed if validation else None,
                "operations": run.operations,
                "aborted": run.failed_operations,
                "throughput": run.throughput,
            }
        )
    result = ExperimentResult(
        experiment="tier6",
        description="Tier 6: consistency validation, raw vs transactional",
        notes=[f"{threads} threads, zipfian contention"],
    )
    result.tables["consistency"] = rows
    return result


# ---------------------------------------------------------------------------
# Ablation — coordinator designs under WAN-like oracle latency
# ---------------------------------------------------------------------------

def ablation_coordinators(
    quick: bool = True,
    oracle_delays_ms: Sequence[float] = (0.0, 1.0, 4.0),
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
    threads: int = 8,
) -> ExperimentResult:
    """Client-coordinated vs Percolator-style vs ReTSO-style commit.

    §II-B argues central timestamp/status oracles become the bottleneck
    over long-haul networks while the client-coordinated design does not
    depend on any central service.  The sweep raises the oracle's RPC
    delay and measures throughput for each coordinator; the
    client-coordinated line stays flat (it has no oracle to slow down).
    """
    latency_s = 0.0015 / scale
    operation_count = 1500 if quick else 15000
    result = ExperimentResult(
        experiment="ablation",
        description="Coordinator designs vs central-oracle RPC delay",
        notes=[f"store request latency {latency_s * 1000:.2f} ms, {threads} threads"],
    )

    def build_manager(kind: str, store, delay_s: float):
        if kind == "client-coordinated":
            return ClientTransactionManager(store)
        if kind == "percolator-style":
            return PercolatorLikeManager(store, oracle=TimestampOracle(rpc_delay_s=delay_s))
        return RetsoLikeManager(
            store, oracle=TransactionStatusOracle(rpc_delay_s=delay_s)
        )

    for kind in ("client-coordinated", "percolator-style", "retso-style"):
        series = Series(label=kind)
        for delay_ms in oracle_delays_ms:
            backing = InMemoryKVStore()
            store = LatencyInjectingStore(backing, ConstantLatency(latency_s))
            properties = cew_properties(
                recordcount=500 if quick else 5000,
                operationcount=operation_count,
                threadcount=threads,
                seed=seed,
            )
            fast_manager = build_manager(kind, backing, 0.0)
            slow_manager = build_manager(kind, store, delay_ms / 1000.0)
            run = _run_cew_phases(
                properties,
                load_factory=lambda: TxnDB(properties, manager=fast_manager),
                run_factory=lambda: TxnDB(properties, manager=slow_manager),
            )
            series.points.append(
                Point(
                    x=delay_ms,
                    throughput=run.throughput,
                    anomaly_score=run.anomaly_score,
                    operations=run.operations,
                    failed_operations=run.failed_operations,
                )
            )
        result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# Staleness curve — Wada et al.'s measurement, from the paper's §VI
# ---------------------------------------------------------------------------

def staleness_curve(
    quick: bool = True,
    delays_ms: Sequence[float] = (0.0, 10.0, 25.0, 40.0, 49.0, 51.0, 75.0, 100.0),
    lag_ms: float = 50.0,
    samples: int | None = None,
    seed: int = 3,
) -> ExperimentResult:
    """Stale-read probability vs time since write (the paper's §VI).

    "For clouds, Wada et al measured the probability of returning stale
    values, as a function of how much time had elapsed between the latest
    write and the read."  Probed here against the asynchronously
    replicated store on a fake clock, once with replica reads (stale
    inside the lag, fresh beyond it) and once with primary reads (never
    stale).  Each point's ``throughput`` column carries the stale-read
    probability; the run is a pure function of ``seed``.
    """
    from ..kvstore import ReadPreference, ReplicatedKVStore
    from ..validation import StalenessProbe

    sample_count = samples if samples is not None else (40 if quick else 400)
    result = ExperimentResult(
        experiment="staleness",
        description="Stale-read probability vs time since write (replicated store)",
        notes=[
            f"replication lag {lag_ms:g} ms, {sample_count} probes per delay",
            "'throughput' column = stale-read probability (0..1)",
        ],
    )
    for label, preference in (
        ("replica reads", ReadPreference.REPLICA),
        ("primary reads", ReadPreference.PRIMARY),
    ):
        clock = [0.0]
        store = ReplicatedKVStore(
            replica_count=2,
            lag_seconds=lag_ms / 1000.0,
            read_preference=preference,
            rng=random.Random(seed),
            clock=lambda: clock[0],
        )
        probe = StalenessProbe(
            store, sleep=lambda seconds: clock.__setitem__(0, clock[0] + seconds)
        )
        curve = probe.curve(
            [delay / 1000.0 for delay in delays_ms], samples=sample_count
        )
        series = Series(label=label)
        for delay_s, probability in curve:
            series.points.append(
                Point(
                    x=delay_s * 1000.0,
                    throughput=probability,
                    operations=sample_count,
                    extra={"stale_probability": probability},
                )
            )
        result.series.append(series)
    return result


# ---------------------------------------------------------------------------
# Isolation matrix — anomaly-targeting workloads (§VII future work)
# ---------------------------------------------------------------------------

def isolation_matrix(
    quick: bool = True,
    scale: float = DEFAULT_SCALE,
    seed: int = 42,
    threads: int = 8,
) -> ExperimentResult:
    """Which anomaly survives which isolation level.

    Runs the three anomaly-targeting workloads (lost update, write skew,
    read skew / fractured reads) under raw access, snapshot isolation and
    the serializable mode, reporting each combination's anomaly score,
    abort count and throughput.  The expected matrix:

    ============  ====  ========  ============
    anomaly       raw   snapshot  serializable
    ============  ====  ========  ============
    lost update   yes   no        no
    write skew    yes   yes       no
    read skew     yes   no        no
    ============  ====  ========  ============
    """
    from ..workloads import LostUpdateWorkload, ReadSkewWorkload, WriteSkewWorkload

    latency_s = 0.0015 / scale
    operation_count = 2500 if quick else 20000
    result = ExperimentResult(
        experiment="isolation",
        description="Anomaly-targeting workloads vs isolation level",
        notes=[f"{threads} threads, store latency {latency_s * 1000:.2f} ms"],
    )
    rows = []
    workload_classes = (
        ("lost-update", LostUpdateWorkload),
        ("write-skew", WriteSkewWorkload),
        ("read-skew", ReadSkewWorkload),
    )
    for workload_name, workload_class in workload_classes:
        for mode in ("raw", "snapshot", "serializable"):
            from ..core.properties import Properties

            properties = Properties(
                {
                    "recordcount": "8",
                    "paircount": "8",
                    "operationcount": str(operation_count),
                    "threadcount": str(threads),
                    "seed": str(seed),
                }
            )
            backing = InMemoryKVStore()
            store = LatencyInjectingStore(backing, ConstantLatency(latency_s))
            workload = workload_class()
            measurements = Measurements()
            workload.init(properties, measurements)
            if mode == "raw":
                load_factory = lambda: KVStoreDB(backing, properties)  # noqa: E731
                run_factory = lambda: KVStoreDB(store, properties)  # noqa: E731
            else:
                fast = ClientTransactionManager(backing)
                slow = ClientTransactionManager(store, isolation=mode)
                load_factory = lambda: TxnDB(properties, manager=fast)  # noqa: E731
                run_factory = lambda: TxnDB(properties, manager=slow)  # noqa: E731
            Client(workload, load_factory, properties, Measurements()).load()
            run = Client(workload, run_factory, properties, measurements).run()
            validation = run.validation
            rows.append(
                {
                    "workload": workload_name,
                    "isolation": mode,
                    "anomaly_score": validation.anomaly_score if validation else None,
                    "anomalous": not validation.passed if validation else None,
                    "aborted": run.failed_operations,
                    "throughput": run.throughput,
                }
            )
    result.tables["matrix"] = rows
    return result
