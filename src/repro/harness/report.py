"""Plain-text rendering of experiment results.

Prints each reproduced figure as the series of rows the paper plots, in a
fixed-width table a reader can compare against the original figure.
"""

from __future__ import annotations

import io

from .results import ExperimentResult, Series

__all__ = ["render_experiment", "render_experiment_json", "render_series_table"]


def _format_cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _render_table(headers: list[str], rows: list[list[object]], out: io.StringIO) -> None:
    rendered = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    out.write(line + "\n")
    out.write("  ".join("-" * width for width in widths) + "\n")
    for row in rendered:
        out.write("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)) + "\n")


def render_series_table(series_list: list[Series], x_label: str = "x") -> str:
    """All series side by side: one row per x, one column pair per series."""
    out = io.StringIO()
    xs: list[float] = []
    for series in series_list:
        for point in series.points:
            if point.x not in xs:
                xs.append(point.x)
    xs.sort()
    headers = [x_label]
    for series in series_list:
        headers.append(f"{series.label} ops/s")
        if any(point.anomaly_score is not None for point in series.points):
            headers.append(f"{series.label} anomaly")
    rows: list[list[object]] = []
    for x in xs:
        row: list[object] = [int(x) if float(x).is_integer() else x]
        for series in series_list:
            point = next((p for p in series.points if p.x == x), None)
            row.append(point.throughput if point else None)
            if any(p.anomaly_score is not None for p in series.points):
                row.append(point.anomaly_score if point else None)
        rows.append(row)
    _render_table(headers, rows, out)
    return out.getvalue()


def render_experiment(result: ExperimentResult, x_label: str = "threads") -> str:
    """A complete text report for one experiment."""
    out = io.StringIO()
    out.write(f"== {result.experiment}: {result.description} ==\n")
    for note in result.notes:
        out.write(f"   note: {note}\n")
    if result.series:
        out.write("\n")
        out.write(render_series_table(result.series, x_label=x_label))
    for table_name, table_rows in result.tables.items():
        out.write(f"\n-- {table_name} --\n")
        if not table_rows:
            continue
        headers = list(table_rows[0].keys())
        rows = [[row.get(header) for header in headers] for row in table_rows]
        _render_table(headers, rows, out)
    return out.getvalue()


def render_experiment_json(result: ExperimentResult) -> str:
    """Machine-readable JSON of one experiment (the ``BENCH_*.json`` shape).

    Carries every series point and table row, so figure trajectories can
    be regenerated or diffed mechanically without re-running the harness.
    """
    import json as _json

    document = {
        "experiment": result.experiment,
        "description": result.description,
        "notes": list(result.notes),
        "series": [
            {
                "label": series.label,
                "points": [
                    {
                        "x": point.x,
                        "throughput": point.throughput,
                        "anomaly_score": point.anomaly_score,
                        "operations": point.operations,
                        "failed_operations": point.failed_operations,
                        **({"extra": point.extra} if point.extra else {}),
                    }
                    for point in series.points
                ],
            }
            for series in result.series
        ],
        "tables": result.tables,
    }
    return _json.dumps(document, indent=2, sort_keys=True)


def render_experiment_csv(result: ExperimentResult) -> str:
    """Machine-readable CSV of an experiment's series and tables.

    Series rows: ``series,label,x,throughput,anomaly_score,operations,
    failed_operations``.  Table rows follow, one header per table.
    """
    import csv as _csv
    import io as _io

    buffer = _io.StringIO()
    writer = _csv.writer(buffer)
    if result.series:
        writer.writerow(
            ["series", "label", "x", "throughput", "anomaly_score",
             "operations", "failed_operations"]
        )
        for series in result.series:
            for point in series.points:
                writer.writerow(
                    [
                        "series",
                        series.label,
                        point.x,
                        f"{point.throughput:.3f}",
                        "" if point.anomaly_score is None else f"{point.anomaly_score:.6g}",
                        point.operations,
                        point.failed_operations,
                    ]
                )
    for table_name, rows in result.tables.items():
        if not rows:
            continue
        headers = list(rows[0].keys())
        writer.writerow([f"table:{table_name}", *headers])
        for row in rows:
            writer.writerow(["", *[row.get(h, "") for h in headers]])
    return buffer.getvalue()
