"""Client-side thread-contention model.

The paper observes that raising the client thread count past 32 *reduces*
net throughput ("our investigations indicate that this may be a result of
thread contention") — the benchmark client itself, not the store, becomes
the bottleneck.  This module makes that effect explicit and tunable:

Each data operation must pass through a critical section shared by all
client threads (the stand-in for the client runtime's serialised work:
scheduler churn, allocator/GC, socket-pool locks).  The time spent inside
grows linearly with the number of registered threads,

    cost(N) = base_cost_s + per_thread_cost_s * N,

so with few threads the section is negligible, while at high N the
serialised capacity ``1 / cost(N)`` drops below the store's rate ceiling
and aggregate throughput falls — reproducing Fig. 2's right-hand side.

Busy-waiting is used for sub-millisecond costs because ``time.sleep``
cannot resolve tens of microseconds reliably; the spin runs inside the
critical section, which is exactly the semantics being modelled.
:class:`VirtualTimeContentionModel` is the simulation-safe variant: under
a :class:`~repro.sim.scheduler.SimClock` a busy-wait would hang forever
(virtual time only advances when the running task sleeps), so it books
the serialised cost on a FIFO virtual resource instead.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping

from ..core.db import DB
from ..core.status import Status
from ..sim.clock import Clock, get_clock
from ..sim.scheduler import VirtualResource

__all__ = ["ContentionModel", "VirtualTimeContentionModel", "ContendedDB"]


class ContentionModel:
    """Shared serialised-work model for one simulated client host."""

    def __init__(self, base_cost_s: float = 20e-6, per_thread_cost_s: float = 3e-6):
        if base_cost_s < 0 or per_thread_cost_s < 0:
            raise ValueError("costs must be >= 0")
        self._base = base_cost_s
        self._per_thread = per_thread_cost_s
        self._lock = threading.Lock()
        self._registered = 0

    def register_thread(self) -> None:
        """One more client thread now shares this host."""
        with self._lock:
            self._registered += 1

    def unregister_thread(self) -> None:
        with self._lock:
            self._registered = max(0, self._registered - 1)

    @property
    def thread_count(self) -> int:
        return self._registered

    def cost_s(self) -> float:
        """Current serialised cost of one operation."""
        return self._base + self._per_thread * self._registered

    def pay(self) -> None:
        """Spend the serialised cost inside the shared critical section."""
        cost = self.cost_s()
        if cost <= 0:
            return
        with self._lock:
            if cost < 0.001:
                deadline = time.perf_counter() + cost
                while time.perf_counter() < deadline:
                    pass
            else:
                time.sleep(cost)


class VirtualTimeContentionModel(ContentionModel):
    """Contention model safe under a simulated clock.

    Same cost curve as :class:`ContentionModel`, but the serialised
    critical section is a :class:`~repro.sim.scheduler.VirtualResource`:
    each operation reserves ``cost(N)`` seconds of the shared resource
    (FIFO) and sleeps until its reservation completes, so contention
    costs virtual time — one scheduler event — instead of a spin that
    would never let virtual time advance.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        base_cost_s: float = 20e-6,
        per_thread_cost_s: float = 3e-6,
    ):
        super().__init__(base_cost_s=base_cost_s, per_thread_cost_s=per_thread_cost_s)
        self._resource = VirtualResource(clock if clock is not None else get_clock())

    def pay(self) -> None:
        self._resource.occupy(self.cost_s())


class ContendedDB(DB):
    """Routes every data operation of an inner DB through a contention model."""

    def __init__(self, inner: DB, model: ContentionModel):
        super().__init__(inner.properties)
        self._inner = inner
        self._model = model

    def init(self) -> None:
        self._model.register_thread()
        self._inner.init()

    def cleanup(self) -> None:
        self._inner.cleanup()
        self._model.unregister_thread()

    def read(self, table: str, key: str, fields: set[str] | None = None):
        self._model.pay()
        return self._inner.read(table, key, fields)

    def scan(self, table: str, start_key: str, record_count: int, fields: set[str] | None = None):
        self._model.pay()
        return self._inner.scan(table, start_key, record_count, fields)

    def update(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        self._model.pay()
        return self._inner.update(table, key, values)

    def insert(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        self._model.pay()
        return self._inner.insert(table, key, values)

    def delete(self, table: str, key: str) -> Status:
        self._model.pay()
        return self._inner.delete(table, key)

    def start(self) -> Status:
        return self._inner.start()

    def commit(self) -> Status:
        return self._inner.commit()

    def abort(self) -> Status:
        return self._inner.abort()
