"""Shared machinery for running paper experiments in-process."""

from __future__ import annotations

from collections.abc import Callable, Mapping

from ..core.client import BenchmarkResult, Client
from ..core.closed_economy import ClosedEconomyWorkload
from ..core.db import DB
from ..core.properties import Properties
from ..core.workload import Workload
from ..measurements.registry import Measurements

__all__ = ["cew_properties", "run_phase_pair", "run_cew"]


def cew_properties(**overrides: object) -> Properties:
    """Baseline Closed Economy Workload configuration (Listing 2 shape).

    Defaults are scaled down from the paper's 10 000 records / 1 000 000
    operations so experiments finish in seconds; every experiment passes
    explicit overrides for the knobs it sweeps.
    """
    base: dict[str, str] = {
        "table": "usertable",
        "recordcount": "1000",
        "operationcount": "10000",
        "totalcash": "1000000",
        "readproportion": "0.9",
        "readmodifywriteproportion": "0.1",
        "requestdistribution": "zipfian",
        "fieldcount": "1",
        "fieldlength": "100",
        "writeallfields": "true",
        "readallfields": "true",
        "threadcount": "1",
        "seed": "42",
    }
    for key, value in overrides.items():
        base[key] = str(value)
    return Properties(base)


def run_phase_pair(
    workload: Workload,
    db_factory: Callable[[], DB],
    properties: Properties,
) -> tuple[BenchmarkResult, BenchmarkResult]:
    """Load then run one workload; returns (load result, run result)."""
    measurements = Measurements.from_properties(properties)
    workload.init(properties, measurements)
    client = Client(workload, db_factory, properties, measurements)
    load_result = client.load()
    run_result = client.run()
    workload.cleanup()
    return load_result, run_result


def run_cew(
    db_factory: Callable[[], DB],
    properties: Properties | Mapping[str, str] | None = None,
    **overrides: object,
) -> BenchmarkResult:
    """Load + run the Closed Economy Workload; returns the run result."""
    if properties is None:
        props = cew_properties(**overrides)
    elif isinstance(properties, Properties):
        props = properties
        for key, value in overrides.items():
            props.set(key, value)
    else:
        merged = dict(properties)
        merged.update({key: str(value) for key, value in overrides.items()})
        props = Properties(merged)
    _, run_result = run_phase_pair(ClosedEconomyWorkload(), db_factory, props)
    return run_result
