"""Experiment harness: one entry point per paper figure/table."""

from .contention import ContendedDB, ContentionModel, VirtualTimeContentionModel
from .experiments import (
    PROCESSES_FIG2,
    THREADS_FIG2,
    THREADS_LOCAL,
    ablation_coordinators,
    fig2_cloud_scaling,
    fig3_transaction_overhead,
    fig4_anomaly_score,
    fig5_raw_scaling,
    figure2_multiprocess,
    isolation_matrix,
    sim_figure2,
    staleness_curve,
    tier5_operation_overhead,
    tier6_consistency,
)
from .report import render_experiment, render_experiment_csv, render_series_table
from .results import ExperimentResult, Point, Series
from .runner import cew_properties, run_cew, run_phase_pair

__all__ = [
    "ContendedDB",
    "ContentionModel",
    "VirtualTimeContentionModel",
    "PROCESSES_FIG2",
    "THREADS_FIG2",
    "THREADS_LOCAL",
    "ablation_coordinators",
    "fig2_cloud_scaling",
    "figure2_multiprocess",
    "fig3_transaction_overhead",
    "fig4_anomaly_score",
    "fig5_raw_scaling",
    "isolation_matrix",
    "sim_figure2",
    "staleness_curve",
    "tier5_operation_overhead",
    "tier6_consistency",
    "render_experiment",
    "render_experiment_csv",
    "render_series_table",
    "ExperimentResult",
    "Point",
    "Series",
    "cew_properties",
    "run_cew",
    "run_phase_pair",
]
