"""Result containers shared by all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Point", "Series", "ExperimentResult"]


@dataclass
class Point:
    """One measured configuration (one x position on a paper figure)."""

    x: float
    throughput: float
    anomaly_score: float | None = None
    operations: int = 0
    failed_operations: int = 0
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass
class Series:
    """One line of a figure (e.g. the 90:10 mix)."""

    label: str
    points: list[Point] = field(default_factory=list)

    def xs(self) -> list[float]:
        return [point.x for point in self.points]

    def throughputs(self) -> list[float]:
        return [point.throughput for point in self.points]

    def anomaly_scores(self) -> list[float | None]:
        return [point.anomaly_score for point in self.points]


@dataclass
class ExperimentResult:
    """A reproduced figure or table."""

    experiment: str
    description: str
    series: list[Series] = field(default_factory=list)
    tables: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    #: Per-operation latency histogram payloads (``HdrHistogramMeasurement
    #: .to_dict()`` shape), keyed by operation name.  Optional: runners
    #: that attach them get per-repetition latency aggregation (merged
    #: percentiles + CI bands) in the experiments layer.
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(f"no series labelled {label!r} in {self.experiment}")
