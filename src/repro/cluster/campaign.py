"""Cluster crash campaigns: kill a shard mid-run, recover, re-validate.

The ``ycsbt cluster`` counterpart to ``ycsbt crash``: each run executes
the Closed Economy Workload against a live :class:`~repro.cluster.cluster.
ShardCluster` — N HTTP shard servers, raw operations routed by the shard
map, transactions spanning shards via two-phase commit — and, halfway
through the measured phase, **kills one shard server**.  The dead shard
drops every connection without a response; in-flight prepares fail, phase
2 commit RPCs against it fail (the coordinator's WAL keeps those
transactions in doubt), and peers' locks strand.  The campaign then

1. restarts the shard (durable store intact, volatile prepared table
   gone — exactly the state 2PC recovery must handle),
2. sleeps past every lock lease (wall clock: real sockets cannot run
   under the virtual-time scheduler),
3. replays the coordinator WAL (:func:`~repro.cluster.twopc.
   recover_coordinator` — redo logged commits, undo the undecided) and
   runs the :class:`~repro.recovery.scavenger.TxnScavenger` across every
   shard,
4. re-runs CEW validation over the whole cluster.

The verdict mirrors the single-node crash campaign: on the ``txn``
binding **post-recovery validation must pass** (total cash preserved,
gamma == 0, zero residual locks) at every shard count.  The ``raw``
binding has no recovery story — a routed read-modify-write pair that
straddles the dead shard leaks money that stays leaked — so the campaign
reports it as the expected baseline and only fails on transactional
violations.

Unlike the sim campaigns a cluster run is wall-clock and therefore not
bit-deterministic (thread scheduling is the OS's), but the *kill point*
is: the measured phase runs as two exact halves via the client's
``operation_count`` override, and the shard dies between them.
"""

from __future__ import annotations

import json
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..bindings.kv import KVStoreDB
from ..bindings.txn import TxnDB
from ..core.client import Client
from ..core.closed_economy import ClosedEconomyWorkload
from ..core.properties import Properties
from ..core.retry import RetryPolicy
from ..core.workload import WorkloadError
from ..kvstore.base import StoreError
from ..measurements.exporters import JsonLinesExporter
from ..measurements.registry import Measurements
from ..recovery.campaign import DEFAULT_CRASH_PROPERTIES
from ..recovery.scavenger import TxnScavenger
from .cluster import ShardCluster
from .twopc import recover_coordinator

__all__ = [
    "DEFAULT_CLUSTER_PROPERTIES",
    "CLUSTER_BINDINGS",
    "ClusterRunResult",
    "ClusterCampaignResult",
    "run_cluster",
    "run_cluster_campaign",
    "write_cluster_violation_trace",
]

#: The crash campaign's CEW over the wire: latency injection dropped (a
#: wall-clock run has real network latency; simulated sleeps on top would
#: only slow it down) and a transport retry budget added so a pooled
#: connection racing a server restart doesn't surface as a failed op.
DEFAULT_CLUSTER_PROPERTIES: dict[str, str] = {
    **{
        key: value
        for key, value in DEFAULT_CRASH_PROPERTIES.items()
        if not key.startswith("latency.")
    },
    "threadcount": "4",
}

CLUSTER_BINDINGS = ("raw", "txn")


class _NoValidation:
    """A workload view whose validation stage is a no-op.

    The client validates at the end of every phase, and validation scans
    the whole cluster — which cannot work while a shard is deliberately
    dead.  The degraded half of the run executes through this delegating
    wrapper; shared workload state (key chooser, operation mix, escrow)
    lives in the wrapped instance, so the two halves are one workload.
    """

    def __init__(self, workload: ClosedEconomyWorkload):
        self._workload = workload

    def __getattr__(self, name: str):
        return getattr(self._workload, name)

    def validate(self, db) -> None:
        return None


@dataclass
class ClusterRunResult:
    """One load → run → kill-shard → run → recover → re-validate cycle."""

    binding: str
    seed: int
    shard_count: int
    #: the shard killed mid-run, or None for a fault-free run.
    killed_shard: str | None
    #: operations executed before / after the kill point.
    healthy_operations: int
    degraded_operations: int
    #: validation straight after the healthy half (cluster intact).
    pre_gamma: float
    pre_passed: bool
    #: validation after restart + WAL replay + scavenging — the verdict.
    post_gamma: float
    post_passed: bool
    post_validation_fields: list[tuple[str, str]]
    #: locks still unresolved after recovery (must be 0).
    residual_locks: int
    recovery: dict[str, int]
    scavenger_counters: dict[str, int]
    operations: int
    failed_operations: int
    wall_time_s: float
    counters: dict[str, int]
    report_jsonl: str
    properties: dict[str, str]
    errors: list[str] = field(default_factory=list)

    @property
    def transactional(self) -> bool:
        return self.binding != "raw"

    @property
    def violation(self) -> bool:
        """True when recovery failed to restore a consistent state."""
        return not self.post_passed or self.post_gamma > 0.0 or self.residual_locks > 0

    @property
    def throughput(self) -> float:
        return (
            self.operations / self.wall_time_s if self.wall_time_s > 0 else 0.0
        )

    def summary_line(self) -> str:
        flag = "VIOLATION" if self.violation else "ok"
        killed = self.killed_shard or "-"
        return (
            f"{self.binding:<4} seed={self.seed:<6} shards={self.shard_count} "
            f"killed={killed:<7} post-gamma={self.post_gamma:.6f} "
            f"residual-locks={self.residual_locks} "
            f"redone={self.recovery.get('redone', 0)} "
            f"undone={self.recovery.get('undone', 0)} "
            f"ops={self.operations} failed={self.failed_operations} "
            f"wall={self.wall_time_s:.2f}s {flag}"
        )


def _cluster_properties(base: Mapping[str, str] | None, seed: int) -> Properties:
    values = dict(DEFAULT_CLUSTER_PROPERTIES)
    if base:
        values.update({key: str(value) for key, value in base.items()})
    values["seed"] = str(seed)
    values["retry.seed"] = str(seed + 2)
    return Properties(values)


def run_cluster(
    binding: str = "txn",
    shard_count: int = 4,
    properties: Mapping[str, str] | None = None,
    seed: int = 0,
    kill: bool = True,
    kill_fraction: float = 0.5,
    lease_margin_s: float = 0.5,
) -> ClusterRunResult:
    """One cluster crash/recovery cycle; the campaign's unit of work.

    The measured phase runs as two halves: ``kill_fraction`` of the
    operations against the healthy cluster, then — with one shard killed —
    the rest.  The victim is chosen by seed, so a seed sweep kills
    different shards.  ``kill=False`` runs the same two halves without
    the kill (the scaling experiment's fault-free path).
    """
    if binding not in CLUSTER_BINDINGS:
        raise ValueError(
            f"unknown cluster binding {binding!r}; use one of {CLUSTER_BINDINGS}"
        )
    props = _cluster_properties(properties, seed)
    lease_ms = props.get_float("txn.lock_lease_ms", 1000.0)
    wall_started = time.perf_counter()
    with ShardCluster(
        shard_count,
        lock_lease_ms=lease_ms,
        retry_policy_factory=lambda: RetryPolicy.from_properties(props),
    ) as cluster:
        manager = None
        if binding == "txn":
            manager = cluster.manager(client_id=f"cluster{seed}")
            db_factory = lambda: TxnDB(props, manager=manager)  # noqa: E731
        else:
            router = cluster.router()
            db_factory = lambda: KVStoreDB(router, props)  # noqa: E731

        workload = ClosedEconomyWorkload()
        measurements = Measurements.from_properties(props)
        workload.init(props, measurements)
        client = Client(workload, db_factory, props, measurements)
        load = client.load()

        total_ops = props.get_int("operationcount", 400)
        healthy_ops = max(1, int(total_ops * kill_fraction)) if kill else total_ops
        degraded_ops = total_ops - healthy_ops

        healthy = client.run(operation_count=healthy_ops)
        errors = list(load.errors) + list(healthy.errors)
        operations = healthy.operations
        failed = healthy.failed_operations

        killed_shard = None
        degraded_count = 0
        if kill and degraded_ops > 0:
            killed_shard = cluster.shard_names[seed % shard_count]
            cluster.kill_shard(killed_shard)
            # Same workload, same db factory, same measurements — but no
            # validation stage, which cannot scan through a dead shard.
            degraded_client = Client(
                _NoValidation(workload), db_factory, props, measurements
            )
            degraded = degraded_client.run(operation_count=degraded_ops)
            errors.extend(degraded.errors)
            operations += degraded.operations
            failed += degraded.failed_operations
            degraded_count = degraded.operations
            cluster.restart_shard(killed_shard)

        # -- recovery: expire leases, replay the WAL, scavenge -------------
        recovery: dict[str, int] = {}
        scavenger_counters: dict[str, int] = {}
        residual_locks = 0
        if manager is not None:
            if killed_shard is not None:
                time.sleep(lease_ms / 1000.0 + lease_margin_s)
            recovery = recover_coordinator(manager)
            scavenger = TxnScavenger(manager)
            scavenger.scavenge_once()
            verify = scavenger.scavenge_once(remove_orphan_tsrs=False)
            residual_locks = verify.locks_seen
            scavenger_counters = {
                name: value for name, value in scavenger.counters().items() if value
            }
            for name, value in scavenger_counters.items():
                measurements.set_counter(name, value)

        # -- post-recovery validation: the campaign's verdict --------------
        post_db = db_factory()
        post_db.init()
        try:
            post_validation = workload.validate(post_db)
        except (WorkloadError, StoreError) as exc:
            errors.append(f"post-validation: {type(exc).__name__}: {exc}")
            post_validation = None
        finally:
            post_db.cleanup()
        workload.cleanup()

        counters = {
            name: int(value) for name, value in measurements.counters().items()
        }
        if manager is not None:
            counters.update(
                {name: value for name, value in manager.counters().items() if value}
            )
        report_jsonl = JsonLinesExporter().export(healthy.report())
    wall_time_s = time.perf_counter() - wall_started
    return ClusterRunResult(
        binding=binding,
        seed=seed,
        shard_count=shard_count,
        killed_shard=killed_shard,
        healthy_operations=healthy.operations,
        degraded_operations=degraded_count,
        pre_gamma=healthy.anomaly_score if healthy.anomaly_score is not None else 0.0,
        pre_passed=healthy.validation.passed if healthy.validation else False,
        post_gamma=post_validation.anomaly_score if post_validation else 1.0,
        post_passed=post_validation.passed if post_validation else False,
        post_validation_fields=[
            (str(name), str(value)) for name, value in post_validation.fields
        ]
        if post_validation
        else [],
        residual_locks=residual_locks,
        recovery=recovery,
        scavenger_counters=scavenger_counters,
        operations=operations,
        failed_operations=failed,
        wall_time_s=wall_time_s,
        counters=counters,
        report_jsonl=report_jsonl,
        properties=props.as_dict(),
        errors=errors,
    )


def write_cluster_violation_trace(result: ClusterRunResult, directory: str | Path) -> Path:
    """Write the replayable artifact for a run recovery failed to repair."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {
        "kind": "ycsbt-cluster-violation",
        "binding": result.binding,
        "seed": result.seed,
        "shard_count": result.shard_count,
        "killed_shard": result.killed_shard,
        "healthy_operations": result.healthy_operations,
        "degraded_operations": result.degraded_operations,
        "pre_recovery": {"gamma": result.pre_gamma, "passed": result.pre_passed},
        "post_recovery": {
            "gamma": result.post_gamma,
            "passed": result.post_passed,
            "validation": [list(pair) for pair in result.post_validation_fields],
            "residual_locks": result.residual_locks,
        },
        "coordinator_recovery": result.recovery,
        "scavenger": result.scavenger_counters,
        "operations": result.operations,
        "failed_operations": result.failed_operations,
        "wall_time_s": result.wall_time_s,
        "counters": result.counters,
        "properties": result.properties,
        "replay": {
            "command": (
                f"ycsbt cluster --db {result.binding} --shards {result.shard_count} "
                f"--seeds 1 --start-seed {result.seed}"
            ),
        },
        "errors": result.errors,
    }
    path = directory / (
        f"cluster-violation-{result.binding}-shards{result.shard_count}"
        f"-seed{result.seed}.json"
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class ClusterCampaignResult:
    """All runs of one cluster campaign plus the violations it surfaced."""

    runs: list[ClusterRunResult]
    artifacts: list[Path] = field(default_factory=list)

    @property
    def violations(self) -> list[ClusterRunResult]:
        return [run for run in self.runs if run.violation]

    @property
    def transactional_violations(self) -> list[ClusterRunResult]:
        """The failures that fail the campaign: 2PC recovery broke its promise."""
        return [run for run in self.runs if run.transactional and run.violation]

    def by_binding(self, binding: str) -> list[ClusterRunResult]:
        return [run for run in self.runs if run.binding == binding]

    def summary(self) -> str:
        lines = []
        for binding in sorted({run.binding for run in self.runs}):
            runs = self.by_binding(binding)
            violations = [run for run in runs if run.violation]
            kills = sum(1 for run in runs if run.killed_shard is not None)
            max_post = max((run.post_gamma for run in runs), default=0.0)
            wall = sum(run.wall_time_s for run in runs)
            lines.append(
                f"{binding}: {len(runs)} runs, {kills} shard kills, "
                f"{len(violations)} post-recovery violations, "
                f"max post-gamma {max_post:.6f}, {wall:.2f} wall s"
            )
        return "\n".join(lines)


def run_cluster_campaign(
    seeds: Sequence[int],
    bindings: Sequence[str] = ("raw", "txn"),
    shard_counts: Sequence[int] = (4,),
    properties: Mapping[str, str] | None = None,
    kill: bool = True,
    out_dir: str | Path | None = None,
    on_result=None,
) -> ClusterCampaignResult:
    """Sweep seeds x shard counts x bindings; artifacts for violations.

    Only *transactional* post-recovery violations should fail a CI job —
    the raw binding leaking money across a dead shard is the expected
    baseline, not a bug (see the CLI's exit-code rule).
    """
    result = ClusterCampaignResult(runs=[])
    for shard_count in shard_counts:
        for binding in bindings:
            for seed in seeds:
                run = run_cluster(
                    binding=binding,
                    shard_count=shard_count,
                    properties=properties,
                    seed=seed,
                    kill=kill,
                )
                result.runs.append(run)
                if run.violation and out_dir is not None:
                    result.artifacts.append(
                        write_cluster_violation_trace(run, out_dir)
                    )
                if on_result is not None:
                    on_result(run)
    return result
