"""Multi-node shard cluster: N HTTP shard servers plus the client stack.

:class:`ShardCluster` is the one-call deployment used by tests, the
``ycsbt cluster`` campaign and the ``shard_scaling`` experiment: it
launches one :class:`~repro.http.server.KVStoreHTTPServer` per shard
(each with a :class:`~repro.cluster.participant.TwoPCParticipant`
attached), wires every participant to its peers, and exposes the two
client-side views —

* :meth:`router` — a :class:`~repro.cluster.router.ShardRoutedStore`
  for raw routed reads/writes and per-shard bulk loads;
* :meth:`manager` — a :class:`~repro.cluster.twopc.TwoPCManager` running
  cross-shard two-phase commit over the same shard map.

Failure injection mirrors a real node kill: :meth:`kill_shard` flips the
server into the crashed state (port bound, every connection dropped
responseless) and :meth:`restart_shard` revives it with a **fresh**
participant — the durable store survives, the volatile prepared table
does not, which is exactly the state 2PC recovery must handle.
"""

from __future__ import annotations

import tempfile
from collections.abc import Callable
from pathlib import Path

from ..core.retry import RetryPolicy
from ..kvstore.base import KeyValueStore
from ..kvstore.memory import InMemoryKVStore
from ..kvstore.sharded import ConsistentHashRing
from ..http.client import HttpKVStore
from ..http.server import KVStoreHTTPServer
from ..recovery.scavenger import TxnScavenger
from .participant import TwoPCParticipant
from .router import ShardRoutedStore
from .twopc import ParticipantClient, TwoPCManager
from .wal import CoordinatorWAL

__all__ = ["ShardCluster"]


class ShardCluster:
    """Launches and manages ``shard_count`` HTTP shard servers.

    Args:
        shard_count: number of shards (named ``shard0..shardN-1``).
        store_factory: builds each shard's durable store; defaults to
            :class:`~repro.kvstore.memory.InMemoryKVStore`.  Called with
            the shard name (e.g. to derive per-shard data directories).
        replicas: virtual nodes per shard on the hash ring.
        lock_lease_ms: lock lease for participants and coordinators —
            campaigns shrink it so presumed-dead recovery happens inside
            a test budget.
        wal_dir: directory for coordinator WALs; a temp dir by default.
        retry_policy_factory: builds the per-client retry policy for the
            coordinator's shard clients (None = no transport retries).
    """

    def __init__(
        self,
        shard_count: int = 4,
        store_factory: Callable[[str], KeyValueStore] | None = None,
        replicas: int = 32,
        lock_lease_ms: float = 1000.0,
        wal_dir: str | Path | None = None,
        retry_policy_factory: Callable[[], RetryPolicy] | None = None,
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        factory = store_factory or (lambda name: InMemoryKVStore())
        self.shard_names = [f"shard{i}" for i in range(shard_count)]
        self.replicas = replicas
        self.lock_lease_ms = lock_lease_ms
        self._retry_factory = retry_policy_factory
        self._wal_dir = Path(wal_dir) if wal_dir else Path(tempfile.mkdtemp(prefix="twopc-wal-"))
        self._wal_count = 0
        self._closables: list[HttpKVStore] = []

        self.stores: dict[str, KeyValueStore] = {
            name: factory(name) for name in self.shard_names
        }
        self.servers: dict[str, KVStoreHTTPServer] = {}
        self._started = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> "ShardCluster":
        """Bind and start every shard server, then wire participants.

        Two passes because participants need peer *addresses*: servers
        start first (ports are assigned at bind), then each shard gets a
        participant holding HTTP clients to every other shard.
        """
        if self._started:
            raise RuntimeError("cluster already started")
        for name in self.shard_names:
            server = KVStoreHTTPServer(self.stores[name])
            server.start()
            self.servers[name] = server
        for name in self.shard_names:
            self.servers[name].revive(participant=self._build_participant(name))
        self._started = True
        return self

    def _build_participant(self, name: str) -> TwoPCParticipant:
        peers = {
            peer: self._client(peer)
            for peer in self.shard_names
            if peer != name
        }
        return TwoPCParticipant(
            name,
            self.stores[name],
            peers=peers,
            lock_lease_ms=self.lock_lease_ms,
        )

    def _client(self, name: str, retry_policy: RetryPolicy | None = None) -> HttpKVStore:
        client = HttpKVStore(self.servers[name].address, retry_policy=retry_policy)
        self._closables.append(client)
        return client

    def stop(self) -> None:
        for server in self.servers.values():
            server.stop()
        for client in self._closables:
            client.close()
        self._closables.clear()
        self.servers.clear()
        self._started = False

    def __enter__(self) -> "ShardCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- client-side views ------------------------------------------------------------

    def addresses(self) -> dict[str, tuple[str, int]]:
        return {name: server.address for name, server in self.servers.items()}

    def ring(self) -> ConsistentHashRing:
        return ConsistentHashRing(list(self.shard_names), replicas=self.replicas)

    def router(self) -> ShardRoutedStore:
        """A fresh routed raw-store client over every shard."""
        self._require_started()
        shards = {name: self._client(name, self._new_retry_policy()) for name in self.shard_names}
        return ShardRoutedStore(shards, ring=self.ring())

    def manager(self, client_id: str | None = None, **kwargs) -> TwoPCManager:
        """A fresh 2PC coordinator over every shard, with its own WAL.

        Each coordinator is an independent client process in the model,
        so each gets a distinct WAL file; ``recover_with`` re-attaches a
        new coordinator to a dead one's log.
        """
        self._require_started()
        self._wal_count += 1
        wal = CoordinatorWAL(self._wal_dir / f"coordinator-{self._wal_count}.jsonl")
        return self.manager_for_wal(wal, client_id=client_id, **kwargs)

    def manager_for_wal(
        self, wal: CoordinatorWAL, client_id: str | None = None, **kwargs
    ) -> TwoPCManager:
        """A coordinator bound to an explicit WAL (restart-after-crash)."""
        self._require_started()
        shards = {
            name: self._client(name, self._new_retry_policy())
            for name in self.shard_names
        }
        participants = {
            name: ParticipantClient(shards[name]) for name in self.shard_names
        }
        kwargs.setdefault("lock_lease_ms", self.lock_lease_ms)
        return TwoPCManager(
            shards,
            participants,
            wal,
            ring=self.ring(),
            client_id=client_id,
            **kwargs,
        )

    def scavenger(self, manager: TwoPCManager | None = None) -> TxnScavenger:
        """An eager recovery pass over every shard (via a coordinator view)."""
        return TxnScavenger(manager if manager is not None else self.manager())

    def _new_retry_policy(self) -> RetryPolicy | None:
        return self._retry_factory() if self._retry_factory else None

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("cluster not started; use start() or a with-block")

    # -- failure injection --------------------------------------------------------------

    def kill_shard(self, name: str) -> None:
        """Crash a shard server: port stays bound, connections drop dead.

        The participant's prepared table is still referenced by the dead
        server object but unreachable — exactly a process whose memory is
        gone for every purpose but forensics.
        """
        self.servers[name].mark_crashed()

    def restart_shard(self, name: str) -> None:
        """Revive a crashed shard with a fresh participant.

        The durable store carries over; the prepared-transaction table is
        rebuilt empty, so in-doubt transactions on this shard are resolved
        through the durable-state fallbacks (TSR lookup, lease expiry).
        """
        self.servers[name].revive(participant=self._build_participant(name))

    def crashed_shards(self) -> list[str]:
        return [name for name, server in self.servers.items() if server.crashed]
