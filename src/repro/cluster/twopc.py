"""Cross-shard two-phase commit: coordinator side.

:class:`TwoPCManager` is a :class:`~repro.txn.manager.
ClientTransactionManager` whose named stores are the cluster's shards
(HTTP clients) and whose transactions commit through participant RPCs:

1. ``BEGIN`` is logged to the coordinator WAL (write set included);
2. phase 1 — one ``/txn/prepare`` per shard installs that shard's locks
   and staged intents *server-side* (one round trip per shard, however
   many keys it owns);
3. the commit point is unchanged from the single-node protocol: an
   insert-if-absent TSR on the primary shard.  This is what keeps every
   existing recovery path — reader lock resolution, lease expiry,
   :class:`~repro.recovery.scavenger.TxnScavenger` — valid for cluster
   transactions;
4. the decision is logged to the WAL **before any participant applies**;
5. phase 2 — one ``/txn/commit`` per shard rolls the staged intents
   forward; the TSR is removed and ``COMPLETE`` logged once every shard
   acknowledged.

Crash recovery is redo→undo over the WAL (:func:`recover_coordinator`):
decided-but-incomplete transactions are re-driven to their logged
decision (redo); begun-but-undecided ones consult the TSR — committed
means redo, otherwise an ``aborted`` TSR is arbitrated in and every
prepared shard rolled back (undo, presumed abort).

Key routing is automatic: a transaction write/read with no explicit store
is routed to the shard owning the key per the cluster's consistent-hash
ring, so workload code written for one store runs on a cluster untouched.
"""

from __future__ import annotations

import heapq
import threading
from collections.abc import Callable, Mapping

from ..kvstore.base import Fields, KeyValueStore, StoreError
from ..kvstore.sharded import ConsistentHashRing
from ..recovery.crashpoints import crashpoint
from ..txn.base import TxState
from ..txn.errors import TransactionAborted, TransactionConflict
from ..txn.manager import ClientTransaction, ClientTransactionManager
from .wal import CoordinatorWAL, WalTxn

__all__ = ["ParticipantClient", "TwoPCManager", "TwoPCTransaction", "recover_coordinator"]


class ParticipantClient:
    """RPC stub for one shard's ``/txn/*`` endpoints.

    Wraps the shard's :class:`~repro.http.client.HttpKVStore` (reusing its
    connection pool and stale-socket replay).  A 409 is a vote of no /
    conflict; transport failures surface as
    :class:`~repro.kvstore.base.StoreUnavailable` for the coordinator to
    interpret — an unreachable participant during phase 1 is a no-vote,
    during phase 2 it is deferred work.
    """

    def __init__(self, client: KeyValueStore):
        post = getattr(client, "post_json", None)
        if not callable(post):
            raise TypeError("participant client requires a store with post_json()")
        self._client = client

    def _post(self, verb: str, body: dict) -> tuple[int, dict | None]:
        return self._client.post_json(f"/txn/{verb}", body)

    def prepare(
        self, txid: str, start_ts: int, primary: str, writes: Mapping[str, Fields | None]
    ) -> bool:
        """True on a yes vote, False on a conflict no-vote; raises on errors."""
        status, document = self._post(
            "prepare",
            {
                "txid": txid,
                "start_ts": start_ts,
                "primary": primary,
                "writes": dict(writes),
            },
        )
        if status == 200:
            return True
        if status == 409:
            return False
        raise StoreError(
            f"prepare of {txid!r} failed with HTTP {status}: "
            f"{(document or {}).get('error')}"
        )

    def commit(self, txid: str, commit_ts: int, keys: list[str]) -> dict:
        status, document = self._post(
            "commit", {"txid": txid, "commit_ts": commit_ts, "keys": keys}
        )
        if status != 200 or document is None:
            raise StoreError(f"commit of {txid!r} failed with HTTP {status}")
        return document

    def abort(self, txid: str, keys: list[str]) -> dict:
        status, document = self._post("abort", {"txid": txid, "keys": keys})
        if status != 200 or document is None:
            raise StoreError(f"abort of {txid!r} failed with HTTP {status}")
        return document

    def expire(self) -> dict:
        status, document = self._post("expire", {})
        if status != 200 or document is None:
            raise StoreError(f"expire failed with HTTP {status}")
        return document


class TwoPCManager(ClientTransactionManager):
    """Transaction manager coordinating 2PC across a shard cluster.

    Args:
        shards: shard name -> store client (HTTP clients against the
            shard servers).  These double as the manager's named stores,
            so snapshot reads and the scavenger reach shard data directly.
        participants: shard name -> :class:`ParticipantClient` for the
            2PC verbs.
        wal: the coordinator's decision log.
        ring: the shard map; defaults to a fresh ring over the shard
            names, which matches clusters built by
            :class:`~repro.cluster.cluster.ShardCluster`.
        participant_resolver: re-resolves one shard's participant stub
            after a leader change (replicated clusters: the stub held the
            old leader's address).  Recovery retries a failed participant
            RPC once through it; without a resolver the transaction stays
            in doubt for the next recovery pass.
    """

    def __init__(
        self,
        shards: Mapping[str, KeyValueStore],
        participants: Mapping[str, ParticipantClient],
        wal: CoordinatorWAL,
        ring: ConsistentHashRing | None = None,
        participant_resolver: Callable[[str], "ParticipantClient"] | None = None,
        **kwargs,
    ):
        super().__init__(dict(shards), **kwargs)
        missing = set(shards) - set(participants)
        if missing:
            raise ValueError(f"shards without participants: {sorted(missing)}")
        self._participants = dict(participants)
        self._participant_resolver = participant_resolver
        self.wal = wal
        self.ring = ring or ConsistentHashRing(sorted(shards))
        self._twopc_lock = threading.Lock()
        self.twopc_counters: dict[str, int] = {
            "prepares": 0,
            "no_votes": 0,
            "commits": 0,
            "aborts": 0,
            "redone": 0,
            "undone": 0,
        }

    def _bump_twopc(self, counter: str, amount: int = 1) -> None:
        with self._twopc_lock:
            self.twopc_counters[counter] += amount

    def participant(self, shard: str) -> ParticipantClient:
        return self._participants[shard]

    def refresh_participant(self, shard: str) -> ParticipantClient | None:
        """Swap in a freshly-resolved participant stub for ``shard``.

        Returns the new stub, or None when no resolver is attached (a
        static cluster: the old stub is the only address there is).
        """
        if self._participant_resolver is None:
            return None
        stub = self._participant_resolver(shard)
        self._participants[shard] = stub
        return stub

    def owner(self, key: str) -> str:
        """The shard owning ``key`` per the cluster's ring."""
        return self.ring.owner(key)

    def counters(self) -> dict[str, int]:
        counters = super().counters()
        with self._twopc_lock:
            counters["TWOPC-PREPARES"] = self.twopc_counters["prepares"]
            counters["TWOPC-NO-VOTES"] = self.twopc_counters["no_votes"]
            counters["TWOPC-REDONE"] = self.twopc_counters["redone"]
            counters["TWOPC-UNDONE"] = self.twopc_counters["undone"]
        return counters

    def begin(self) -> "TwoPCTransaction":
        txid = f"{self._client_id}-{next(self._tx_counter)}"
        self.stats.bump("begun")
        return TwoPCTransaction(self, txid, self.clock.next_timestamp())


class TwoPCTransaction(ClientTransaction):
    """A cross-shard transaction committing via prepare/commit RPCs.

    Reads are the inherited snapshot reads (over the shard HTTP clients,
    with full lock resolution); only the commit path differs.
    """

    _manager: TwoPCManager

    def _address(self, key: str, store: str | None):
        # Route store-less operations by the shard map instead of a fixed
        # default store — cluster transactions span shards transparently.
        return super()._address(key, store or self._manager.owner(key))

    def scan(
        self, start_key: str, record_count: int, store: str | None = None
    ) -> list[tuple[str, Fields]]:
        """A store-less scan covers the whole cluster, not one shard.

        Each shard's ordered range (with the inherited snapshot/lock
        semantics) is merged k-way into one global range; an explicit
        ``store`` keeps the single-shard behaviour.
        """
        if store is not None:
            return super().scan(start_key, record_count, store=store)
        single_shard = super().scan
        per_shard = [
            single_shard(start_key, record_count, store=name)
            for name in self._manager.store_names()
        ]
        merged = heapq.merge(*per_shard, key=lambda pair: pair[0])
        return [pair for _, pair in zip(range(record_count), merged)]

    # -- commit -------------------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        manager = self._manager
        if not self._writes:
            self.state = TxState.COMMITTED
            manager.stats.bump("committed")
            return
        ordered = sorted(self._writes)
        primary = self._primary_name(ordered)
        groups: dict[str, dict[str, Fields | None]] = {}
        for shard, key in ordered:
            groups.setdefault(shard, {})[key] = self._writes[(shard, key)]
        wal = manager.wal
        wal.log_begin(self.txid, self.start_timestamp, primary, groups)

        # Phase 1: collect votes, one RPC per shard.
        prepared: list[str] = []
        try:
            for shard in sorted(groups):
                manager._bump_twopc("prepares")
                voted_yes = manager.participant(shard).prepare(
                    self.txid, self.start_timestamp, primary, groups[shard]
                )
                if not voted_yes:
                    manager._bump_twopc("no_votes")
                    raise TransactionConflict(
                        f"{self.txid}: shard {shard!r} voted no (conflict)"
                    )
                prepared.append(shard)
        except (TransactionConflict, StoreError) as exc:
            self._abort_decided(groups, prepared, tsr_may_exist=False)
            self.state = TxState.ABORTED
            manager.stats.bump("aborted")
            if isinstance(exc, TransactionConflict):
                manager.stats.bump("conflicts")
                raise
            raise TransactionAborted(
                f"{self.txid}: aborted, a participant failed in phase 1 ({exc})"
            ) from exc
        crashpoint("twopc.after_prepare")

        # Commit point: TSR insert on the primary shard (unchanged from
        # the single-node protocol, so peers and the scavenger can decide
        # this transaction's fate without the coordinator).
        commit_ts = manager.clock.next_timestamp()
        primary_shard = ordered[0][0]
        tsr_store = manager.store(primary_shard)
        tsr_key = manager._tsr_key(self.txid)
        if not self._decide_commit(tsr_store, tsr_key, commit_ts):
            # A peer presumed us dead and arbitrated an abort first.
            self._abort_decided(groups, prepared, tsr_may_exist=True)
            self.state = TxState.ABORTED
            manager.stats.bump("aborted")
            manager.stats.bump("recovery_aborts")
            raise TransactionAborted(f"{self.txid}: aborted by peer recovery")

        # Decision durable before any participant applies: a coordinator
        # death from here on is redo-able from the WAL alone.
        wal.log_decision(self.txid, "commit", commit_ts)
        crashpoint("twopc.after_decision_logged")

        # Phase 2: roll the staged intents forward, one RPC per shard.
        failures = 0
        for shard in sorted(groups):
            try:
                manager.participant(shard).commit(
                    self.txid, commit_ts, sorted(groups[shard])
                )
            except StoreError:
                failures += 1
        if failures:
            # Committed regardless — the TSR and the WAL decision both
            # say so; the unapplied shards are scavenger/redo work.  The
            # WAL entry stays incomplete so recovery re-drives them.
            manager.stats.bump("post_commit_failures", failures)
        else:
            tsr_removed = True
            try:
                manager._call(lambda: tsr_store.delete(tsr_key))
            except StoreError:
                tsr_removed = False
                manager.stats.bump("post_commit_failures")
            if tsr_removed:
                wal.log_complete(self.txid)
        manager._bump_twopc("commits")
        self.state = TxState.COMMITTED
        manager.stats.bump("committed")

    def _abort_decided(
        self,
        groups: dict[str, dict[str, Fields | None]],
        prepared: list[str],
        tsr_may_exist: bool,
    ) -> None:
        """Drive the abort decision durably and release prepared shards.

        The ``aborted`` TSR is written *before* participant aborts so
        that a participant which lost its prepared table (restarted) can
        still resolve the locks decisively instead of waiting out leases.
        """
        manager = self._manager
        manager._bump_twopc("aborts")
        manager.wal.log_decision(self.txid, "abort")
        tsr_store = manager.store(sorted(groups)[0])
        tsr_key = manager._tsr_key(self.txid)
        if not tsr_may_exist:
            try:
                manager._call(
                    lambda: tsr_store.put_if_version(
                        tsr_key, {"state": "aborted", "commit_ts": "0"}, None
                    )
                )
            except StoreError:
                pass  # leases still guarantee eventual rollback
        for shard in prepared:
            try:
                manager.participant(shard).abort(self.txid, sorted(groups[shard]))
            except StoreError:
                pass  # shard unreachable; its locks expire and resolve
        try:
            manager._call(lambda: tsr_store.delete(tsr_key))
        except StoreError:
            pass  # orphan TSR; the scavenger removes it
        manager.wal.log_complete(self.txid)


def recover_coordinator(manager: TwoPCManager) -> dict[str, int]:
    """Redo→undo recovery over the coordinator WAL after a restart.

    * **Redo** — transactions with a logged ``commit`` decision but no
      ``COMPLETE``: re-issue every participant commit (idempotent: shards
      that already applied resolve to no-ops) and remove the TSR.
    * **Undo** — transactions begun but never decided: consult the TSR on
      the primary shard.  A committed TSR means the coordinator died
      between the commit point and the decision record — redo.  Otherwise
      arbitrate an ``aborted`` TSR in (insert-if-absent — racing peers
      agree by construction) and roll every shard back: presumed abort.

    Logged ``abort`` decisions re-drive the abort path.  Every handled
    transaction gets a ``COMPLETE`` record unless a shard stayed
    unreachable, in which case the entry remains in doubt for the next
    recovery (or the scavenger) to finish.
    """
    summary = {"replayed": 0, "redone": 0, "undone": 0, "skipped": 0}
    for entry in manager.wal.in_doubt():
        summary["replayed"] += 1
        decision = entry.decision
        commit_ts = entry.commit_ts
        if decision is None:
            decision, commit_ts = _consult_tsr(manager, entry)
        if decision == "commit":
            if _redo_commit(manager, entry, commit_ts):
                manager.wal.log_complete(entry.txid)
                manager._bump_twopc("redone")
                summary["redone"] += 1
            else:
                summary["skipped"] += 1
        else:
            if _redo_abort(manager, entry):
                manager.wal.log_complete(entry.txid)
                manager._bump_twopc("undone")
                summary["undone"] += 1
            else:
                summary["skipped"] += 1
    return summary


def _tsr_location(manager: TwoPCManager, entry: WalTxn) -> tuple[KeyValueStore, str]:
    primary_shard, _, _ = entry.primary.partition(":")
    return manager.store(primary_shard), manager._tsr_key(entry.txid)


def _consult_tsr(manager: TwoPCManager, entry: WalTxn) -> tuple[str, int]:
    """Decide an undecided transaction: committed TSR wins, else abort."""
    tsr_store, tsr_key = _tsr_location(manager, entry)
    tsr = manager._call(lambda: tsr_store.get(tsr_key))
    if tsr is not None and tsr.get("state") == "committed":
        return "commit", int(tsr.get("commit_ts", "0"))
    if tsr is None:
        # Presumed abort: arbitrate our decision in.  Losing the race can
        # only mean someone else decided; read what they decided.
        created = manager._call(
            lambda: tsr_store.put_if_version(
                tsr_key, {"state": "aborted", "commit_ts": "0"}, None
            )
        )
        if created is None:
            tsr = manager._call(lambda: tsr_store.get(tsr_key))
            if tsr is not None and tsr.get("state") == "committed":
                return "commit", int(tsr.get("commit_ts", "0"))
    return "abort", 0


def _participant_call(manager: TwoPCManager, shard: str, call) -> bool:
    """One participant RPC, re-routed once after a shard leader change.

    A shard whose replica-set leader failed over since this coordinator's
    stubs were built answers every verb with a transport error (the old
    address is dead or demoted).  With a resolver attached the stub is
    re-resolved and the call retried once against the new leader; without
    one the failure stands and the transaction stays in doubt.
    """
    try:
        call(manager.participant(shard))
        return True
    except (StoreError, KeyError):
        stub = manager.refresh_participant(shard)
        if stub is None:
            return False
        try:
            call(stub)
            return True
        except (StoreError, KeyError):
            return False


def _redo_commit(manager: TwoPCManager, entry: WalTxn, commit_ts: int) -> bool:
    ok = True
    for shard in sorted(entry.groups):
        if not _participant_call(
            manager,
            shard,
            lambda stub, shard=shard: stub.commit(
                entry.txid, commit_ts, sorted(entry.groups[shard])
            ),
        ):
            ok = False
    if ok:
        tsr_store, tsr_key = _tsr_location(manager, entry)
        try:
            manager._call(lambda: tsr_store.delete(tsr_key))
        except StoreError:
            ok = False
    return ok


def _redo_abort(manager: TwoPCManager, entry: WalTxn) -> bool:
    ok = True
    for shard in sorted(entry.groups):
        if not _participant_call(
            manager,
            shard,
            lambda stub, shard=shard: stub.abort(
                entry.txid, sorted(entry.groups[shard])
            ),
        ):
            ok = False
    if ok:
        tsr_store, tsr_key = _tsr_location(manager, entry)
        try:
            manager._call(lambda: tsr_store.delete(tsr_key))
        except StoreError:
            pass  # orphan abort TSR; scavenger cleanup
    return ok
