"""Shard-side two-phase-commit participant.

One :class:`TwoPCParticipant` lives behind each shard's HTTP server and
handles the ``/txn/*`` verbs.  It layers on the existing client-side
transaction machinery (:class:`~repro.txn.manager.ClientTransactionManager`)
rather than inventing a second lock format: *prepare* installs the very
same lock-with-staged-intent records a local transaction would, and the
TSR on the primary shard remains the single commit point.  Everything the
recovery stack already knows — lease expiry, roll-forward by TSR, the
:class:`~repro.recovery.scavenger.TxnScavenger` — therefore works on a
cluster unchanged.

What moving prepare shard-side buys: the coordinator pays **one round
trip per shard** per phase, instead of one per key (lock CAS loops run on
the shard against its local store).  The participant registers each
prepared transaction in a volatile table; a participant restart loses the
table but not the locks, and the fallback paths (``commit``/``abort``
with an unknown txid, plus :meth:`TwoPCParticipant.expire`) resolve those
locks from durable state alone.

Names are load-bearing: the participant registers *its own shard name*
against its **local** store and every peer against an HTTP client, so a
lock primary of ``"shard2:user41"`` routes TSR reads to shard2 whether
the reader is shard2 itself (a local call) or any other shard (one HTTP
hop) — the same code path either way.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

from ..kvstore.base import Fields, KeyValueStore, StoreError
from ..recovery.crashpoints import crashpoint
from ..txn.base import TxState
from ..txn.manager import TSR_PREFIX, ClientTransaction, ClientTransactionManager
from ..txn.record import TxRecord

__all__ = ["TwoPCParticipant"]


class TwoPCParticipant:
    """Prepare/commit/abort handler for one shard of a 2PC cluster.

    Args:
        shard_name: this shard's name in the cluster's shard map; must
            match what coordinators use, because it is baked into lock
            primaries ("<shard>:<key>") and routes TSR lookups.
        store: the shard's durable local store.
        peers: shard name -> client store for every *other* shard (HTTP
            clients in a real cluster); used only to read/arbitrate TSRs
            on other shards during lock resolution.
        lock_lease_ms: lease granted to locks installed here; after it
            expires any peer may presume the transaction dead.
    """

    def __init__(
        self,
        shard_name: str,
        store: KeyValueStore,
        peers: Mapping[str, KeyValueStore] | None = None,
        lock_lease_ms: float = 1000.0,
    ):
        stores: dict[str, KeyValueStore] = {shard_name: store}
        for name, peer in (peers or {}).items():
            if name == shard_name:
                continue
            stores[name] = peer
        self._shard = shard_name
        self._store = store
        self._manager = ClientTransactionManager(
            stores,
            default_store=shard_name,
            lock_lease_ms=lock_lease_ms,
            client_id=f"part-{shard_name}",
        )
        self._table_lock = threading.Lock()
        #: volatile prepared-transaction table: txid -> transaction.
        self._prepared: dict[str, ClientTransaction] = {}

    @property
    def shard_name(self) -> str:
        return self._shard

    @property
    def manager(self) -> ClientTransactionManager:
        """The shard-local manager (for stats and tests)."""
        return self._manager

    def prepared_count(self) -> int:
        with self._table_lock:
            return len(self._prepared)

    # -- phase 1 -----------------------------------------------------------------

    def prepare(
        self,
        txid: str,
        start_ts: int,
        primary: str,
        writes: Mapping[str, Fields | None],
    ) -> dict:
        """Vote on a transaction: install its locks + staged intents.

        Idempotent — a coordinator replaying a prepare whose response was
        lost finds its own locks already installed (the acquire loop
        recognises the txid) and gets the same yes vote back.  A conflict
        raises :class:`~repro.txn.errors.TransactionConflict`, which the
        HTTP layer turns into a 409 no-vote; locks taken so far are
        released before raising, so a no-vote leaves no residue.
        """
        if not writes:
            return {"vote": "yes", "locked": 0}
        with self._table_lock:
            tx = self._prepared.get(txid)
            if tx is None:
                tx = ClientTransaction(self._manager, txid, start_ts)
                self._prepared[txid] = tx
        tx._writes.update(
            {
                (self._shard, key): (dict(fields) if fields is not None else None)
                for key, fields in writes.items()
            }
        )
        try:
            locked = 0
            for address in sorted(tx._writes):
                tx._acquire_lock(address, primary)
                locked += 1
                if locked == 1:
                    # Die as a replica-set leader mid-prepare: the first
                    # lock is installed (and shipped to whichever
                    # followers the log shipper reached) but the vote is
                    # unsent.  Lease expiry must roll the prefix back.
                    crashpoint("repl.leader_mid_prepare")
        except Exception:
            # Plain failures (conflict, store error) release cleanly; a
            # CrashError is a BaseException and deliberately skips this —
            # a dead process performs no cleanup.
            tx._rollback_locks()
            with self._table_lock:
                self._prepared.pop(txid, None)
            raise
        return {"vote": "yes", "locked": len(tx._writes)}

    # -- phase 2 -----------------------------------------------------------------

    def commit(self, txid: str, commit_ts: int, keys: list[str]) -> dict:
        """Apply a decided commit to this shard's share of the write set.

        With the prepared transaction still in the table this is a direct
        apply.  After a participant restart (table lost) it falls back to
        lock *resolution*: each named key's lock is resolved against the
        TSR, which rolls the staged intent forward — same outcome, driven
        purely from durable state.
        """
        with self._table_lock:
            tx = self._prepared.pop(txid, None)
        if tx is not None:
            applied = 0
            for address in sorted(tx._writes):
                if applied == 0:
                    # Die as a replica-set leader with the commit decided
                    # but *nothing* applied on this shard: redo against
                    # the failed-over leader must roll it forward.
                    crashpoint("repl.leader_mid_commit_apply")
                tx._apply_commit(address, commit_ts)
                applied += 1
                if applied == 1:
                    # Die with the commit decided, this shard part-applied
                    # and the ack unsent: the TSR must finish the job.
                    crashpoint("twopc.mid_participant_commit")
            tx.state = TxState.COMMITTED
            return {"applied": applied, "resolved": 0}
        return {"applied": 0, "resolved": self._resolve_keys(keys)}

    def abort(self, txid: str, keys: list[str]) -> dict:
        """Roll back this shard's share of an aborted transaction."""
        with self._table_lock:
            tx = self._prepared.pop(txid, None)
        if tx is not None:
            released = len(tx._held_locks)
            tx._rollback_locks()
            tx.state = TxState.ABORTED
            return {"released": released, "resolved": 0}
        return {"released": 0, "resolved": self._resolve_keys(keys)}

    def _resolve_keys(self, keys: list[str]) -> int:
        resolved = 0
        for key in keys:
            try:
                if self._manager.resolve_lock(self._store, key):
                    resolved += 1
            except StoreError:
                pass  # a later pass (or the scavenger) retries
        return resolved

    # -- timeout-abort -----------------------------------------------------------

    def expire(self) -> dict:
        """Resolve every expired lock on this shard (participant janitor).

        The shard-local flavour of scavenging: scan own keys, and for each
        lock whose lease has lapsed run the manager's resolution — consult
        the TSR (over HTTP when the primary is a peer shard), roll forward
        if committed, arbitrate an abort otherwise.  Locks with live
        leases are left alone; their owner is still deciding.
        """
        scanned = 0
        resolved = 0
        now_us = self._manager._now_us()
        for key in list(self._store.keys()):
            if key.startswith(TSR_PREFIX):
                continue
            scanned += 1
            versioned = self._store.get_with_meta(key)
            if versioned is None:
                continue
            try:
                record = TxRecord.decode(versioned.value)
            except ValueError:
                continue  # raw key, not transactional
            lock = record.lock
            if lock is None or lock.lease_expiry_us >= now_us:
                continue
            try:
                if self._manager.resolve_lock(self._store, key):
                    resolved += 1
            except StoreError:
                pass
        # Drop table entries whose locks are all gone (aborted by peers):
        # a prepared transaction with zero surviving locks can never
        # commit, and keeping it would leak the table.
        with self._table_lock:
            stale = [
                txid
                for txid, tx in self._prepared.items()
                if not any(self._holds_lock(address, txid) for address in tx._writes)
            ]
            for txid in stale:
                self._prepared.pop(txid, None)
        return {"scanned": scanned, "resolved": resolved, "dropped": len(stale)}

    def _holds_lock(self, address: tuple[str, str], txid: str) -> bool:
        try:
            versioned = self._store.get_with_meta(address[1])
        except StoreError:
            return True  # can't tell; keep the entry
        if versioned is None:
            return False
        try:
            record = TxRecord.decode(versioned.value)
        except ValueError:
            return False
        return record.lock is not None and record.lock.txid == txid
