"""The replicated-cluster consistency probe: one seeded, deterministic run.

:func:`run_replicated_probe` extends the replication package's
:func:`~repro.replication.probe.run_probe` to the sharded topology: N
session tasks issue a seeded mix of unique-marker KV operations (the
consistency :class:`~repro.replication.history.History`) and **cross-
shard 2PC transfers over a closed economy** against a
:class:`~repro.cluster.replicated.ReplicatedShardCluster` under the PR-4
virtual-time scheduler.  One driver task per shard renews that group's
lease and ships its log each interval (the replication-lag knob), and an
optional **nemesis** task kills a seed-chosen shard's leader mid-run,
waits the lease out, and fails over — so in-flight transactions die in
every phase of 2PC and must converge through recovery.

Every operation is atomic in virtual time, so the run is a pure function
of the seed.  The repair phase rejoins dead members, replays every
session coordinator's WAL (:func:`~repro.cluster.twopc.
recover_coordinator` — exercising the participant re-route path when a
failover happened), scavenges, and audits: the history's per-level
guarantee (γ == 0 at strong and quorum), total cash preserved, zero
residual locks, and every follower log a prefix of its leader's.  The
``replicated_shard_frontier`` experiment sweeps this across
shards × replicas × lag; the conformance suite asserts it per crashpoint.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from ..kvstore.base import StoreError
from ..recovery.scavenger import TxnScavenger
from ..replication.history import ConformanceReport, History
from ..replication.routed import ConsistencyLevel, ReplicaSession
from ..sim.clock import use_clock
from ..sim.scheduler import Scheduler, SimClock
from ..txn.errors import TransactionAborted, TransactionConflict
from .replicated import ReplicatedShardCluster
from .twopc import recover_coordinator

__all__ = ["ReplicatedProbeResult", "run_replicated_probe"]


@dataclass
class ReplicatedProbeResult:
    level: str
    seed: int
    shard_count: int
    follower_count: int
    ship_interval_s: float
    staleness_bound_s: float
    report: ConformanceReport
    economy_expected: int = 0
    economy_total: int = 0
    transfers_committed: int = 0
    transfers_aborted: int = 0
    ops_unavailable: int = 0
    failovers: list[dict] = field(default_factory=list)
    repaired: bool = False
    followers_prefix_ok: bool = True
    followers_caught_up: bool = True
    residual_locks: int = 0
    recovery: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    virtual_elapsed_s: float = 0.0

    @property
    def economy_ok(self) -> bool:
        return self.economy_total == self.economy_expected

    @property
    def converged(self) -> bool:
        """Did recovery restore a consistent cluster?

        Total cash preserved (every in-flight transfer committed
        everywhere or aborted everywhere), no residual locks, and every
        follower log a prefix of its leader's.
        """
        return (
            self.economy_ok
            and self.residual_locks == 0
            and self.followers_prefix_ok
        )


def _bound_for(level: ConsistencyLevel, staleness_bound_s: float) -> float | None:
    """Which staleness bound the history checker enforces at this level."""
    if level in (ConsistencyLevel.STRONG, ConsistencyLevel.QUORUM):
        return 0.0
    if level is ConsistencyLevel.BOUNDED_STALENESS:
        return staleness_bound_s
    return None  # read_your_writes promises session order, not freshness


def run_replicated_probe(
    seed: int,
    level: ConsistencyLevel | str = ConsistencyLevel.STRONG,
    shard_count: int = 2,
    follower_count: int = 2,
    ship_interval_s: float = 0.02,
    staleness_bound_s: float = 0.3,
    sessions: int = 4,
    ops_per_session: int = 60,
    key_count: int = 8,
    account_count: int = 16,
    initial_cash: int = 100,
    write_fraction: float = 0.25,
    transfer_fraction: float = 0.25,
    transfer_amount: int = 5,
    mean_think_s: float = 0.01,
    nemesis: dict | None = None,
    repair: bool = True,
) -> ReplicatedProbeResult:
    """One deterministic probe run; see the module docstring.

    ``nemesis`` arms a leader kill: ``{"at_s": 0.4}`` kills the
    seed-chosen shard's leader 0.4 virtual seconds into the run phase
    (``"shard"`` overrides the victim, ``"clean"`` the failover mode,
    ``"rejoin_after_s"`` folds the dead member back in mid-run).
    """
    if isinstance(level, str):
        level = ConsistencyLevel(level)
    if ship_interval_s <= 0:
        raise ValueError(f"ship_interval_s must be > 0, got {ship_interval_s}")
    scheduler = Scheduler()
    clock = SimClock(scheduler)
    history = History()
    keys = [f"marker{index:04d}" for index in range(key_count)]
    accounts = [f"acct{index:05d}" for index in range(account_count)]

    with use_clock(clock):
        cluster = ReplicatedShardCluster(
            shard_count=shard_count,
            follower_count=follower_count,
            lease_duration_s=max(1.0, ship_interval_s * 20),
            ship_interval_s=ship_interval_s,
            clock=clock.now,
            seed=seed,
        )

        # -- load phase (driver-side, no failures armed) ----------------------
        managers = []
        loader_mgr = cluster.manager(client_id=f"probe{seed}-loader")
        managers.append(loader_mgr)
        load_tx = loader_mgr.begin()
        for account in accounts:
            load_tx.write(account, {"cash": str(initial_cash)})
        load_tx.commit()
        loader = cluster.routed(
            ConsistencyLevel.STRONG, session=ReplicaSession(), rng=random.Random(seed)
        )
        for key in keys:
            marker = history.next_marker()
            loader.put(key, {"marker": str(marker)})
            history.note_write("load", key, marker, clock.monotonic())
        cluster.flush_all()
        scheduler.sleep(0.01)  # separate load and run snapshots in virtual time

        # -- run phase ---------------------------------------------------------
        stop = threading.Event()
        live_sessions = [sessions]
        session_lock = threading.Lock()
        routed_stores = []
        stats = {"committed": 0, "aborted": 0, "unavailable": 0}
        failovers: list[dict] = []

        def session_fn(index: int):
            name = f"s{index}"
            rng = random.Random(seed * 1_000_003 + index)
            # Each session writes its own key partition (reads roam over
            # all keys): per-key writes are then totally ordered by note
            # time, so the checker's idx order matches apply order — a
            # concurrent same-key quorum write could otherwise complete
            # its majority ack (and be noted) after a later overwrite,
            # reading as a false stale read.
            own_keys = [key for pos, key in enumerate(keys) if pos % sessions == index]
            if not own_keys:
                own_keys = keys
            routed = cluster.routed(
                level,
                staleness_bound_s=staleness_bound_s,
                session=ReplicaSession(),
                rng=random.Random(seed * 7_919 + index),
            )
            routed_stores.append(routed)
            manager = cluster.manager(client_id=f"probe{seed}-s{index}")
            managers.append(manager)

            def follower_reads() -> int:
                return routed.counters().get("REPL-FOLLOWER-READS", 0)

            for _ in range(ops_per_session):
                scheduler.sleep(rng.expovariate(1.0 / mean_think_s))
                roll = rng.random()
                if roll < transfer_fraction:
                    source, target = rng.sample(accounts, 2)
                    try:
                        tx = manager.begin()
                        debit = tx.read(source)
                        credit = tx.read(target)
                        if debit is None or credit is None:
                            tx.abort()
                            stats["unavailable"] += 1
                            continue
                        amount = min(transfer_amount, int(debit["cash"]))
                        tx.write(source, {"cash": str(int(debit["cash"]) - amount)})
                        tx.write(target, {"cash": str(int(credit["cash"]) + amount)})
                        tx.commit()
                        stats["committed"] += 1
                    except (TransactionAborted, TransactionConflict):
                        stats["aborted"] += 1
                    except StoreError:
                        # A shard leader is down (or died at the commit
                        # point): the transaction is in doubt until the
                        # repair phase replays this coordinator's WAL.
                        stats["unavailable"] += 1
                elif roll < transfer_fraction + write_fraction:
                    key = own_keys[rng.randrange(len(own_keys))]
                    marker = history.next_marker()
                    try:
                        routed.put(key, {"marker": str(marker)})
                    except StoreError:
                        stats["unavailable"] += 1
                    else:
                        history.note_write(name, key, marker, clock.monotonic())
                else:
                    key = keys[rng.randrange(len(keys))]
                    before = follower_reads()
                    try:
                        value = routed.get(key)
                    except StoreError:
                        stats["unavailable"] += 1
                    else:
                        source = "follower" if follower_reads() > before else "leader"
                        marker = None if value is None else int(value["marker"])
                        history.note_read(name, key, marker, clock.monotonic(), source)
            with session_lock:
                live_sessions[0] -= 1
                if live_sessions[0] == 0:
                    stop.set()

        def driver_fn(group):
            # Re-reads group.shipper every tick, so the driver survives a
            # failover (the scheduler cannot spawn tasks mid-run).
            while not stop.is_set():
                group.tick()
                scheduler.sleep(ship_interval_s)

        def nemesis_fn(spec: dict):
            scheduler.sleep(float(spec.get("at_s", 0.2)))
            if stop.is_set():
                return
            shard = spec.get("shard") or cluster.shard_names[seed % shard_count]
            killed = cluster.kill_leader(shard)
            group = cluster.groups[shard]
            while group.lease.holder_alive():
                scheduler.sleep(ship_interval_s)
            info = cluster.failover(shard, clean=bool(spec.get("clean", True)))
            failovers.append({"shard": shard, "killed": killed, **info})
            rejoin_after = spec.get("rejoin_after_s")
            if rejoin_after is not None:
                scheduler.sleep(float(rejoin_after))
                if killed in group.crashed:
                    cluster.rejoin(shard, killed)

        tasks = []
        names = []
        for shard_name, group in cluster.groups.items():
            tasks.append(lambda group=group: driver_fn(group))
            names.append(f"driver-{shard_name}")
        if nemesis is not None:
            tasks.append(lambda: nemesis_fn(dict(nemesis)))
            names.append("nemesis")
        for index in range(sessions):
            tasks.append(lambda index=index: session_fn(index))
            names.append(f"session-{index}")
        scheduler.run(tasks, names)

        # -- repair & audit phase ---------------------------------------------
        result = ReplicatedProbeResult(
            level=level.value,
            seed=seed,
            shard_count=shard_count,
            follower_count=follower_count,
            ship_interval_s=ship_interval_s,
            staleness_bound_s=staleness_bound_s,
            report=history.check(_bound_for(level, staleness_bound_s)),
            economy_expected=account_count * initial_cash,
            transfers_committed=stats["committed"],
            transfers_aborted=stats["aborted"],
            ops_unavailable=stats["unavailable"],
            failovers=failovers,
            virtual_elapsed_s=clock.monotonic(),
        )
        if repair:
            for shard_name, group in cluster.groups.items():
                for member in sorted(set(group.crashed)):
                    group.rejoin(member)
            # Let every lock lease lapse (virtual seconds are free), then
            # replay each coordinator's WAL and scavenge the leftovers.
            scheduler.sleep(cluster.lock_lease_ms / 1000.0 + 0.1)
            recovery_totals: dict[str, int] = {}
            for manager in managers:
                for counter, value in recover_coordinator(manager).items():
                    recovery_totals[counter] = recovery_totals.get(counter, 0) + value
            scavenger = TxnScavenger(cluster.manager(client_id=f"probe{seed}-scav"))
            scavenger.scavenge_once()
            verify = scavenger.scavenge_once(remove_orphan_tsrs=False)
            result.residual_locks = verify.locks_seen
            result.recovery = recovery_totals
            cluster.flush_all()
            result.repaired = True

        for group in cluster.groups.values():
            leader = group.leader_node
            leader_log = leader.log.snapshot()
            for name, node in group.nodes.items():
                if node is leader:
                    continue
                follower_log = node.log.snapshot()
                if follower_log != leader_log[: len(follower_log)]:
                    result.followers_prefix_ok = False
                if len(follower_log) != len(leader_log):
                    result.followers_caught_up = False

        # -- closed-economy audit (strong, post-recovery) ---------------------
        scheduler.sleep(0.01)
        audit_mgr = cluster.manager(client_id=f"probe{seed}-audit")
        audit = audit_mgr.begin()
        total = 0
        for account in accounts:
            fields = audit.read(account)
            if fields is not None:
                total += int(fields["cash"])
        audit.abort()
        result.economy_total = total

        counters: dict[str, int] = {}
        for routed in routed_stores:
            for counter, count in routed.counters().items():
                counters[counter] = counters.get(counter, 0) + count
        result.counters = counters
        return result
