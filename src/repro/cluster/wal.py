"""Coordinator write-ahead log for cross-shard two-phase commit.

The coordinator of :mod:`repro.cluster.twopc` is a client process; when it
dies mid-protocol the participants are left with prepared (locked) state
and no one driving phase 2.  The lease/TSR machinery recovers such
transactions *eventually*; the WAL makes recovery *prompt and directed*:
a restarted coordinator replays its log and finishes exactly the
transactions it left in doubt, instead of waiting for every lease to
expire.

Record stream (JSONL, one object per line):

``{"type": "begin", "txid", "start_ts", "primary", "groups"}``
    written before any prepare RPC; ``groups`` maps shard name to the
    per-key staged fields (``null`` = delete intent) so redo can re-issue
    participant RPCs without the original transaction object.
``{"type": "decision", "txid", "decision": "commit"|"abort", "commit_ts"}``
    for commits, written *after* the TSR insert (the true commit point)
    and **before any participant applies** — so a decision in the log is
    always authoritative, and an applied intent always has a logged (or
    TSR-recoverable) decision behind it.
``{"type": "complete", "txid"}``
    phase 2 fully acknowledged and the TSR removed; recovery skips these.

Replay tolerates a torn tail exactly like the LSM WAL: a half-written
last record (no trailing newline / invalid JSON) is dropped, everything
before it is kept.  Appends run through the ``wal.mid_append`` crashpoint
so campaigns can tear this log on purpose.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

from ..recovery.crashpoints import crashpoint

__all__ = ["CoordinatorWAL", "WalTxn"]


@dataclass
class WalTxn:
    """Replay state of one logged transaction."""

    txid: str
    start_ts: int = 0
    primary: str = ""
    #: shard name -> {key: staged fields | None (delete)}.
    groups: dict[str, dict[str, dict | None]] = field(default_factory=dict)
    #: "commit" / "abort" once decided, None while in phase 1.
    decision: str | None = None
    commit_ts: int = 0
    complete: bool = False


class CoordinatorWAL:
    """Append-only JSONL decision log, fsync'd per record."""

    def __init__(self, path: str | Path):
        self._path = Path(path)
        self._lock = threading.Lock()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._truncate_torn_tail()
        self._file = open(self._path, "a", encoding="utf-8")

    def _truncate_torn_tail(self) -> None:
        """Drop a half-written last record before appending after it.

        Without this a post-crash append would glue the next record onto
        the torn line, corrupting *both*.  Our write pattern guarantees a
        torn record is exactly "no trailing newline", so cutting back to
        the last newline is cutting back to the last complete record.
        """
        try:
            raw = self._path.read_bytes()
        except FileNotFoundError:
            return
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1  # 0 when no newline at all
        with open(self._path, "r+b") as sealed:
            sealed.truncate(keep)

    @property
    def path(self) -> Path:
        return self._path

    # -- appends ---------------------------------------------------------------

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        half = len(line) // 2
        with self._lock:
            self._file.write(line[:half])
            self._file.flush()
            # A crash here leaves a torn tail; replay drops it.
            crashpoint("wal.mid_append")
            self._file.write(line[half:])
            self._file.flush()
            os.fsync(self._file.fileno())

    def log_begin(
        self,
        txid: str,
        start_ts: int,
        primary: str,
        groups: dict[str, dict[str, dict | None]],
    ) -> None:
        self._append(
            {
                "type": "begin",
                "txid": txid,
                "start_ts": start_ts,
                "primary": primary,
                "groups": groups,
            }
        )

    def log_decision(self, txid: str, decision: str, commit_ts: int = 0) -> None:
        if decision not in ("commit", "abort"):
            raise ValueError(f"decision must be commit or abort, got {decision!r}")
        self._append(
            {"type": "decision", "txid": txid, "decision": decision, "commit_ts": commit_ts}
        )

    def log_complete(self, txid: str) -> None:
        self._append({"type": "complete", "txid": txid})

    # -- replay ----------------------------------------------------------------

    def replay(self) -> dict[str, WalTxn]:
        """Every logged transaction, folded into its latest state.

        Reads the file fresh (a restarted coordinator may replay a log it
        did not write).  The only record allowed to be unparseable is the
        last one — a torn tail; corruption earlier in the stream raises.
        """
        transactions: dict[str, WalTxn] = {}
        with self._lock:
            self._file.flush()
        try:
            raw = self._path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return transactions
        lines = raw.split("\n")
        # A well-formed file ends with "\n", so the final split element is
        # empty; anything else is the torn tail and is dropped.
        if lines and lines[-1] != "":
            lines = lines[:-1]
        body = [line for line in lines if line]
        for position, line in enumerate(body):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if position == len(body) - 1:
                    break  # torn tail without even a newline boundary
                raise ValueError(
                    f"corrupt coordinator WAL record at line {position + 1}"
                ) from None
            txid = record["txid"]
            entry = transactions.setdefault(txid, WalTxn(txid))
            kind = record["type"]
            if kind == "begin":
                entry.start_ts = int(record["start_ts"])
                entry.primary = record["primary"]
                entry.groups = {
                    shard: dict(keys) for shard, keys in record["groups"].items()
                }
            elif kind == "decision":
                entry.decision = record["decision"]
                entry.commit_ts = int(record.get("commit_ts", 0))
            elif kind == "complete":
                entry.complete = True
        return transactions

    def in_doubt(self) -> list[WalTxn]:
        """Transactions with work left: logged but never completed."""
        return [entry for entry in self.replay().values() if not entry.complete]

    def close(self) -> None:
        with self._lock:
            self._file.close()

    def __enter__(self) -> "CoordinatorWAL":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
