"""Replicated-cluster campaigns: kill a shard *leader* mid-run, fail over.

The ``ycsbt replicated-cluster`` counterpart to ``ycsbt cluster``: each
run executes the Closed Economy Workload against a live
:class:`~repro.cluster.replicated.ReplicatedShardHttpCluster` — every
shard a replica set of HTTP node servers under a leader lease with a log
shipper, transactions spanning shards via two-phase commit — and,
halfway through the measured phase, **kills one shard's leader**.  The
dead leader drops every connection; in-flight prepares and phase-2 RPCs
against that shard fail, the coordinator's WAL keeps those transactions
in doubt, and peers' locks strand.  The degraded half runs with the
shard leaderless (strong operations against it fail; quorum reads still
assemble a majority from the followers).  The campaign then

1. waits out the leader lease and **fails over** to the most-caught-up
   follower (term bump, new shipper), then rejoins the dead member as a
   follower via log catch-up,
2. sleeps past every lock lease (wall clock: real sockets cannot run
   under the virtual-time scheduler),
3. replays the coordinator WAL (:func:`~repro.cluster.twopc.
   recover_coordinator`) — whose participant stubs for the victim shard
   are still bound to the *dead* leader, so redo/undo exercises the
   stale-participant re-route path — and runs the
   :class:`~repro.recovery.scavenger.TxnScavenger` across every shard,
4. re-runs CEW validation over the whole cluster.

The verdict mirrors ``ycsbt cluster``: on the ``txn`` binding
post-recovery validation must pass (total cash preserved, gamma == 0,
zero residual locks) at every shard count, now *through a leader
change*.  The ``raw`` binding has no recovery story and is reported as
the expected baseline; only transactional violations fail the campaign.
Follower logs are durable (each node persists its replication log to a
per-run WAL directory), so the rejoin after failover is a log catch-up,
not a full resync.
"""

from __future__ import annotations

import json
import tempfile
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..bindings.kv import KVStoreDB
from ..bindings.txn import TxnDB
from ..core.client import Client
from ..core.closed_economy import ClosedEconomyWorkload
from ..core.workload import WorkloadError
from ..kvstore.base import StoreError
from ..measurements.exporters import JsonLinesExporter
from ..measurements.registry import Measurements
from ..recovery.scavenger import TxnScavenger
from .campaign import CLUSTER_BINDINGS, _cluster_properties, _NoValidation
from .replicated import ReplicatedShardHttpCluster
from .twopc import recover_coordinator

__all__ = [
    "ReplicatedRunResult",
    "ReplicatedCampaignResult",
    "run_replicated_cluster",
    "run_replicated_campaign",
    "write_replicated_violation_trace",
]


@dataclass
class ReplicatedRunResult:
    """One load → run → kill-leader → run → failover → recover cycle."""

    binding: str
    seed: int
    shard_count: int
    follower_count: int
    level: str
    #: the shard whose leader was killed, or None for a fault-free run.
    killed_shard: str | None
    #: the member (node name) that was killed.
    killed_member: str | None
    #: failover outcome: new leader, term, records lost at promotion.
    failover: dict
    #: rejoin outcome for the dead member ("catch-up" vs "resync").
    rejoin: dict
    healthy_operations: int
    degraded_operations: int
    pre_gamma: float
    pre_passed: bool
    post_gamma: float
    post_passed: bool
    post_validation_fields: list[tuple[str, str]]
    residual_locks: int
    recovery: dict[str, int]
    scavenger_counters: dict[str, int]
    operations: int
    failed_operations: int
    wall_time_s: float
    counters: dict[str, int]
    report_jsonl: str
    properties: dict[str, str]
    errors: list[str] = field(default_factory=list)

    @property
    def transactional(self) -> bool:
        return self.binding != "raw"

    @property
    def violation(self) -> bool:
        """True when failover + recovery failed to restore consistency."""
        return not self.post_passed or self.post_gamma > 0.0 or self.residual_locks > 0

    @property
    def throughput(self) -> float:
        return self.operations / self.wall_time_s if self.wall_time_s > 0 else 0.0

    def summary_line(self) -> str:
        flag = "VIOLATION" if self.violation else "ok"
        killed = self.killed_member or "-"
        promoted = self.failover.get("leader", "-")
        return (
            f"{self.binding:<4} seed={self.seed:<6} shards={self.shard_count} "
            f"x{self.follower_count + 1} killed={killed:<10} "
            f"promoted={promoted:<10} rejoin={self.rejoin.get('mode', '-'):<8} "
            f"post-gamma={self.post_gamma:.6f} "
            f"residual-locks={self.residual_locks} "
            f"redone={self.recovery.get('redone', 0)} "
            f"undone={self.recovery.get('undone', 0)} "
            f"ops={self.operations} failed={self.failed_operations} "
            f"wall={self.wall_time_s:.2f}s {flag}"
        )


def run_replicated_cluster(
    binding: str = "txn",
    shard_count: int = 2,
    follower_count: int = 2,
    level: str = "strong",
    properties: Mapping[str, str] | None = None,
    seed: int = 0,
    kill: bool = True,
    kill_fraction: float = 0.5,
    lease_margin_s: float = 0.5,
) -> ReplicatedRunResult:
    """One leader-failover crash/recovery cycle; the campaign's unit of work.

    The measured phase runs as two exact halves via the client's
    ``operation_count`` override: ``kill_fraction`` of the operations
    against the healthy cluster, then — with the seed-chosen shard's
    leader killed — the rest against the leaderless shard.  Failover,
    rejoin, and recovery happen after the degraded half, so the
    coordinator WAL replays against a *different* leader than the one
    its in-doubt transactions prepared on.  ``level`` sets the raw
    binding's read consistency (the txn binding always routes through
    shard leaders).
    """
    if binding not in CLUSTER_BINDINGS:
        raise ValueError(
            f"unknown cluster binding {binding!r}; use one of {CLUSTER_BINDINGS}"
        )
    props = _cluster_properties(properties, seed)
    lease_ms = props.get_float("txn.lock_lease_ms", 1000.0)
    log_dir = tempfile.mkdtemp(prefix=f"ycsbt-repl-log-{seed}-")
    wall_started = time.perf_counter()
    with ReplicatedShardHttpCluster(
        shard_count,
        follower_count=follower_count,
        lock_lease_ms=lease_ms,
        log_dir=log_dir,
        seed=seed,
    ) as cluster:
        manager = None
        if binding == "txn":
            manager = cluster.manager(client_id=f"replcluster{seed}")
            db_factory = lambda: TxnDB(props, manager=manager)  # noqa: E731
        else:
            routed = cluster.routed(level)
            db_factory = lambda: KVStoreDB(routed, props)  # noqa: E731

        workload = ClosedEconomyWorkload()
        measurements = Measurements.from_properties(props)
        workload.init(props, measurements)
        client = Client(workload, db_factory, props, measurements)
        load = client.load()

        total_ops = props.get_int("operationcount", 400)
        healthy_ops = max(1, int(total_ops * kill_fraction)) if kill else total_ops
        degraded_ops = total_ops - healthy_ops

        healthy = client.run(operation_count=healthy_ops)
        errors = list(load.errors) + list(healthy.errors)
        operations = healthy.operations
        failed = healthy.failed_operations

        killed_shard = None
        killed_member = None
        failover_info: dict = {}
        rejoin_info: dict = {}
        degraded_count = 0
        if kill and degraded_ops > 0:
            killed_shard = cluster.shard_names[seed % shard_count]
            killed_member = cluster.kill_leader(killed_shard)
            # Same workload, same db factory, same measurements — but no
            # validation stage, which cannot scan a leaderless shard.
            degraded_client = Client(
                _NoValidation(workload), db_factory, props, measurements
            )
            degraded = degraded_client.run(operation_count=degraded_ops)
            errors.extend(degraded.errors)
            operations += degraded.operations
            failed += degraded.failed_operations
            degraded_count = degraded.operations
            failover_info = cluster.failover(killed_shard)
            rejoin_info = cluster.rejoin(killed_shard, killed_member)
            cluster.wait_caught_up(timeout_s=10.0)

        # -- recovery: expire leases, replay the WAL, scavenge -------------
        recovery: dict[str, int] = {}
        scavenger_counters: dict[str, int] = {}
        residual_locks = 0
        if manager is not None:
            if killed_shard is not None:
                time.sleep(lease_ms / 1000.0 + lease_margin_s)
            recovery = recover_coordinator(manager)
            scavenger = TxnScavenger(manager)
            scavenger.scavenge_once()
            verify = scavenger.scavenge_once(remove_orphan_tsrs=False)
            residual_locks = verify.locks_seen
            scavenger_counters = {
                name: value for name, value in scavenger.counters().items() if value
            }
            for name, value in scavenger_counters.items():
                measurements.set_counter(name, value)

        # -- post-recovery validation: the campaign's verdict --------------
        post_db = db_factory()
        post_db.init()
        try:
            post_validation = workload.validate(post_db)
        except (WorkloadError, StoreError) as exc:
            errors.append(f"post-validation: {type(exc).__name__}: {exc}")
            post_validation = None
        finally:
            post_db.cleanup()
        workload.cleanup()

        counters = {
            name: int(value) for name, value in measurements.counters().items()
        }
        if manager is not None:
            counters.update(
                {name: value for name, value in manager.counters().items() if value}
            )
        report_jsonl = JsonLinesExporter().export(healthy.report())
    wall_time_s = time.perf_counter() - wall_started
    return ReplicatedRunResult(
        binding=binding,
        seed=seed,
        shard_count=shard_count,
        follower_count=follower_count,
        level=level,
        killed_shard=killed_shard,
        killed_member=killed_member,
        failover=failover_info,
        rejoin=rejoin_info,
        healthy_operations=healthy.operations,
        degraded_operations=degraded_count,
        pre_gamma=healthy.anomaly_score if healthy.anomaly_score is not None else 0.0,
        pre_passed=healthy.validation.passed if healthy.validation else False,
        post_gamma=post_validation.anomaly_score if post_validation else 1.0,
        post_passed=post_validation.passed if post_validation else False,
        post_validation_fields=[
            (str(name), str(value)) for name, value in post_validation.fields
        ]
        if post_validation
        else [],
        residual_locks=residual_locks,
        recovery=recovery,
        scavenger_counters=scavenger_counters,
        operations=operations,
        failed_operations=failed,
        wall_time_s=wall_time_s,
        counters=counters,
        report_jsonl=report_jsonl,
        properties=props.as_dict(),
        errors=errors,
    )


def write_replicated_violation_trace(
    result: ReplicatedRunResult, directory: str | Path
) -> Path:
    """Write the replayable artifact for a run recovery failed to repair."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {
        "kind": "ycsbt-replicated-cluster-violation",
        "binding": result.binding,
        "seed": result.seed,
        "shard_count": result.shard_count,
        "follower_count": result.follower_count,
        "level": result.level,
        "killed_shard": result.killed_shard,
        "killed_member": result.killed_member,
        "failover": result.failover,
        "rejoin": result.rejoin,
        "healthy_operations": result.healthy_operations,
        "degraded_operations": result.degraded_operations,
        "pre_recovery": {"gamma": result.pre_gamma, "passed": result.pre_passed},
        "post_recovery": {
            "gamma": result.post_gamma,
            "passed": result.post_passed,
            "validation": [list(pair) for pair in result.post_validation_fields],
            "residual_locks": result.residual_locks,
        },
        "coordinator_recovery": result.recovery,
        "scavenger": result.scavenger_counters,
        "operations": result.operations,
        "failed_operations": result.failed_operations,
        "wall_time_s": result.wall_time_s,
        "counters": result.counters,
        "properties": result.properties,
        "replay": {
            "command": (
                f"ycsbt replicated-cluster --db {result.binding} "
                f"--shards {result.shard_count} "
                f"--followers {result.follower_count} "
                f"--seeds 1 --start-seed {result.seed}"
            ),
        },
        "errors": result.errors,
    }
    path = directory / (
        f"replicated-violation-{result.binding}-shards{result.shard_count}"
        f"-seed{result.seed}.json"
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class ReplicatedCampaignResult:
    """All runs of one replicated campaign plus the violations it surfaced."""

    runs: list[ReplicatedRunResult]
    artifacts: list[Path] = field(default_factory=list)

    @property
    def violations(self) -> list[ReplicatedRunResult]:
        return [run for run in self.runs if run.violation]

    @property
    def transactional_violations(self) -> list[ReplicatedRunResult]:
        """The failures that fail the campaign: 2PC + failover broke its promise."""
        return [run for run in self.runs if run.transactional and run.violation]

    def by_binding(self, binding: str) -> list[ReplicatedRunResult]:
        return [run for run in self.runs if run.binding == binding]

    def summary(self) -> str:
        lines = []
        for binding in sorted({run.binding for run in self.runs}):
            runs = self.by_binding(binding)
            violations = [run for run in runs if run.violation]
            kills = sum(1 for run in runs if run.killed_member is not None)
            catchups = sum(1 for run in runs if run.rejoin.get("mode") == "catch-up")
            max_post = max((run.post_gamma for run in runs), default=0.0)
            wall = sum(run.wall_time_s for run in runs)
            lines.append(
                f"{binding}: {len(runs)} runs, {kills} leader kills, "
                f"{catchups} catch-up rejoins, "
                f"{len(violations)} post-recovery violations, "
                f"max post-gamma {max_post:.6f}, {wall:.2f} wall s"
            )
        return "\n".join(lines)


def run_replicated_campaign(
    seeds: Sequence[int],
    bindings: Sequence[str] = ("raw", "txn"),
    shard_counts: Sequence[int] = (2,),
    follower_count: int = 2,
    level: str = "strong",
    properties: Mapping[str, str] | None = None,
    kill: bool = True,
    out_dir: str | Path | None = None,
    on_result=None,
) -> ReplicatedCampaignResult:
    """Sweep seeds x shard counts x bindings; artifacts for violations.

    Only *transactional* post-recovery violations should fail a CI job —
    the raw binding leaking money across a leaderless shard is the
    expected baseline, not a bug (see the CLI's exit-code rule).
    """
    result = ReplicatedCampaignResult(runs=[])
    for shard_count in shard_counts:
        for binding in bindings:
            for seed in seeds:
                run = run_replicated_cluster(
                    binding=binding,
                    shard_count=shard_count,
                    follower_count=follower_count,
                    level=level,
                    properties=properties,
                    seed=seed,
                    kill=kill,
                )
                result.runs.append(run)
                if run.violation and out_dir is not None:
                    result.artifacts.append(
                        write_replicated_violation_trace(run, out_dir)
                    )
                if on_result is not None:
                    on_result(run)
    return result
