"""Multi-node shard cluster with cross-shard two-phase commit.

The web-scale deployment shape of the benchmark: N HTTP key-value shard
servers behind a client-side consistent-hash shard map, raw operations
routed per key with per-shard bulk-load fan-out, and transactions
spanning shards via two-phase commit — participant-side prepare, a
TSR commit point compatible with every single-node recovery path, and a
coordinator WAL enabling redo→undo recovery after coordinator death.
"""

from .cluster import ShardCluster
from .participant import TwoPCParticipant
from .replicated import (
    ReplicaGroup,
    ReplicatedShardCluster,
    ReplicatedShardHttpCluster,
    ReplicatedShardRoutedStore,
)
from .router import ShardRoutedStore
from .twopc import ParticipantClient, TwoPCManager, TwoPCTransaction, recover_coordinator
from .wal import CoordinatorWAL, WalTxn

__all__ = [
    "ShardCluster",
    "TwoPCParticipant",
    "ReplicaGroup",
    "ReplicatedShardCluster",
    "ReplicatedShardHttpCluster",
    "ReplicatedShardRoutedStore",
    "ShardRoutedStore",
    "ParticipantClient",
    "TwoPCManager",
    "TwoPCTransaction",
    "recover_coordinator",
    "CoordinatorWAL",
    "WalTxn",
]
