"""Replicated shard cluster: every shard a replica set, 2PC on top.

This module composes the two halves the repo already has — the cluster
package's cross-shard two-phase commit and the replication package's
leader/follower machinery — into the paper's full deployment shape: N
shards, each a replica set of one leader plus K followers under a
per-shard :class:`~repro.replication.lease.LeaseTable`, with a
:class:`~repro.replication.ship.LogShipper` streaming the leader's log.

Three composition rules make the marriage work:

* **Store routing self-heals.**  Coordinators (and the scavenger) address
  shards through :class:`_ShardLeaderStore` proxies that re-resolve the
  lease on every call — the in-process analogue of "an address served by
  whoever currently leads".  TSR reads, lock resolution and snapshot
  reads therefore survive a failover with no coordinator changes.

* **Participant stubs are regime-bound.**  A coordinator's 2PC stub
  (:class:`_LocalParticipantLink` in process, a pinned HTTP client in the
  real cluster) holds the address of whichever node led when the stub was
  built.  After a failover that address is dead, so the stub answers
  :class:`~repro.kvstore.base.StoreUnavailable` — exactly the failure
  :func:`~repro.cluster.twopc.recover_coordinator` re-routes through the
  manager's ``participant_resolver``.

* **Participant death looks like transport loss.**  A participant-side
  :class:`~repro.recovery.crashpoints.CrashError` (``repl.leader_mid_
  prepare``, ``repl.leader_mid_commit_apply``, ``twopc.mid_participant_
  commit``) marks the shard's leader crashed and surfaces as
  ``StoreUnavailable`` — the coordinator outlives its participants, as it
  does over HTTP where the server flips crashed.  Coordinator-side
  crashpoints (``twopc.after_prepare`` & co.) still kill the coordinator.

Because every lock, staged intent and TSR a participant writes goes
through the leader's logged store adapter, 2PC state **replicates with
the data**: after a leader dies mid-transaction, the failed-over leader
holds exactly the shipped prefix (plus, on a clean failover, the drained
suffix — the disk survived the process), and the existing recovery stack
— CoordinatorWAL redo-before-undo, TSR arbitration, the scavenger —
converges every in-flight transaction to one cluster-wide outcome.

Two assemblies, mirroring the single-shard replication package:
:class:`ReplicatedShardCluster` is in-process and virtual-time friendly
(the conformance suite and the ``replicated_shard_frontier`` experiment);
:class:`ReplicatedShardHttpCluster` puts every node behind a real
:class:`~repro.http.server.KVStoreHTTPServer` (the ``ycsbt
replicated-cluster`` campaign).  See docs/CLUSTER.md § "Replicated
shards" and docs/REPLICATION.md § "Composing with 2PC".
"""

from __future__ import annotations

import random
import tempfile
from collections.abc import Iterator, Mapping, Sequence
from pathlib import Path

from ..http.client import HttpKVStore
from ..http.server import KVStoreHTTPServer
from ..kvstore.base import (
    Fields,
    KeyValueStore,
    StoreUnavailable,
    VersionedValue,
)
from ..kvstore.sharded import ConsistentHashRing
from ..recovery.crashpoints import CrashError
from ..recovery.scavenger import TxnScavenger
from ..replication.lease import LeaseError, LeaseTable
from ..replication.log import DurableReplicationLog, ReplicationLog
from ..replication.node import LeaderStoreAdapter, ReplicationNode
from ..replication.routed import (
    ConsistencyLevel,
    ReplicaHandle,
    ReplicaRoutedStore,
    ReplicaSession,
    ReplicaSetView,
)
from ..replication.ship import (
    HttpReplLink,
    InProcessLink,
    LogShipper,
    anti_entropy,
    rejoin_follower,
)
from ..sim.clock import ambient_now, ambient_sleep
from ..txn.errors import TransactionConflict
from .participant import TwoPCParticipant
from .router import ShardRoutedStore
from .twopc import ParticipantClient, TwoPCManager
from .wal import CoordinatorWAL

__all__ = [
    "ReplicaGroup",
    "ReplicatedShardRoutedStore",
    "ReplicatedShardCluster",
    "ReplicatedShardHttpCluster",
]


def _member_log(log_dir: str | Path | None, name: str) -> ReplicationLog | None:
    if log_dir is None:
        return None
    return DurableReplicationLog(Path(log_dir) / f"{name}.wal")


class ReplicaGroup:
    """One shard's replica set: leader + K followers + lease + shipper.

    The harness plays the coordination service (it holds the lease
    table), exactly as in the replication package.  ``crashed`` is the
    set of member names whose *process* is dead — their node objects
    survive as the "disk" a clean failover drains.
    """

    def __init__(
        self,
        shard_name: str,
        follower_count: int = 2,
        lease_duration_s: float = 1.0,
        ship_interval_s: float = 0.05,
        clock=ambient_now,
        log_dir: str | Path | None = None,
    ):
        if follower_count < 1:
            raise ValueError(f"follower_count must be >= 1, got {follower_count}")
        self.shard_name = shard_name
        self._clock = clock
        self._ship_interval_s = ship_interval_s
        self.lease = LeaseTable(lease_duration_s, clock)
        names = [f"{shard_name}-n{index}" for index in range(follower_count + 1)]
        lease = self.lease.grant(names[0])
        self.nodes: dict[str, ReplicationNode] = {}
        for index, name in enumerate(names):
            node = ReplicationNode(name, clock=clock, log=_member_log(log_dir, name))
            if index == 0:
                node.promote(lease.term)
            else:
                node.demote(lease.term, names[0])
            self.nodes[name] = node
        #: members whose process is dead (node objects = their disks).
        self.crashed: set[str] = set()
        self.shipper = self._new_shipper(self.nodes[names[0]])
        self.participant: TwoPCParticipant | None = None
        self._peers: dict[str, KeyValueStore] = {}
        self._lock_lease_ms = 1000.0

    # -- membership ------------------------------------------------------------

    def leader_name(self) -> str:
        lease = self.lease.current()
        if lease is None:
            raise StoreUnavailable(f"{self.shard_name}: no leader lease granted")
        return lease.leader

    @property
    def leader_node(self) -> ReplicationNode:
        return self.nodes[self.leader_name()]

    def leader_store(self) -> LeaderStoreAdapter:
        """The live leader's logged store; raises while the leader is down."""
        name = self.leader_name()
        if name in self.crashed:
            raise StoreUnavailable(f"{self.shard_name}: leader {name!r} is down")
        return LeaderStoreAdapter(self.nodes[name])

    def live_followers(self) -> list[ReplicationNode]:
        leader = self.leader_name()
        return [
            node
            for name, node in self.nodes.items()
            if name != leader and name not in self.crashed
        ]

    # -- 2PC wiring ------------------------------------------------------------

    def build_participant(
        self, peers: Mapping[str, KeyValueStore], lock_lease_ms: float
    ) -> None:
        """Attach this shard's 2PC participant (cluster assembly calls it)."""
        self._peers = dict(peers)
        self._lock_lease_ms = lock_lease_ms
        self._rebuild_participant()

    def _rebuild_participant(self) -> None:
        # The participant writes through the *live leader's* logged store,
        # so locks, staged intents and TSRs replicate with the data.
        self.participant = TwoPCParticipant(
            self.shard_name,
            _ShardLeaderStore(self),
            peers=self._peers,
            lock_lease_ms=self._lock_lease_ms,
        )

    # -- shipping --------------------------------------------------------------

    def _new_shipper(self, leader: ReplicationNode) -> LogShipper:
        return LogShipper(
            leader,
            {
                node.name: InProcessLink(node)
                for node in self.nodes.values()
                if node is not leader and node.name not in self.crashed
            },
            interval_s=self._ship_interval_s,
            lease=self.lease,
        )

    def tick(self) -> None:
        """One heartbeat: renew the lease, ship one round.

        Driven by a probe driver task each interval.  A dead leader
        neither renews nor ships — its lease simply lapses; a scheduled
        mid-ship :class:`CrashError` kills the leader process hosting
        the shipper.
        """
        lease = self.lease.current()
        if lease is None or lease.leader in self.crashed:
            return
        try:
            self.lease.renew(lease.leader)
        except LeaseError:
            return  # superseded regime: this leader is done
        try:
            self.shipper.ship_once()
        except CrashError:
            self.crashed.add(lease.leader)

    def flush(self) -> None:
        """Ship until every reachable follower holds the full leader log."""
        leader = self.leader_node
        while True:
            acked = self.shipper.ship_once()
            behind = [
                name
                for name, seq in acked.items()
                if name not in self.shipper.dead and seq < leader.log.last_seq
            ]
            if not behind:
                return

    # -- failure & failover ------------------------------------------------------

    def kill_leader(self) -> str:
        """Crash the leader's process; its node object remains as the disk."""
        name = self.leader_name()
        self.crashed.add(name)
        return name

    def failover(self, clean: bool = True) -> dict:
        """Promote the most-caught-up live follower once the lease lapsed.

        ``clean=True`` first drains the dead leader's durable log into
        the candidate (the process died, its disk did not) so no
        acknowledged write — including 2PC locks and TSRs — is lost;
        ``clean=False`` models losing that disk, and the return value
        reports how many acknowledged records went with it.  The 2PC
        participant is rebuilt: its volatile prepared table died with
        the old leader, which is exactly the state the durable fallbacks
        (TSR lookup, lease expiry) must resolve.
        """
        old_name = self.leader_name()
        old_leader = self.nodes[old_name]
        if self.lease.holder_alive():
            raise RuntimeError(
                f"{self.shard_name}: lease still live; wait it out before failover"
            )
        candidates = self.live_followers()
        if not candidates:
            raise StoreUnavailable(f"{self.shard_name}: no live follower to promote")
        candidate = max(candidates, key=lambda node: (node.applied_seq, node.name))
        if clean:
            anti_entropy(old_leader, candidate)
        lost = old_leader.log.last_seq - candidate.applied_seq
        lease = self.lease.acquire(candidate.name)
        candidate.promote(lease.term)
        for node in candidates:
            if node is not candidate:
                node.demote(lease.term, candidate.name)
        self.shipper = self._new_shipper(candidate)
        self._rebuild_participant()
        return {
            "leader": candidate.name,
            "term": lease.term,
            "lost_records": max(0, lost),
        }

    def rejoin(self, member: str) -> dict:
        """Bring a dead member back as a follower of the current leader.

        A member whose durable log survived (it always does in-process;
        the node object is the disk) catches up from its applied seq; a
        diverged log is resynced.  Returns the rejoin summary.
        """
        leader = self.leader_node
        node = self.nodes[member]
        self.crashed.discard(member)
        result = rejoin_follower(leader, node)
        node.demote(leader.term, leader.name)
        self.shipper.add_follower(member, InProcessLink(node))
        return result


class _GroupView(ReplicaSetView):
    """A routed store's window onto one group; the lease is the truth."""

    def __init__(self, group: ReplicaGroup):
        self._group = group

    def leader(self) -> ReplicaHandle:
        group = self._group
        name = group.leader_name()
        if name in group.crashed:
            raise StoreUnavailable(f"{group.shard_name}: leader {name!r} is down")
        node = group.nodes[name]
        return ReplicaHandle(name, LeaderStoreAdapter(node), node)

    def followers(self) -> Sequence[ReplicaHandle]:
        group = self._group
        lease = group.lease.current()
        leader_name = lease.leader if lease is not None else None
        return [
            ReplicaHandle(node.name, node.store, node)
            for name, node in group.nodes.items()
            if name != leader_name and name not in group.crashed
        ]

    def refresh(self) -> None:
        pass  # nothing cached: every call re-reads the lease table


class _ShardLeaderStore(KeyValueStore):
    """A shard-addressed store that always resolves the live leader.

    The in-process analogue of an address served by whoever holds the
    lease: every call re-resolves, so the same proxy object works before
    and after a failover, and raises :class:`StoreUnavailable` in the
    window between a leader kill and its failover.  Coordinators use
    these as their shard stores — TSR reads and lock resolution survive
    leader changes with no coordinator-side re-wiring.
    """

    def __init__(self, group: ReplicaGroup):
        self._group = group

    def _store(self) -> KeyValueStore:
        return self._group.leader_store()

    def get_with_meta(self, key: str) -> VersionedValue | None:
        return self._store().get_with_meta(key)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        return self._store().scan(start_key, record_count)

    def keys(self) -> Iterator[str]:
        return self._store().keys()

    def size(self) -> int:
        return self._store().size()

    def put(self, key: str, value: Mapping[str, str]) -> int:
        return self._store().put(key, value)

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        return self._store().put_if_version(key, value, expected_version)

    def put_versioned(self, key: str, versioned: VersionedValue) -> bool:
        return self._store().put_versioned(key, versioned)

    def put_batch(self, records: Sequence[tuple[str, Mapping[str, str]]]) -> list[int]:
        return self._store().put_batch(records)

    def delete(self, key: str) -> bool:
        return self._store().delete(key)

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        return self._store().delete_if_version(key, expected_version)


class _LocalParticipantLink:
    """In-process 2PC stub bound to one leadership regime.

    Mirrors an HTTP :class:`~repro.cluster.twopc.ParticipantClient`
    holding the address of whichever node led the shard when the stub
    was built: after that node dies or is demoted, every verb answers
    :class:`StoreUnavailable` — the failure recovery re-routes through
    the manager's ``participant_resolver``.  A participant-side
    :class:`CrashError` marks the shard leader crashed and surfaces as
    ``StoreUnavailable`` (over HTTP the server flips crashed and the
    client sees a dropped connection), so the coordinator outlives its
    participants; coordinator-side crashpoints still propagate.
    """

    def __init__(self, group: ReplicaGroup):
        self._group = group
        self._bound_to = group.leader_name()

    def _participant(self) -> TwoPCParticipant:
        group = self._group
        if self._bound_to in group.crashed:
            raise StoreUnavailable(
                f"{group.shard_name}: node {self._bound_to!r} is down"
            )
        if group.leader_name() != self._bound_to:
            raise StoreUnavailable(
                f"{group.shard_name}: node {self._bound_to!r} no longer leads"
            )
        if group.participant is None:
            raise StoreUnavailable(f"{group.shard_name}: no participant attached")
        return group.participant

    def _call(self, operation):
        participant = self._participant()
        try:
            return operation(participant)
        except CrashError:
            self._group.crashed.add(self._bound_to)
            raise StoreUnavailable(
                f"{self._group.shard_name}: leader {self._bound_to!r} "
                "died mid-request"
            ) from None

    def prepare(
        self, txid: str, start_ts: int, primary: str, writes: Mapping[str, Fields | None]
    ) -> bool:
        try:
            self._call(lambda p: p.prepare(txid, start_ts, primary, dict(writes)))
        except TransactionConflict:
            return False  # the HTTP layer's 409 no-vote, in-process
        return True

    def commit(self, txid: str, commit_ts: int, keys: list[str]) -> dict:
        return self._call(lambda p: p.commit(txid, commit_ts, list(keys)))

    def abort(self, txid: str, keys: list[str]) -> dict:
        return self._call(lambda p: p.abort(txid, list(keys)))

    def expire(self) -> dict:
        return self._call(lambda p: p.expire())


class ReplicatedShardRoutedStore(ShardRoutedStore):
    """The raw data path when every shard is a replica set.

    Ring routing picks the shard; a per-shard
    :class:`~repro.replication.routed.ReplicaRoutedStore` then routes
    within the replica set by consistency level (strong /
    read_your_writes / bounded_staleness / quorum), with the inherited
    retry-once-on-failover write path.  One session vector spans all
    shards, so read-your-writes holds across shard boundaries.
    """

    def __init__(
        self,
        groups: Mapping[str, ReplicaGroup],
        level: ConsistencyLevel | str = ConsistencyLevel.STRONG,
        staleness_bound_s: float = 0.1,
        session: ReplicaSession | None = None,
        rng: random.Random | None = None,
        clock=ambient_now,
        ring: ConsistentHashRing | None = None,
        replicas: int = 32,
        quorum_timeout_s: float = 5.0,
        quorum_poll_s: float = 0.005,
    ):
        if not groups:
            raise ValueError("at least one shard group is required")
        if isinstance(level, str):
            level = ConsistencyLevel(level)
        rng = rng or random.Random()
        session = session if session is not None else ReplicaSession()
        shards = {
            name: ReplicaRoutedStore(
                _GroupView(group),
                level=level,
                staleness_bound_s=staleness_bound_s,
                session=session,
                rng=random.Random(rng.randrange(2**31)),
                clock=clock,
                quorum_timeout_s=quorum_timeout_s,
                quorum_poll_s=quorum_poll_s,
            )
            for name, group in sorted(groups.items())
        }
        super().__init__(shards, replicas=replicas, ring=ring)
        self._level = level
        self.session = session

    @property
    def level(self) -> ConsistencyLevel:
        return self._level


class ReplicatedShardCluster:
    """N shards × (1 + K) replicas with cross-shard 2PC, in process.

    The deterministic assembly for the conformance suite and the
    ``replicated_shard_frontier`` experiment: pass a virtual clock and
    drive shipping explicitly (:meth:`tick_all` from a scheduler task),
    and every run is a pure function of the seed.
    """

    def __init__(
        self,
        shard_count: int = 2,
        follower_count: int = 2,
        lease_duration_s: float = 1.0,
        ship_interval_s: float = 0.05,
        clock=ambient_now,
        seed: int = 0,
        lock_lease_ms: float = 1000.0,
        replicas: int = 32,
        wal_dir: str | Path | None = None,
        log_dir: str | Path | None = None,
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        self.shard_names = [f"shard{i}" for i in range(shard_count)]
        self._clock = clock
        self._rng = random.Random(seed)
        self.lock_lease_ms = lock_lease_ms
        self._wal_dir = (
            Path(wal_dir) if wal_dir else Path(tempfile.mkdtemp(prefix="repl-2pc-wal-"))
        )
        self._wal_count = 0
        self.groups: dict[str, ReplicaGroup] = {}
        for name in self.shard_names:
            group_dir = None if log_dir is None else Path(log_dir) / name
            if group_dir is not None:
                group_dir.mkdir(parents=True, exist_ok=True)
            self.groups[name] = ReplicaGroup(
                name,
                follower_count=follower_count,
                lease_duration_s=lease_duration_s,
                ship_interval_s=ship_interval_s,
                clock=clock,
                log_dir=group_dir,
            )
        self._ring = ConsistentHashRing(list(self.shard_names), replicas=replicas)
        for name, group in self.groups.items():
            peers = {
                peer: _ShardLeaderStore(self.groups[peer])
                for peer in self.shard_names
                if peer != name
            }
            group.build_participant(peers, lock_lease_ms)

    # -- client-side views -------------------------------------------------------

    def ring(self) -> ConsistentHashRing:
        return self._ring

    def routed(
        self,
        level: ConsistencyLevel | str = ConsistencyLevel.STRONG,
        staleness_bound_s: float = 0.1,
        session: ReplicaSession | None = None,
        rng: random.Random | None = None,
        **kwargs,
    ) -> ReplicatedShardRoutedStore:
        return ReplicatedShardRoutedStore(
            self.groups,
            level=level,
            staleness_bound_s=staleness_bound_s,
            session=session,
            rng=rng or random.Random(self._rng.randrange(2**31)),
            clock=self._clock,
            ring=self._ring,
            **kwargs,
        )

    def router(self) -> ReplicatedShardRoutedStore:
        """Parity with :class:`~repro.cluster.cluster.ShardCluster`."""
        return self.routed(ConsistencyLevel.STRONG)

    def participant_link(self, shard: str) -> _LocalParticipantLink:
        """A fresh stub bound to the shard's *current* leader (resolver)."""
        return _LocalParticipantLink(self.groups[shard])

    def manager(self, client_id: str | None = None, **kwargs) -> TwoPCManager:
        """A fresh 2PC coordinator with its own WAL (one client process)."""
        self._wal_count += 1
        wal = CoordinatorWAL(self._wal_dir / f"coordinator-{self._wal_count}.jsonl")
        return self.manager_for_wal(wal, client_id=client_id, **kwargs)

    def manager_for_wal(
        self, wal: CoordinatorWAL, client_id: str | None = None, **kwargs
    ) -> TwoPCManager:
        """A coordinator bound to an explicit WAL (restart-after-crash).

        Shard stores self-heal across failovers; participant stubs are
        regime-bound, and the default ``participant_resolver`` re-routes
        them (pass ``participant_resolver=None`` for the static-cluster
        behaviour the resolver regression test documents).
        """
        shards = {
            name: _ShardLeaderStore(group) for name, group in self.groups.items()
        }
        participants = {
            name: _LocalParticipantLink(group) for name, group in self.groups.items()
        }
        kwargs.setdefault("lock_lease_ms", self.lock_lease_ms)
        kwargs.setdefault("participant_resolver", self.participant_link)
        return TwoPCManager(
            shards,
            participants,
            wal,
            ring=self._ring,
            client_id=client_id,
            **kwargs,
        )

    def scavenger(self, manager: TwoPCManager | None = None) -> TxnScavenger:
        """An eager recovery pass that reaches every shard's live leader."""
        return TxnScavenger(manager if manager is not None else self.manager())

    # -- shipping ----------------------------------------------------------------

    def tick_all(self) -> None:
        for group in self.groups.values():
            group.tick()

    def flush_all(self) -> None:
        for group in self.groups.values():
            group.flush()

    # -- failure & failover ------------------------------------------------------

    def kill_leader(self, shard: str) -> str:
        return self.groups[shard].kill_leader()

    def failover(self, shard: str, clean: bool = True) -> dict:
        return self.groups[shard].failover(clean=clean)

    def rejoin(self, shard: str, member: str) -> dict:
        return self.groups[shard].rejoin(member)


class _HttpLeaderStore(KeyValueStore):
    """A shard-addressed HTTP store resolving the live leader's client.

    What :class:`_ShardLeaderStore` is in process, over real sockets: the
    coordinator-side stand-in for a load balancer that tracks the lease.
    Exposes ``post_json`` so :class:`~repro.cluster.twopc.
    ParticipantClient` built over it reaches the current leader too.
    """

    def __init__(self, cluster: "ReplicatedShardHttpCluster", shard: str):
        self._cluster = cluster
        self._shard = shard

    def _client(self) -> HttpKVStore:
        return self._cluster.leader_client(self._shard)

    def post_json(self, path: str, body: dict) -> tuple[int, dict | None]:
        return self._client().post_json(path, body)

    def get_with_meta(self, key: str) -> VersionedValue | None:
        return self._client().get_with_meta(key)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        return self._client().scan(start_key, record_count)

    def keys(self) -> Iterator[str]:
        return self._client().keys()

    def size(self) -> int:
        return self._client().size()

    def put(self, key: str, value: Mapping[str, str]) -> int:
        return self._client().put(key, value)

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        return self._client().put_if_version(key, value, expected_version)

    def put_versioned(self, key: str, versioned: VersionedValue) -> bool:
        return self._client().put_versioned(key, versioned)

    def put_batch(self, records: Sequence[tuple[str, Mapping[str, str]]]) -> list[int]:
        return self._client().put_batch(records)

    def delete(self, key: str) -> bool:
        return self._client().delete(key)

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        return self._client().delete_if_version(key, expected_version)


class _HttpGroupView(ReplicaSetView):
    """A routed store's window onto one HTTP shard's replica set."""

    def __init__(self, cluster: "ReplicatedShardHttpCluster", shard: str):
        self._cluster = cluster
        self._shard = shard

    def leader(self) -> ReplicaHandle:
        cluster = self._cluster
        name = cluster.leader_member(self._shard)
        client = cluster.leader_client(self._shard)
        return ReplicaHandle(name, client, HttpReplLink(name, client))

    def followers(self) -> Sequence[ReplicaHandle]:
        return self._cluster.follower_handles(self._shard)

    def refresh(self) -> None:
        pass


class ReplicatedShardHttpCluster:
    """The same topology behind real HTTP servers (campaign substrate).

    Every member of every shard runs a :class:`KVStoreHTTPServer`
    fronting its node's logged store adapter (followers reject writes
    with ``NotLeaderError`` and serve ``/repl/*``); only the current
    leader's server carries the shard's 2PC participant.  Per-shard
    wall-clock shippers renew leases; :meth:`kill_leader` crashes the
    leader's server and its shipper, :meth:`failover` waits the lease
    out and promotes — reviving the new leader's server with a fresh
    participant whose volatile prepared table starts empty.
    """

    def __init__(
        self,
        shard_count: int = 2,
        follower_count: int = 2,
        lease_duration_s: float = 0.5,
        ship_interval_s: float = 0.02,
        lock_lease_ms: float = 1000.0,
        replicas: int = 32,
        host: str = "127.0.0.1",
        wal_dir: str | Path | None = None,
        log_dir: str | Path | None = None,
        seed: int = 0,
    ):
        if shard_count < 1:
            raise ValueError("shard_count must be at least 1")
        if follower_count < 1:
            raise ValueError(f"follower_count must be >= 1, got {follower_count}")
        self.shard_names = [f"shard{i}" for i in range(shard_count)]
        self._follower_count = follower_count
        self._lease_duration_s = lease_duration_s
        self._ship_interval_s = ship_interval_s
        self.lock_lease_ms = lock_lease_ms
        self._host = host
        self._log_dir = Path(log_dir) if log_dir else None
        self._wal_dir = (
            Path(wal_dir) if wal_dir else Path(tempfile.mkdtemp(prefix="repl-2pc-wal-"))
        )
        self._wal_count = 0
        self._rng = random.Random(seed)
        self._ring = ConsistentHashRing(list(self.shard_names), replicas=replicas)
        self.leases: dict[str, LeaseTable] = {}
        self.nodes: dict[str, dict[str, ReplicationNode]] = {}
        self.servers: dict[str, dict[str, KVStoreHTTPServer]] = {}
        self.shippers: dict[str, LogShipper] = {}
        self._clients: dict[str, dict[str, HttpKVStore]] = {}
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ReplicatedShardHttpCluster":
        if self._started:
            raise RuntimeError("cluster already started")
        for shard in self.shard_names:
            lease_table = LeaseTable(self._lease_duration_s)
            self.leases[shard] = lease_table
            members = [
                f"{shard}-n{index}" for index in range(self._follower_count + 1)
            ]
            lease = lease_table.grant(members[0])
            shard_dir = None
            if self._log_dir is not None:
                shard_dir = self._log_dir / shard
                shard_dir.mkdir(parents=True, exist_ok=True)
            self.nodes[shard] = {}
            self.servers[shard] = {}
            self._clients[shard] = {}
            for index, name in enumerate(members):
                node = ReplicationNode(name, log=_member_log(shard_dir, name))
                if index == 0:
                    node.promote(lease.term)
                else:
                    node.demote(lease.term, members[0])
                self.nodes[shard][name] = node
                server = KVStoreHTTPServer(
                    LeaderStoreAdapter(node), host=self._host, replicator=node
                ).start()
                self.servers[shard][name] = server
                self._clients[shard][name] = HttpKVStore(server.address)
        # Participants need peer addresses, so wire them in a second pass.
        for shard in self.shard_names:
            leader = self.leader_member(shard)
            self.servers[shard][leader].revive(
                participant=self._build_participant(shard)
            )
            self.shippers[shard] = LogShipper(
                self.nodes[shard][leader],
                self._links(shard, exclude=leader),
                interval_s=self._ship_interval_s,
                lease=self.leases[shard],
            ).start()
        self._started = True
        return self

    def stop(self) -> None:
        for shipper in self.shippers.values():
            shipper.stop()
        self.shippers.clear()
        for shard in self._clients:
            for client in self._clients[shard].values():
                client.close()
        for shard in self.servers:
            for server in self.servers[shard].values():
                server.stop()
        self._clients.clear()
        self.servers.clear()
        self._started = False

    def __enter__(self) -> "ReplicatedShardHttpCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _build_participant(self, shard: str) -> TwoPCParticipant:
        peers = {
            peer: _HttpLeaderStore(self, peer)
            for peer in self.shard_names
            if peer != shard
        }
        return TwoPCParticipant(
            shard,
            _HttpLeaderStore(self, shard),
            peers=peers,
            lock_lease_ms=self.lock_lease_ms,
        )

    def _links(self, shard: str, exclude: str) -> dict[str, HttpReplLink]:
        return {
            name: HttpReplLink(name, client)
            for name, client in self._clients[shard].items()
            if name != exclude and not self.servers[shard][name].crashed
        }

    # -- membership --------------------------------------------------------------

    def leader_member(self, shard: str) -> str:
        lease = self.leases[shard].current()
        if lease is None:
            raise StoreUnavailable(f"{shard}: no leader lease granted")
        return lease.leader

    def leader_client(self, shard: str) -> HttpKVStore:
        name = self.leader_member(shard)
        if self.servers[shard][name].crashed:
            raise StoreUnavailable(f"{shard}: leader {name!r} is down")
        return self._clients[shard][name]

    def follower_handles(self, shard: str) -> list[ReplicaHandle]:
        leader = self.leader_member(shard)
        return [
            ReplicaHandle(name, client, HttpReplLink(name, client))
            for name, client in self._clients[shard].items()
            if name != leader and not self.servers[shard][name].crashed
        ]

    # -- client-side views -------------------------------------------------------

    def ring(self) -> ConsistentHashRing:
        return self._ring

    def routed(
        self,
        level: ConsistencyLevel | str = ConsistencyLevel.STRONG,
        staleness_bound_s: float = 0.1,
        session: ReplicaSession | None = None,
        rng: random.Random | None = None,
        **kwargs,
    ) -> ShardRoutedStore:
        if isinstance(level, str):
            level = ConsistencyLevel(level)
        rng = rng or random.Random(self._rng.randrange(2**31))
        session = session if session is not None else ReplicaSession()
        shards = {
            shard: ReplicaRoutedStore(
                _HttpGroupView(self, shard),
                level=level,
                staleness_bound_s=staleness_bound_s,
                session=session,
                rng=random.Random(rng.randrange(2**31)),
                **kwargs,
            )
            for shard in self.shard_names
        }
        return ShardRoutedStore(shards, ring=self._ring)

    def participant_link(self, shard: str) -> ParticipantClient:
        """A fresh stub through the lease-tracking proxy (resolver)."""
        return ParticipantClient(_HttpLeaderStore(self, shard))

    def manager(self, client_id: str | None = None, **kwargs) -> TwoPCManager:
        self._wal_count += 1
        wal = CoordinatorWAL(self._wal_dir / f"coordinator-{self._wal_count}.jsonl")
        return self.manager_for_wal(wal, client_id=client_id, **kwargs)

    def manager_for_wal(
        self, wal: CoordinatorWAL, client_id: str | None = None, **kwargs
    ) -> TwoPCManager:
        """A coordinator over the current leaders.

        Participant stubs pin the leader's address at build time (what a
        real client holds); the resolver re-routes them after failovers.
        """
        shards = {
            shard: _HttpLeaderStore(self, shard) for shard in self.shard_names
        }
        participants = {
            shard: ParticipantClient(self.leader_client(shard))
            for shard in self.shard_names
        }
        kwargs.setdefault("lock_lease_ms", self.lock_lease_ms)
        kwargs.setdefault("participant_resolver", self.participant_link)
        return TwoPCManager(
            shards,
            participants,
            wal,
            ring=self._ring,
            client_id=client_id,
            **kwargs,
        )

    def scavenger(self, manager: TwoPCManager | None = None) -> TxnScavenger:
        return TxnScavenger(manager if manager is not None else self.manager())

    # -- failure & failover ------------------------------------------------------

    def kill_leader(self, shard: str) -> str:
        """Crash the shard leader's process: server and shipper die."""
        name = self.leader_member(shard)
        shipper = self.shippers.pop(shard, None)
        if shipper is not None:
            shipper.stop()
        self.servers[shard][name].mark_crashed()
        return name

    def failover(self, shard: str, clean: bool = True, timeout_s: float = 10.0) -> dict:
        """Wait the lease out, promote, re-ship, re-attach the participant."""
        lease_table = self.leases[shard]
        deadline = ambient_now() + timeout_s
        while lease_table.holder_alive():
            if ambient_now() > deadline:
                raise TimeoutError(f"{shard}: lease never expired")
            ambient_sleep(lease_table.remaining_s() + 0.01)
        old_name = lease_table.current().leader
        old_leader = self.nodes[shard][old_name]
        candidates = [
            self.nodes[shard][name]
            for name in self.nodes[shard]
            if name != old_name and not self.servers[shard][name].crashed
        ]
        if not candidates:
            raise StoreUnavailable(f"{shard}: no live follower to promote")
        candidate = max(candidates, key=lambda node: (node.applied_seq, node.name))
        if clean:
            anti_entropy(old_leader, candidate)
        lost = old_leader.log.last_seq - candidate.applied_seq
        lease = lease_table.acquire(candidate.name)
        candidate.promote(lease.term)
        for node in candidates:
            if node is not candidate:
                node.demote(lease.term, candidate.name)
        self.servers[shard][candidate.name].revive(
            participant=self._build_participant(shard)
        )
        self.shippers[shard] = LogShipper(
            candidate,
            self._links(shard, exclude=candidate.name),
            interval_s=self._ship_interval_s,
            lease=lease_table,
        ).start()
        return {
            "leader": candidate.name,
            "term": lease.term,
            "lost_records": max(0, lost),
        }

    def rejoin(self, shard: str, member: str) -> dict:
        """Revive a crashed member and fold it back in as a follower."""
        leader = self.nodes[shard][self.leader_member(shard)]
        node = self.nodes[shard][member]
        result = rejoin_follower(leader, node)
        node.demote(leader.term, leader.name)
        self.servers[shard][member].revive()
        shipper = self.shippers.get(shard)
        if shipper is not None:
            shipper.add_follower(
                member, HttpReplLink(member, self._clients[shard][member])
            )
        return result

    def wait_caught_up(self, timeout_s: float = 10.0) -> None:
        """Block until every live follower of every shard is caught up."""
        deadline = ambient_now() + timeout_s
        while True:
            behind: dict[str, int] = {}
            for shard in self.shard_names:
                leader = self.nodes[shard][self.leader_member(shard)]
                for name, node in self.nodes[shard].items():
                    if name == leader.name or self.servers[shard][name].crashed:
                        continue
                    if node.applied_seq < leader.log.last_seq:
                        behind[name] = node.applied_seq
            if not behind:
                return
            if ambient_now() > deadline:
                raise TimeoutError(f"followers never caught up: {behind}")
            ambient_sleep(self._ship_interval_s)
