"""Client-side shard router: one KeyValueStore facade over many shards.

:class:`ShardRoutedStore` is the cluster's *raw* (non-transactional) data
path: a consistent-hash shard map routes every single-key operation to
the owning shard, ``put_batch`` fans a record list out **per shard** — one
``POST /batch`` round trip per shard instead of one per record — and
scans merge the per-shard ranges back into one ordered stream.

It implements the full :class:`~repro.kvstore.base.KeyValueStore`
contract, so workloads, bindings, wrappers (batching, retry, crashpoint)
and the benchmark harness all run against a cluster unchanged.  The shard
map is fixed for the router's lifetime — live resharding lives in
:class:`~repro.kvstore.sharded.ShardedKVStore`; a router is a *client* of
a static cluster topology.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Mapping, Sequence

from ..kvstore.base import Fields, KeyValueStore, VersionedValue
from ..kvstore.sharded import ConsistentHashRing

__all__ = ["ShardRoutedStore"]


class ShardRoutedStore(KeyValueStore):
    """Routes operations across a fixed set of shard stores.

    Args:
        shards: shard name -> store client.  Any KeyValueStore works;
            in a live cluster these are :class:`~repro.http.client.
            HttpKVStore` instances.
        replicas: virtual nodes per shard on the hash ring.
        ring: share an existing ring (e.g. the coordinator's) instead of
            building one — keeps router and transaction routing in exact
            agreement.
    """

    def __init__(
        self,
        shards: Mapping[str, KeyValueStore],
        replicas: int = 32,
        ring: ConsistentHashRing | None = None,
    ):
        if not shards:
            raise ValueError("at least one shard is required")
        self._shards = dict(shards)
        self._ring = ring or ConsistentHashRing(sorted(self._shards), replicas=replicas)

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    @property
    def shards(self) -> dict[str, KeyValueStore]:
        return dict(self._shards)

    def shard_for(self, key: str) -> tuple[str, KeyValueStore]:
        """(name, store) of the shard owning ``key``."""
        name = self._ring.owner(key)
        return name, self._shards[name]

    # -- single-key operations (routed) -------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        return self.shard_for(key)[1].get_with_meta(key)

    def put(self, key: str, value: Mapping[str, str]) -> int:
        return self.shard_for(key)[1].put(key, value)

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        return self.shard_for(key)[1].put_if_version(key, value, expected_version)

    def put_versioned(self, key: str, versioned: VersionedValue) -> bool:
        return self.shard_for(key)[1].put_versioned(key, versioned)

    def delete(self, key: str) -> bool:
        return self.shard_for(key)[1].delete(key)

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        return self.shard_for(key)[1].delete_if_version(key, expected_version)

    # -- bulk load (per-shard fan-out) ---------------------------------------------

    def put_batch(self, records: Sequence[tuple[str, Mapping[str, str]]]) -> list[int]:
        """Group records by owning shard; one bulk write per shard.

        Returns versions in the order of ``records`` whatever the grouping
        was, matching the contract of every other ``put_batch``.
        """
        records = list(records)
        grouped: dict[str, list[tuple[int, str, Mapping[str, str]]]] = {}
        for position, (key, fields) in enumerate(records):
            grouped.setdefault(self._ring.owner(key), []).append(
                (position, key, fields)
            )
        versions = [0] * len(records)
        for shard_name, group in grouped.items():
            shard = self._shards[shard_name]
            chunk = [(key, fields) for _, key, fields in group]
            batched = getattr(shard, "put_batch", None)
            if callable(batched):
                results = batched(chunk)
            else:
                results = [shard.put(key, fields) for key, fields in chunk]
            for (position, _, _), version in zip(group, results):
                versions[position] = version
        return versions

    # -- cluster-wide reads ----------------------------------------------------------

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        """Merge per-shard ordered ranges into one global ordered range.

        Every shard can contribute up to ``record_count`` records to the
        window, so each is asked for that many; the k-way merge then keeps
        the first ``record_count`` overall.
        """
        if record_count <= 0:
            return []
        per_shard = [
            shard.scan(start_key, record_count) for shard in self._shards.values()
        ]
        merged = heapq.merge(*per_shard, key=lambda pair: pair[0])
        return [pair for _, pair in zip(range(record_count), merged)]

    def keys(self) -> Iterator[str]:
        for shard in self._shards.values():
            yield from shard.keys()

    def size(self) -> int:
        return sum(shard.size() for shard in self._shards.values())

    def counters(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for shard in self._shards.values():
            counters_fn = getattr(shard, "counters", None)
            if callable(counters_fn):
                for name, value in counters_fn().items():
                    totals[name] = totals.get(name, 0) + int(value)
        return totals

    # -- lifecycle --------------------------------------------------------------------

    def clear(self) -> None:
        for shard in self._shards.values():
            shard.clear()

    def close(self) -> None:
        for shard in self._shards.values():
            shard.close()
