"""YCSB+T: benchmarking web-scale transactional databases.

A from-scratch Python reproduction of *YCSB+T: Benchmarking Web-scale
Transactional Databases* (Dey, Fekete, Nambiar, Röhm — ICDE 2014
workshops): the YCSB benchmark framework, the transactional tiers YCSB+T
adds (Tier 5 *transactional overhead*, Tier 6 *consistency*), the Closed
Economy Workload, and every substrate the evaluation needs — key-value
stores, client-coordinated multi-item transactions, an HTTP front end,
and simulated cloud stores.

Quickstart::

    from repro import Client, ClosedEconomyWorkload, Properties
    from repro.bindings import TxnDB

    props = Properties({"recordcount": "1000", "operationcount": "10000",
                        "threadcount": "8", "seed": "7"})
    workload = ClosedEconomyWorkload()
    workload.init(props)
    client = Client(workload, lambda: TxnDB(props), props)
    client.load()
    result = client.run()
    assert result.validation.passed  # gamma == 0 under transactions
"""

from .core import (
    DB,
    BenchmarkResult,
    Client,
    ClosedEconomyWorkload,
    CoreWorkload,
    MeasuredDB,
    Properties,
    Status,
    ValidationResult,
    Workload,
    create_db,
    load_properties,
)
from .measurements import (
    HdrHistogramMeasurement,
    JsonLinesExporter,
    Measurements,
    RunReport,
    StatusReporter,
    TextExporter,
)

__version__ = "1.0.0"

__all__ = [
    "BenchmarkResult",
    "Client",
    "ClosedEconomyWorkload",
    "CoreWorkload",
    "DB",
    "MeasuredDB",
    "Properties",
    "Status",
    "ValidationResult",
    "Workload",
    "create_db",
    "load_properties",
    "HdrHistogramMeasurement",
    "JsonLinesExporter",
    "Measurements",
    "RunReport",
    "StatusReporter",
    "TextExporter",
    "__version__",
]
