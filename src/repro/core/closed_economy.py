"""The Closed Economy Workload (CEW) — §IV-C of the paper.

A simplified simulation of a closed economy: a fixed number of bank
accounts and a fixed amount of total cash, "one in which money does not
enter or exit the system during the evaluation period".  Every operation
preserves the invariant

    sum(account balances) + escrow == total_cash

under *serialisable* execution, so after the run the validation stage can
detect lost-update (and other) anomalies simply by re-summing the money
and reporting the **simple anomaly score**

    gamma = |S_initial - S_final| / n

(the drift in total balance per executed operation).  A score of zero
means the data is consistent with some serial execution of the workload.

The six operations (names match the paper):

* ``READ`` — read an account's balance.
* ``SCAN`` — read a range of accounts.
* ``UPDATE`` — read an account, add $1 *captured from delete operations*
  (the escrow), write it back.
* ``INSERT`` — create a new account funded from the escrow.
* ``DELETE`` — read an account, move its balance into the escrow, delete
  the record.
* ``READMODIFYWRITE`` — read two accounts, move $1 from one to the other,
  write both back (the contended transfer that exposes lost updates).

Properties: those of :class:`~repro.core.core_workload.CoreWorkload`
plus ``totalcash`` [recordcount * 1000 — "everyone has a bank account
which has an initial balance of $1000"].
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any

from ..measurements.registry import StopWatch
from .core_workload import CoreWorkload
from .db import DB
from .properties import Properties
from .workload import ValidationResult, WorkloadError

__all__ = ["ClosedEconomyWorkload", "BALANCE_FIELD"]

#: The single record field holding an account balance (fieldcount=1 in
#: the paper's property file).
BALANCE_FIELD = "field0"


class _Escrow:
    """Cash captured by deletes, awaiting re-injection by inserts/updates.

    The escrow is what keeps the economy closed when records come and go:
    money never vanishes, it just parks here.  All methods are atomic.
    """

    def __init__(self, initial: int = 0):
        self._lock = threading.Lock()
        self._amount = initial

    @property
    def amount(self) -> int:
        with self._lock:
            return self._amount

    def deposit(self, amount: int) -> None:
        if amount < 0:
            raise ValueError(f"cannot deposit a negative amount ({amount})")
        with self._lock:
            self._amount += amount

    def withdraw_up_to(self, amount: int) -> int:
        """Take at most ``amount``; returns what was actually taken."""
        if amount < 0:
            raise ValueError(f"cannot withdraw a negative amount ({amount})")
        with self._lock:
            taken = min(self._amount, amount)
            self._amount -= taken
            return taken


@dataclass
class CewThreadState:
    """Per-thread CEW state.

    Escrow movements must follow the *transaction outcome*, not the
    operation call: money withdrawn for a write that later aborts must
    return to the escrow, and money captured by a delete may only enter
    the escrow once the delete has durably committed.  Each operation
    records its pending movement here; the client reports the outcome via
    :meth:`ClosedEconomyWorkload.finish_transaction`, which settles it.
    """

    rng: random.Random
    #: paid into the escrow only if the surrounding transaction commits.
    pending_deposit: int = 0
    #: returned to the escrow if the surrounding transaction aborts.
    pending_refund: int = 0


class ClosedEconomyWorkload(CoreWorkload):
    """CEW: CoreWorkload's machinery with money semantics and validation."""

    def init(self, properties: Properties, measurements=None) -> None:
        super().init(properties, measurements)
        self.total_cash = properties.get_int("totalcash", self.record_count * 1000)
        if self.total_cash < self.record_count:
            raise WorkloadError(
                "totalcash must give every account at least $1 "
                f"({self.total_cash} < {self.record_count})"
            )
        self.escrow = _Escrow()
        self._initial_balance = self.total_cash // self.record_count
        self._remainder = self.total_cash % self.record_count
        self._operations_executed = 0
        self._operations_lock = threading.Lock()
        # CEW accounts are a single balance field.
        self.field_names = [BALANCE_FIELD]

    # -- helpers ---------------------------------------------------------------------

    def initial_balance_for(self, key_number: int) -> int:
        """Load-phase balance of account ``key_number``.

        The first ``totalcash % recordcount`` accounts receive one extra
        dollar so the loaded sum is exactly ``totalcash``.
        """
        offset = key_number - self.insert_start
        return self._initial_balance + (1 if offset < self._remainder else 0)

    @staticmethod
    def parse_balance(fields: dict[str, str] | None) -> int | None:
        if fields is None:
            return None
        raw = fields.get(BALANCE_FIELD)
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            return None

    @staticmethod
    def encode_balance(balance: int) -> dict[str, str]:
        return {BALANCE_FIELD: str(balance)}

    def _count_operation(self) -> None:
        with self._operations_lock:
            self._operations_executed += 1

    @property
    def operations_executed(self) -> int:
        with self._operations_lock:
            return self._operations_executed

    # -- load phase -------------------------------------------------------------------

    def do_insert(self, db: DB, thread_state: Any) -> bool:
        key_number = self.key_sequence.next_value()
        key = self.build_key_name(key_number)
        values = self.encode_balance(self.initial_balance_for(key_number))
        return db.insert(self.table, key, values).ok

    def do_batch_insert(self, db: DB, thread_state: Any, count: int) -> int:
        records = []
        for _ in range(count):
            key_number = self.key_sequence.next_value()
            records.append(
                (
                    self.build_key_name(key_number),
                    self.encode_balance(self.initial_balance_for(key_number)),
                )
            )
        return len(records) if db.batch_insert(self.table, records).ok else 0

    # -- transaction phase ------------------------------------------------------------

    def init_thread(self, thread_id: int, thread_count: int) -> CewThreadState:
        return CewThreadState(rng=super().init_thread(thread_id, thread_count))

    def do_transaction(self, db: DB, thread_state: Any) -> str | None:
        operation = super().do_transaction(db, thread_state)
        self._count_operation()
        return operation

    def finish_transaction(
        self, db: DB, thread_state: Any, operation: str | None, committed: bool
    ) -> None:
        """Settle the operation's escrow movement against the outcome."""
        state: CewThreadState = thread_state
        if committed:
            if state.pending_deposit:
                self.escrow.deposit(state.pending_deposit)
        else:
            if state.pending_refund:
                self.escrow.deposit(state.pending_refund)
        state.pending_deposit = 0
        state.pending_refund = 0

    def _txn_read(self, db: DB, state: CewThreadState) -> bool:
        key = self.build_key_name(self.next_key_number())
        result, fields = db.read(self.table, key, None)
        return result.ok and self.parse_balance(fields) is not None

    def _txn_scan(self, db: DB, state: CewThreadState) -> bool:
        key = self.build_key_name(self.next_key_number())
        length = self.scan_length_generator.next_value()
        result, _ = db.scan(self.table, key, length, None)
        return result.ok

    def _txn_update(self, db: DB, state: CewThreadState) -> bool:
        """Read an account, add $1 captured from deletes, write it back."""
        key = self.build_key_name(self.next_key_number())
        result, fields = db.read(self.table, key, None)
        balance = self.parse_balance(fields)
        if not result.ok or balance is None:
            return False
        grant = self.escrow.withdraw_up_to(1)
        if not db.update(self.table, key, self.encode_balance(balance + grant)).ok:
            self.escrow.deposit(grant)  # immediate rollback: op failed
            return False
        state.pending_refund += grant  # refund if the commit later aborts
        return True

    def _txn_insert(self, db: DB, state: CewThreadState) -> bool:
        """Open a new account funded by money captured from deletes."""
        key_number = self.transaction_insert_sequence.next_value()
        key = self.build_key_name(key_number)
        funding = self.escrow.withdraw_up_to(self._initial_balance)
        ok = db.insert(self.table, key, self.encode_balance(funding)).ok
        if not ok:
            self.escrow.deposit(funding)  # immediate rollback: op failed
        else:
            state.pending_refund += funding
        self.transaction_insert_sequence.acknowledge(key_number)
        return ok

    def _txn_delete(self, db: DB, state: CewThreadState) -> bool:
        """Close an account; its balance is captured into the escrow.

        The capture is *pending*: it enters the escrow only once the
        surrounding transaction commits (otherwise the delete never
        happened and the money is still in the account).
        """
        key = self.build_key_name(self.next_key_number())
        result, fields = db.read(self.table, key, None)
        balance = self.parse_balance(fields)
        if not result.ok or balance is None:
            return False
        if not db.delete(self.table, key).ok:
            return False
        state.pending_deposit += balance
        return True

    def _txn_readmodifywrite(self, db: DB, state: CewThreadState) -> bool:
        """Move $1 between two accounts — the paper's contended transfer."""
        first = self.next_key_number()
        second = self.next_key_number()
        attempts = 0
        while second == first and attempts < 8:
            second = self.next_key_number()
            attempts += 1
        if second == first:
            # Degenerate key space (one record): a self-transfer is a no-op
            # but still a valid, invariant-preserving operation.
            key = self.build_key_name(first)
            result, fields = db.read(self.table, key, None)
            return result.ok and self.parse_balance(fields) is not None

        key_from = self.build_key_name(first)
        key_to = self.build_key_name(second)
        watch = StopWatch()
        result_from, fields_from = db.read(self.table, key_from, None)
        result_to, fields_to = db.read(self.table, key_to, None)
        balance_from = self.parse_balance(fields_from)
        balance_to = self.parse_balance(fields_to)
        if not result_from.ok or not result_to.ok or balance_from is None or balance_to is None:
            return False
        transfer = 1 if balance_from >= 1 else 0
        ok = (
            db.update(self.table, key_from, self.encode_balance(balance_from - transfer)).ok
            and db.update(self.table, key_to, self.encode_balance(balance_to + transfer)).ok
        )
        if self.measurements is not None:
            self.measurements.measure("READ-MODIFY-WRITE", watch.elapsed_us())
            self.measurements.report_status("READ-MODIFY-WRITE", "OK" if ok else "ERROR")
        return ok

    # -- validation stage (§IV-B, §IV-C.3) ------------------------------------------------

    def validate(self, db: DB) -> ValidationResult:
        """Sum every account and compare against ``totalcash``.

        Walks the whole table through the DB abstraction in scan pages,
        adds the escrow (cash captured by deletes but not yet granted),
        and computes the simple anomaly score.
        """
        counted = self.escrow.amount
        records = 0
        cursor = ""
        page_size = 1000
        while True:
            result, page = db.scan(self.table, cursor, page_size, None)
            if not result.ok:
                raise WorkloadError(f"validation scan failed: {result}")
            if not page:
                break
            for key, fields in page:
                if cursor and key <= cursor.rstrip("\x00"):
                    continue
                balance = self.parse_balance(fields)
                if balance is not None:
                    counted += balance
                    records += 1
            if len(page) < page_size:
                break
            cursor = page[-1][0] + "\x00"

        operations = max(1, self.operations_executed)
        anomaly_score = abs(self.total_cash - counted) / operations
        passed = counted == self.total_cash
        return ValidationResult(
            passed=passed,
            fields=[
                ("TOTAL CASH", self.total_cash),
                ("COUNTED CASH", counted),
                ("ACTUAL OPERATIONS", self.operations_executed),
                ("ANOMALY SCORE", anomaly_score),
            ],
            anomaly_score=anomaly_score,
        )
