"""The YCSB+T ``DB`` client abstraction.

:class:`DB` is the interface every data-store binding implements — the
five CRUD/scan operations of YCSB plus the three transactional methods
YCSB+T adds (§IV-A):

* :meth:`DB.start`, :meth:`DB.commit`, :meth:`DB.abort` are **no-ops by
  default**, which is what makes YCSB+T backward compatible: a workload
  written for plain YCSB runs unmodified, and a non-transactional binding
  measured under YCSB+T simply records near-zero latencies for them
  (Listing 3 shows ~0.08 µs for START/COMMIT on the raw store).

:class:`MeasuredDB` is the wrapper the client threads actually talk to:
it times every call and records it twice — once under the raw operation
name (``READ``), and once under ``TX-`` prefixed name when the call
happens inside a transaction (``TX-READ``) — which is precisely the data
Tier 5 (*transactional overhead*) needs.
"""

from __future__ import annotations

import importlib
from collections.abc import Mapping

from ..measurements.registry import Measurements, StopWatch
from . import status as st
from .properties import Properties
from .status import Status

__all__ = ["DB", "MeasuredDB", "create_db"]


class DB:
    """Base class for database bindings.

    Lifecycle: ``init()`` once per client thread, then operations, then
    ``cleanup()``.  All operations return a :class:`Status`; reads also
    return their data.  ``table`` is carried through for YCSB
    compatibility — most key-value bindings fold it into the key space.
    """

    def __init__(self, properties: Properties | None = None):
        self.properties = properties or Properties()

    # -- lifecycle -------------------------------------------------------------

    def init(self) -> None:
        """Per-thread initialisation (connections, caches)."""

    def cleanup(self) -> None:
        """Per-thread teardown."""

    # -- CRUD + scan -------------------------------------------------------------

    def read(
        self, table: str, key: str, fields: set[str] | None = None
    ) -> tuple[Status, dict[str, str] | None]:
        """Read one record; ``fields=None`` means all fields."""
        return st.NOT_IMPLEMENTED, None

    def scan(
        self,
        table: str,
        start_key: str,
        record_count: int,
        fields: set[str] | None = None,
    ) -> tuple[Status, list[tuple[str, dict[str, str]]]]:
        """Read ``record_count`` records from ``start_key`` onward."""
        return st.NOT_IMPLEMENTED, []

    def update(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        """Update (merge) fields of an existing record."""
        return st.NOT_IMPLEMENTED

    def insert(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        """Insert a new record."""
        return st.NOT_IMPLEMENTED

    def delete(self, table: str, key: str) -> Status:
        """Delete a record."""
        return st.NOT_IMPLEMENTED

    def batch_insert(
        self, table: str, records: list[tuple[str, Mapping[str, str]]]
    ) -> Status:
        """Insert several records in one call (YCSB++-style bulk loading).

        Default: loop over :meth:`insert`, returning the first failure.
        Bindings with a cheaper bulk path (one WAL flush, one transaction,
        one HTTP request) override this.
        """
        for key, values in records:
            result = self.insert(table, key, values)
            if not result.ok:
                return result
        return st.OK

    # -- YCSB+T transactional extension (no-op defaults) ---------------------------

    def start(self) -> Status:
        """Begin a transaction.  Default: no-op (backward compatible)."""
        return st.OK

    def commit(self) -> Status:
        """Commit the current transaction.  Default: no-op."""
        return st.OK

    def abort(self) -> Status:
        """Abort the current transaction.  Default: no-op."""
        return st.OK

    # -- observability ----------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Cumulative run counters from the binding's *shared* substrate.

        Retry and fault-injection layers count events into objects shared
        by every per-thread DB instance (the store wrapper, the
        transaction manager), so any one instance can report the totals.
        The client snapshots them once per phase into the measurement
        registry.  Default: no counters.
        """
        return {}


class MeasuredDB(DB):
    """Times every operation of an inner DB (YCSB's ``DBWrapper`` role).

    Each call is recorded under its operation name; while a transaction is
    open (between ``start`` and ``commit``/``abort``) the sample is also
    recorded under ``TX-<NAME>``, giving Tier 5 its inside/outside pairs.
    """

    def __init__(self, inner: DB, measurements: Measurements):
        super().__init__(inner.properties)
        self._inner = inner
        self._measurements = measurements
        self._in_transaction = False

    @property
    def inner(self) -> DB:
        return self._inner

    @property
    def in_transaction(self) -> bool:
        return self._in_transaction

    def init(self) -> None:
        self._inner.init()

    def cleanup(self) -> None:
        self._inner.cleanup()

    def counters(self) -> dict[str, int]:
        return self._inner.counters()

    def _record(self, operation: str, latency_us: int, result: Status) -> None:
        measurements = self._measurements
        measurements.measure(operation, latency_us)
        measurements.report_status(operation, result.name)
        if self._in_transaction:
            measurements.measure(f"TX-{operation}", latency_us)
            measurements.report_status(f"TX-{operation}", result.name)

    # -- measured operations ---------------------------------------------------------

    def read(
        self, table: str, key: str, fields: set[str] | None = None
    ) -> tuple[Status, dict[str, str] | None]:
        watch = StopWatch()
        result, data = self._inner.read(table, key, fields)
        self._record("READ", watch.elapsed_us(), result)
        return result, data

    def scan(
        self,
        table: str,
        start_key: str,
        record_count: int,
        fields: set[str] | None = None,
    ) -> tuple[Status, list[tuple[str, dict[str, str]]]]:
        watch = StopWatch()
        result, data = self._inner.scan(table, start_key, record_count, fields)
        self._record("SCAN", watch.elapsed_us(), result)
        return result, data

    def update(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        watch = StopWatch()
        result = self._inner.update(table, key, values)
        self._record("UPDATE", watch.elapsed_us(), result)
        return result

    def insert(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        watch = StopWatch()
        result = self._inner.insert(table, key, values)
        self._record("INSERT", watch.elapsed_us(), result)
        return result

    def delete(self, table: str, key: str) -> Status:
        watch = StopWatch()
        result = self._inner.delete(table, key)
        self._record("DELETE", watch.elapsed_us(), result)
        return result

    def batch_insert(
        self, table: str, records: list[tuple[str, Mapping[str, str]]]
    ) -> Status:
        watch = StopWatch()
        result = self._inner.batch_insert(table, records)
        self._record("BATCH-INSERT", watch.elapsed_us(), result)
        return result

    # -- measured transaction boundaries -------------------------------------------------

    def start(self) -> Status:
        watch = StopWatch()
        result = self._inner.start()
        self._measurements.measure("START", watch.elapsed_us())
        self._measurements.report_status("START", result.name)
        if result.ok:
            self._in_transaction = True
        return result

    def commit(self) -> Status:
        watch = StopWatch()
        result = self._inner.commit()
        self._measurements.measure("COMMIT", watch.elapsed_us())
        self._measurements.report_status("COMMIT", result.name)
        self._in_transaction = False
        return result

    def abort(self) -> Status:
        watch = StopWatch()
        result = self._inner.abort()
        self._measurements.measure("ABORT", watch.elapsed_us())
        self._measurements.report_status("ABORT", result.name)
        self._in_transaction = False
        return result


def create_db(class_path: str, properties: Properties | None = None) -> DB:
    """Instantiate a DB binding from a dotted class path or short alias.

    ``create_db("repro.bindings.MemoryDB")`` imports and constructs the
    class; short aliases (``memory``, ``basic``, ``lsm``, ``cloud``,
    ``raw_http``, ``txn``) resolve through :mod:`repro.bindings`.
    """
    from .. import bindings

    alias = bindings.ALIASES.get(class_path.lower())
    if alias is not None:
        return alias(properties or Properties())
    module_name, _, class_name = class_path.rpartition(".")
    if not module_name:
        raise ValueError(
            f"unknown DB binding {class_path!r}; use a dotted class path or one of "
            f"{sorted(bindings.ALIASES)}"
        )
    module = importlib.import_module(module_name)
    try:
        db_class = getattr(module, class_name)
    except AttributeError:
        raise ValueError(f"module {module_name!r} has no class {class_name!r}") from None
    instance = db_class(properties or Properties())
    if not isinstance(instance, DB):
        raise TypeError(f"{class_path} is not a DB binding")
    return instance
