"""The YCSB+T client: workload executor, thread pool, validation stage.

Mirrors the architecture of Fig. 1 in the paper: the client starts N
threads, each with its own DB instance (wrapped in
:class:`~repro.core.db.MeasuredDB`); threads execute the load phase
(``do_insert``) or the transaction phase (``do_transaction``).  YCSB+T's
additions, implemented here:

* every workload call is **wrapped in a transaction** — ``DB.start()``
  before, ``DB.commit()`` on success, ``DB.abort()`` on failure (§IV-A);
  the whole wrapped unit is measured as ``TX-<OPERATION>``;
* after the phase completes, the **validation stage** runs
  ``Workload.validate(db)`` and folds the result into the report (§IV-B).
"""

from __future__ import annotations

import sys
import threading
from collections.abc import Callable
from dataclasses import dataclass, field

from ..measurements.exporters import RunReport
from ..measurements.live import StatusReporter, StatusSnapshot
from ..measurements.registry import Measurements, StopWatch
from ..measurements.timeseries import ThroughputTimeSeries
from ..recovery.crashpoints import CrashError
from ..sim.clock import Clock, get_clock
from .db import DB, MeasuredDB
from .properties import Properties
from .throttle import Throttle
from .workload import ValidationResult, Workload

__all__ = ["BenchmarkResult", "Client"]


@dataclass
class BenchmarkResult:
    """Everything a finished phase produced."""

    phase: str  # "load" | "run"
    operations: int
    failed_operations: int
    run_time_ms: float
    measurements: Measurements
    validation: ValidationResult | None = None
    thread_count: int = 1
    errors: list[str] = field(default_factory=list)
    #: interval throughput, populated when the ``status.interval``
    #: property is set (seconds per window) or the status thread ran.
    throughput_series: ThroughputTimeSeries | None = None
    #: live-status interval snapshots (``status=true`` runs).
    status_snapshots: list[StatusSnapshot] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Operations per second over the phase."""
        seconds = self.run_time_ms / 1000.0
        return self.operations / seconds if seconds > 0 else 0.0

    @property
    def anomaly_score(self) -> float | None:
        return self.validation.anomaly_score if self.validation else None

    def report(self) -> RunReport:
        """Export-ready view of this result."""
        validation_fields = list(self.validation.fields) if self.validation else []
        validation_passed = self.validation.passed if self.validation else None
        return RunReport.from_measurements(
            self.measurements,
            run_time_ms=self.run_time_ms,
            operations=self.operations,
            validation=validation_fields,
            validation_passed=validation_passed,
            windows=self.throughput_series.windows() if self.throughput_series else (),
            intervals=self.status_snapshots,
        )


class _SharedWork:
    """Atomic claim of operation slots across client threads.

    Dynamic partitioning: each thread claims the next slot until the
    budget is exhausted, so slow threads do not strand work.
    """

    def __init__(self, total: int):
        self._lock = threading.Lock()
        self._remaining = total

    def claim(self) -> bool:
        with self._lock:
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True

    def claim_up_to(self, count: int) -> int:
        """Claim as many as ``count`` slots; returns how many were granted."""
        with self._lock:
            granted = min(count, self._remaining)
            self._remaining -= granted
            return granted


class Client:
    """Runs one workload phase against one DB binding.

    Args:
        workload: an initialised workload (``workload.init`` already
            called with the same properties).
        db_factory: builds one DB instance per thread.  Instances must
            share backing state (a store object, a server address, a
            transaction manager) — exactly like YCSB clients all talking
            to one external database.
        properties: benchmark properties (``threadcount``,
            ``operationcount``, ``recordcount``, ``target``, ...).
        measurements: shared measurement registry (created when omitted).
        status_sink: stream the live status thread writes to when the
            ``status`` property is true (default stderr).
        clock: time source for the phase clock, throttles and throughput
            windows.  Defaults to the ambient clock, so a client built
            inside ``use_clock(SimClock(...))`` runs in virtual time: its
            "threads" become cooperative tasks on the sim scheduler and a
            phase spanning thousands of simulated seconds finishes in
            milliseconds of wall time, deterministically.
    """

    def __init__(
        self,
        workload: Workload,
        db_factory: Callable[[], DB],
        properties: Properties | None = None,
        measurements: Measurements | None = None,
        status_sink=None,
        clock: Clock | None = None,
    ):
        self.workload = workload
        self.db_factory = db_factory
        self.properties = properties or Properties()
        self.measurements = measurements or Measurements.from_properties(self.properties)
        self.status_sink = status_sink if status_sink is not None else sys.stderr
        self._clock = clock

    # -- phases -----------------------------------------------------------------------

    def load(self, record_count: int | None = None) -> BenchmarkResult:
        """Load phase: insert ``recordcount`` records, then validate."""
        total = (
            record_count
            if record_count is not None
            else self.properties.get_int("insertcount", self.properties.get_int("recordcount", 1000))
        )
        return self._execute_phase("load", total)

    def run(self, operation_count: int | None = None) -> BenchmarkResult:
        """Transaction phase: execute ``operationcount`` operations, then
        validate."""
        total = (
            operation_count
            if operation_count is not None
            else self.properties.get_int("operationcount", 1000)
        )
        return self._execute_phase("run", total)

    # -- machinery ---------------------------------------------------------------------

    def _thread_throttle(self, thread_count: int, clock: Clock) -> Callable[[], Throttle | None]:
        target = self.properties.get_float("target", 0.0)
        if target <= 0:
            return lambda: None
        per_thread = target / thread_count
        return lambda: Throttle(per_thread, clock=clock.monotonic, sleep=clock.sleep)

    def _worker_body(
        self,
        phase: str,
        work: _SharedWork,
        batch_size: int,
        series: ThroughputTimeSeries | None,
        db: MeasuredDB,
        thread_state: object,
        throttle: Throttle | None,
        counts: list[int],
    ) -> None:
        """The per-thread operation loop, shared by real threads and
        simulated tasks.  ``counts`` is ``[done, failed]``, updated in
        place so a mid-loop exception loses no accounting."""
        while True:
            if self.workload.stop_requested:
                break
            if phase == "load" and batch_size > 1:
                claimed = work.claim_up_to(batch_size)
                if claimed == 0:
                    break
                if throttle is not None:
                    throttle.wait_for_turns(claimed)
                inserted = self._one_batch_insert(db, thread_state, claimed)
                counts[0] += claimed
                counts[1] += claimed - inserted
                # Only committed inserts enter the throughput series, and
                # only after the batch's fate is known.
                if series is not None and inserted:
                    series.record(inserted)
                continue
            if not work.claim():
                break
            if throttle is not None:
                throttle.wait_for_turn()
            if phase == "load":
                ok = self._one_insert(db, thread_state)
            else:
                ok = self._one_transaction(db, thread_state)
            counts[0] += 1
            if not ok:
                counts[1] += 1
            if series is not None:
                series.record()

    def _execute_phase(self, phase: str, total_operations: int) -> BenchmarkResult:
        clock = self._clock if self._clock is not None else get_clock()
        thread_count = max(1, self.properties.get_int("threadcount", 1))
        work = _SharedWork(total_operations)
        make_throttle = self._thread_throttle(thread_count, clock)
        batch_size = max(1, self.properties.get_int("batchsize", 1))
        status_enabled = self.properties.get_bool("status", False)
        status_interval = self.properties.get_float("status.interval", 0.0)
        if status_enabled and status_interval <= 0:
            status_interval = 1.0
        series = (
            ThroughputTimeSeries(status_interval, clock=clock.monotonic)
            if status_interval > 0
            else None
        )
        scheduler = getattr(clock, "scheduler", None)
        if scheduler is not None:
            return self._execute_phase_sim(
                phase, clock, scheduler, thread_count, work, make_throttle, batch_size, series
            )
        counters_lock = threading.Lock()
        completed = 0
        failed = 0
        errors: list[str] = []
        # The phase clock is stamped *inside* the barrier action — it runs
        # in the last-arriving thread at the moment everyone is released —
        # so worker progress before the main thread gets rescheduled can
        # never be excluded from the measured run time.
        start_stamp: list[float] = []
        barrier = threading.Barrier(
            thread_count + 1, action=lambda: start_stamp.append(clock.monotonic())
        )

        def worker(thread_id: int) -> None:
            nonlocal completed, failed
            db = None
            counts = [0, 0]
            try:
                db = MeasuredDB(self.db_factory(), self.measurements)
                db.init()
                thread_state = self.workload.init_thread(thread_id, thread_count)
                throttle = make_throttle()
                barrier.wait()
                self._worker_body(
                    phase, work, batch_size, series, db, thread_state, throttle, counts
                )
            except threading.BrokenBarrierError:
                pass  # a peer failed to initialise; its error is already recorded
            except CrashError:
                # A scheduled crash killed this client: it dies silently —
                # no abort, no settlement — leaving stranded locks and
                # half-applied writes for the recovery layer to find.
                self.measurements.increment("CLIENT-CRASHES")
                barrier.abort()  # only matters if we died before the rendezvous
            except Exception as exc:  # noqa: BLE001 - surfaced in the result
                with counters_lock:
                    errors.append(f"thread {thread_id}: {type(exc).__name__}: {exc}")
                # If we died before the start rendezvous, release everyone
                # still parked at the barrier (including the main thread).
                barrier.abort()
            finally:
                if db is not None:
                    db.cleanup()
                with counters_lock:
                    completed += counts[0]
                    failed += counts[1]

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"ycsbt-{phase}-{i}")
            for i in range(thread_count)
        ]
        for thread in threads:
            thread.start()
        try:
            barrier.wait()  # all threads initialised: start the clock together
        except threading.BrokenBarrierError:
            pass  # a worker failed during init; run ends immediately with errors
        if not start_stamp:
            start_stamp.append(clock.monotonic())  # broken barrier: action never ran
        reporter: StatusReporter | None = None
        if status_enabled and series is not None:
            reporter = StatusReporter(
                self.measurements,
                operation_counter=series.total_operations,
                interval_s=status_interval,
                phase=phase,
                sink=self.status_sink,
            )
            reporter.start()
        for thread in threads:
            thread.join()
        run_time_ms = (clock.monotonic() - start_stamp[0]) * 1000.0
        if reporter is not None:
            reporter.stop()

        validation = self._validation_stage()
        return BenchmarkResult(
            phase=phase,
            operations=completed,
            failed_operations=failed,
            run_time_ms=run_time_ms,
            measurements=self.measurements,
            validation=validation,
            thread_count=thread_count,
            errors=errors,
            throughput_series=series,
            status_snapshots=list(reporter.snapshots) if reporter is not None else [],
        )

    def _execute_phase_sim(
        self,
        phase: str,
        clock: Clock,
        scheduler,
        thread_count: int,
        work: _SharedWork,
        make_throttle: Callable[[], Throttle | None],
        batch_size: int,
        series: ThroughputTimeSeries | None,
    ) -> BenchmarkResult:
        """Virtual-time phase execution: cooperative tasks, no barrier.

        Every simulated "thread" starts at the same virtual instant (the
        scheduler queues them all at ``now``), so no start rendezvous is
        needed, and the phase clock is virtual.  The live status thread is
        skipped — it is a wall-clock observer with no meaning inside a
        simulation (the throughput *series* still fills from virtual
        time).  Task ordering, and therefore every interleaving, is a pure
        function of the scheduler state and the workload seeds.
        """
        completed = 0
        failed = 0
        errors: list[str] = []

        def make_task(thread_id: int) -> Callable[[], None]:
            def task() -> None:
                nonlocal completed, failed
                db = None
                counts = [0, 0]
                try:
                    db = MeasuredDB(self.db_factory(), self.measurements)
                    db.init()
                    thread_state = self.workload.init_thread(thread_id, thread_count)
                    throttle = make_throttle()
                    self._worker_body(
                        phase, work, batch_size, series, db, thread_state, throttle, counts
                    )
                except CrashError:
                    # A scheduled crash: the simulated client is dead, not
                    # failed — no error is recorded and no peer is disturbed.
                    self.measurements.increment("CLIENT-CRASHES")
                except Exception as exc:  # noqa: BLE001 - surfaced in the result
                    errors.append(f"thread {thread_id}: {type(exc).__name__}: {exc}")
                finally:
                    if db is not None:
                        db.cleanup()
                    completed += counts[0]
                    failed += counts[1]

            return task

        started_at = clock.monotonic()
        scheduler.run(
            [make_task(i) for i in range(thread_count)],
            names=[f"{phase}-{i}" for i in range(thread_count)],
        )
        run_time_ms = (clock.monotonic() - started_at) * 1000.0

        validation = self._validation_stage()
        return BenchmarkResult(
            phase=phase,
            operations=completed,
            failed_operations=failed,
            run_time_ms=run_time_ms,
            measurements=self.measurements,
            validation=validation,
            thread_count=thread_count,
            errors=errors,
            throughput_series=series,
        )

    def _one_batch_insert(self, db: MeasuredDB, thread_state: object, count: int) -> int:
        """One bulk-load batch wrapped in a transaction; returns successes."""
        if not db.start().ok:
            return 0
        inserted = 0
        crashed = False
        try:
            inserted = self.workload.do_batch_insert(db, thread_state, count)
        except CrashError:
            crashed = True
            raise
        finally:
            if not crashed:
                if inserted > 0:
                    if not db.commit().ok:
                        inserted = 0
                else:
                    db.abort()
        return inserted

    def _one_insert(self, db: MeasuredDB, thread_state: object) -> bool:
        """One load-phase insert wrapped in a transaction (§IV-A)."""
        if not db.start().ok:
            return False
        ok = False
        crashed = False
        try:
            ok = self.workload.do_insert(db, thread_state)
        except CrashError:
            crashed = True
            raise
        finally:
            if not crashed:
                if ok:
                    ok = db.commit().ok
                else:
                    db.abort()
        return ok

    def _one_transaction(self, db: MeasuredDB, thread_state: object) -> bool:
        """One transaction-phase operation, wrapped and measured as TX-<OP>."""
        watch = StopWatch()
        if not db.start().ok:
            return False
        operation: str | None = None
        committed = False
        crashed = False
        try:
            operation = self.workload.do_transaction(db, thread_state)
        except CrashError:
            # A dead client commits nothing, aborts nothing, settles
            # nothing; a crash *inside* db.commit() below likewise skips
            # the rest of the cleanup, exactly like a real process death.
            crashed = True
            raise
        finally:
            if not crashed:
                if operation is not None:
                    committed = db.commit().ok
                else:
                    db.abort()
                self.workload.finish_transaction(db, thread_state, operation, committed)
        label = f"TX-{operation}" if operation is not None else "TX-ABORTED"
        self.measurements.measure(label, watch.elapsed_us())
        self.measurements.report_status(label, "OK" if committed else "ERROR")
        return committed

    def _validation_stage(self) -> ValidationResult | None:
        """Run the workload's validation method on a fresh DB instance.

        Also snapshots the binding's shared run counters (retries,
        injected faults) into the measurement registry so reports show
        them; zero counters stay out to keep fault-free reports byte-
        identical to before.
        """
        db = MeasuredDB(self.db_factory(), Measurements())
        db.init()
        try:
            return self.workload.validate(db)
        finally:
            for name, value in db.counters().items():
                if value:
                    self.measurements.set_counter(name, value)
            db.cleanup()
