"""The YCSB+T benchmark framework core."""

from .client import BenchmarkResult, Client
from .closed_economy import BALANCE_FIELD, ClosedEconomyWorkload
from .core_workload import OPERATION_NAMES, CoreWorkload
from .db import DB, MeasuredDB, create_db
from .properties import Properties, load_properties, parse_properties
from .retry import RetryPolicy, RetryStats, RetryingStore
from .status import Status
from .throttle import Throttle
from .workload import ValidationResult, Workload, WorkloadError

__all__ = [
    "BenchmarkResult",
    "Client",
    "BALANCE_FIELD",
    "ClosedEconomyWorkload",
    "OPERATION_NAMES",
    "CoreWorkload",
    "DB",
    "MeasuredDB",
    "create_db",
    "Properties",
    "load_properties",
    "parse_properties",
    "RetryPolicy",
    "RetryStats",
    "RetryingStore",
    "Status",
    "Throttle",
    "ValidationResult",
    "Workload",
    "WorkloadError",
]
