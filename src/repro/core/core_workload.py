"""YCSB's ``CoreWorkload``, re-implemented.

The standard workload behind YCSB's published workloads A–F: a mix of
read / update / insert / scan / read-modify-write operations (plus an
optional delete proportion, which the Closed Economy Workload builds on)
over a synthetic table of records with generated string fields.

Recognised properties (defaults in brackets, names match YCSB):

``table`` [usertable], ``recordcount`` [1000], ``operationcount`` [1000],
``fieldcount`` [10], ``fieldnameprefix`` [field], ``fieldlength`` [100],
``fieldlengthdistribution`` [constant|uniform|zipfian],
``readproportion`` [0.95], ``updateproportion`` [0.05],
``insertproportion`` [0], ``scanproportion`` [0],
``readmodifywriteproportion`` [0], ``deleteproportion`` [0],
``requestdistribution`` [uniform|zipfian|latest|hotspot|sequential|
exponential], ``maxscanlength`` [1000], ``scanlengthdistribution``
[uniform|zipfian], ``insertorder`` [hashed|ordered], ``insertstart`` [0],
``zeropadding`` [1], ``readallfields`` [true], ``writeallfields``
[false], ``hotspotdatafraction`` [0.2], ``hotspotopnfraction`` [0.8],
``seed`` [none — nondeterministic].
"""

from __future__ import annotations

import random
from typing import Any

from ..generators import (
    AcknowledgedCounterGenerator,
    ConstantGenerator,
    CounterGenerator,
    DiscreteGenerator,
    ExponentialGenerator,
    HotspotIntegerGenerator,
    KeyNameGenerator,
    NumberGenerator,
    ScrambledZipfianGenerator,
    SequentialGenerator,
    SkewedLatestGenerator,
    UniformLongGenerator,
    ZipfianGenerator,
    locked_random,
)
from ..measurements.registry import Measurements, StopWatch
from .db import DB
from .properties import Properties
from .workload import Workload, WorkloadError

__all__ = ["CoreWorkload", "OPERATION_NAMES"]

#: Canonical operation labels, as they appear in measurement output.
OPERATION_NAMES = ("READ", "UPDATE", "INSERT", "SCAN", "READMODIFYWRITE", "DELETE")

_FIELD_CHARS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


class CoreWorkload(Workload):
    """The standard YCSB workload, transactional-ready."""

    def init(self, properties: Properties, measurements: Measurements | None = None) -> None:
        super().init(properties, measurements)
        p = properties
        self.table = p.get_str("table", "usertable")
        self.record_count = p.get_int("recordcount", 1000)
        if self.record_count < 1:
            raise WorkloadError("recordcount must be >= 1")
        self.field_count = p.get_int("fieldcount", 10)
        self.field_prefix = p.get_str("fieldnameprefix", "field")
        self.field_names = [f"{self.field_prefix}{i}" for i in range(self.field_count)]
        self.read_all_fields = p.get_bool("readallfields", True)
        self.write_all_fields = p.get_bool("writeallfields", False)
        self.zero_padding = p.get_int("zeropadding", 1)
        self.insert_start = p.get_int("insertstart", 0)
        self.insert_count = p.get_int("insertcount", self.record_count)

        # ``workload.seed`` is the single replay knob: it wins over the
        # legacy ``seed`` so a synthesis spec can pin every request
        # generator with one value.
        seed = p.get("workload.seed")
        if seed is None:
            seed = p.get("seed")
        self._seed = int(seed) if seed is not None else None
        self._shared_rng = locked_random(self._seed)

        ordered = p.get_str("insertorder", "hashed").lower() == "ordered"
        self.key_names = KeyNameGenerator(
            prefix=p.get_str("keyprefix", "user"),
            hashed=not ordered,
            zero_padding=self.zero_padding,
        )

        self.field_length_generator = self._build_field_length_generator()
        self.key_sequence = CounterGenerator(self.insert_start)
        self.transaction_insert_sequence = AcknowledgedCounterGenerator(
            self.insert_start + self.insert_count
        )
        self.key_chooser = self._build_key_chooser()
        self.scan_length_generator = self._build_scan_length_generator()
        self.operation_chooser = self._build_operation_chooser()

    # -- generator construction ------------------------------------------------------

    def _build_field_length_generator(self) -> NumberGenerator:
        p = self.properties
        distribution = p.get_str("fieldlengthdistribution", "constant").lower()
        length = p.get_int("fieldlength", 100)
        if distribution == "constant":
            return ConstantGenerator(length)
        if distribution == "uniform":
            return UniformLongGenerator(1, length, rng=self._shared_rng)
        if distribution == "zipfian":
            return ZipfianGenerator(1, length, rng=self._shared_rng)
        raise WorkloadError(f"unknown fieldlengthdistribution {distribution!r}")

    def _build_key_chooser(self) -> NumberGenerator:
        p = self.properties
        distribution = p.get_str("requestdistribution", "uniform").lower()
        lower = self.insert_start
        upper = self.insert_start + self.insert_count - 1
        if distribution == "uniform":
            return UniformLongGenerator(lower, upper, rng=self._shared_rng)
        if distribution == "zipfian":
            # Operating space is over-provisioned by the expected number of
            # new inserts (YCSB does the same) so hot ranks stay stable as
            # the table grows.
            operation_count = p.get_int("operationcount", 1000)
            insert_proportion = p.get_float("insertproportion", 0.0)
            expected_new = int(operation_count * insert_proportion * 2) + 1
            return ScrambledZipfianGenerator(
                lower, upper + expected_new, rng=self._shared_rng
            )
        if distribution == "latest":
            return SkewedLatestGenerator(self.transaction_insert_sequence, rng=self._shared_rng)
        if distribution == "hotspot":
            return HotspotIntegerGenerator(
                lower,
                upper,
                hot_set_fraction=p.get_float("hotspotdatafraction", 0.2),
                hot_opn_fraction=p.get_float("hotspotopnfraction", 0.8),
                rng=self._shared_rng,
            )
        if distribution == "sequential":
            return SequentialGenerator(lower, upper)
        if distribution == "exponential":
            percentile = p.get_float("exponential.percentile", 95.0)
            frac = p.get_float("exponential.frac", 0.8571428571)
            return ExponentialGenerator.from_percentile(
                percentile, self.insert_count * frac, rng=self._shared_rng
            )
        raise WorkloadError(f"unknown requestdistribution {distribution!r}")

    def _build_scan_length_generator(self) -> NumberGenerator:
        p = self.properties
        distribution = p.get_str("scanlengthdistribution", "uniform").lower()
        max_length = p.get_int("maxscanlength", 1000)
        if distribution == "uniform":
            return UniformLongGenerator(1, max_length, rng=self._shared_rng)
        if distribution == "zipfian":
            return ZipfianGenerator(1, max_length, rng=self._shared_rng)
        raise WorkloadError(f"unknown scanlengthdistribution {distribution!r}")

    def _build_operation_chooser(self) -> DiscreteGenerator:
        p = self.properties
        chooser: DiscreteGenerator = DiscreteGenerator(rng=self._shared_rng)
        proportions = {
            "READ": p.get_float("readproportion", 0.95),
            "UPDATE": p.get_float("updateproportion", 0.05),
            "INSERT": p.get_float("insertproportion", 0.0),
            "SCAN": p.get_float("scanproportion", 0.0),
            "READMODIFYWRITE": p.get_float("readmodifywriteproportion", 0.0),
            "DELETE": p.get_float("deleteproportion", 0.0),
        }
        total = sum(proportions.values())
        if total <= 0:
            raise WorkloadError("operation proportions sum to zero")
        for name, weight in proportions.items():
            if weight > 0:
                chooser.add_value(weight, name)
        return chooser

    # -- key/value helpers ------------------------------------------------------------------

    def build_key_name(self, key_number: int) -> str:
        return self.key_names.build_key(key_number)

    def _build_value(self, rng: random.Random, field_name: str) -> str:
        length = max(1, self.field_length_generator.next_value())
        return "".join(rng.choice(_FIELD_CHARS) for _ in range(length))

    def build_values(self, rng: random.Random) -> dict[str, str]:
        """A full record's worth of generated field values."""
        return {name: self._build_value(rng, name) for name in self.field_names}

    def build_update(self, rng: random.Random) -> dict[str, str]:
        """Field values for an update (one field unless writeallfields)."""
        if self.write_all_fields:
            return self.build_values(rng)
        name = rng.choice(self.field_names)
        return {name: self._build_value(rng, name)}

    def _read_fields(self, rng: random.Random) -> set[str] | None:
        if self.read_all_fields:
            return None
        return {rng.choice(self.field_names)}

    def next_key_number(self) -> int:
        """A key number guaranteed to reference an existing record."""
        limit = self.transaction_insert_sequence.last_value()
        while True:
            key_number = self.key_chooser.next_value()
            if key_number <= limit:
                return key_number

    # -- load phase -------------------------------------------------------------------------

    def do_insert(self, db: DB, thread_state: Any) -> bool:
        rng: random.Random = thread_state
        key_number = self.key_sequence.next_value()
        key = self.build_key_name(key_number)
        values = self.build_values(rng)
        return db.insert(self.table, key, values).ok

    def do_batch_insert(self, db: DB, thread_state: Any, count: int) -> int:
        rng: random.Random = thread_state
        records = []
        for _ in range(count):
            key_number = self.key_sequence.next_value()
            records.append((self.build_key_name(key_number), self.build_values(rng)))
        return len(records) if db.batch_insert(self.table, records).ok else 0

    # -- transaction phase ---------------------------------------------------------------------

    def do_transaction(self, db: DB, thread_state: Any) -> str | None:
        operation = self.operation_chooser.next_value()
        handler = getattr(self, f"_txn_{operation.lower()}")
        ok = handler(db, thread_state)
        return operation if ok else None

    def _txn_read(self, db: DB, rng: random.Random) -> bool:
        key = self.build_key_name(self.next_key_number())
        result, _ = db.read(self.table, key, self._read_fields(rng))
        return result.ok

    def _txn_update(self, db: DB, rng: random.Random) -> bool:
        key = self.build_key_name(self.next_key_number())
        return db.update(self.table, key, self.build_update(rng)).ok

    def _txn_insert(self, db: DB, rng: random.Random) -> bool:
        key_number = self.transaction_insert_sequence.next_value()
        key = self.build_key_name(key_number)
        ok = db.insert(self.table, key, self.build_values(rng)).ok
        # Acknowledge even on failure so the contiguous frontier advances
        # and readers do not stall behind a permanently missing insert.
        self.transaction_insert_sequence.acknowledge(key_number)
        return ok

    def _txn_scan(self, db: DB, rng: random.Random) -> bool:
        key = self.build_key_name(self.next_key_number())
        length = self.scan_length_generator.next_value()
        result, _ = db.scan(self.table, key, length, self._read_fields(rng))
        return result.ok

    def _txn_readmodifywrite(self, db: DB, rng: random.Random) -> bool:
        key = self.build_key_name(self.next_key_number())
        watch = StopWatch()
        result, _ = db.read(self.table, key, self._read_fields(rng))
        if not result.ok:
            return False
        ok = db.update(self.table, key, self.build_update(rng)).ok
        if self.measurements is not None:
            self.measurements.measure("READ-MODIFY-WRITE", watch.elapsed_us())
            self.measurements.report_status("READ-MODIFY-WRITE", "OK" if ok else "ERROR")
        return ok

    def _txn_delete(self, db: DB, rng: random.Random) -> bool:
        key = self.build_key_name(self.next_key_number())
        return db.delete(self.table, key).ok
