"""Retry with exponential backoff and full jitter.

Real cloud store clients never surface a single 503 or dropped connection
to the application: they retry with capped exponential backoff and random
jitter (the "full jitter" strategy), within a bounded attempt/time budget.
This module provides that policy for every layer of the stack:

* :class:`RetryPolicy` — the pure policy: attempt limit, backoff curve,
  retryable-exception classification, optional wall-clock deadline;
* :class:`RetryStats` — thread-safe counters shared by everything a
  policy instance protects, surfaced in reports as ``[RETRIES]`` lines;
* :class:`RetryingStore` — a :class:`~repro.kvstore.base.KeyValueStore`
  wrapper applying the policy to every data-path call.

**The ambiguous-commit rule.**  A blind retry is only sound for requests
that were *not applied* (transient errors raised before the store acted)
or whose repetition is harmless (idempotent reads, CAS loops that re-read
on failure).  A torn conditional write — applied but reported failed — is
*not* blindly retryable at decision points: retrying an insert-if-absent
that actually landed reads back "already exists" and flips the decision.
The transaction manager therefore verifies its transaction-status record
before deciding (see ``ClientTransactionManager``); the store-level
wrapper here is safe because every conditional-write caller in this
codebase re-reads on a failed CAS rather than trusting it.
"""

from __future__ import annotations

import random
import threading
from collections.abc import Callable
from typing import Any, TypeVar

from ..sim.clock import ambient_monotonic, ambient_sleep
from ..kvstore.base import (
    Fields,
    KeyValueStore,
    RateLimitExceeded,
    StoreUnavailable,
    TransientStoreError,
    VersionedValue,
)

__all__ = [
    "DEFAULT_RETRYABLE",
    "RetryStats",
    "RetryPolicy",
    "RetryBudgetExceeded",
    "RetryingStore",
    "collect_counters",
]

T = TypeVar("T")

#: Exception types a client may retry: the request either did not reach
#: the store (connection refused, throttled at admission) or failed in a
#: way the service documents as transient (5xx).
DEFAULT_RETRYABLE: tuple[type[Exception], ...] = (
    TransientStoreError,
    RateLimitExceeded,
    StoreUnavailable,
)


class RetryBudgetExceeded(Exception):
    """Internal marker: the policy's deadline budget ran out.

    Never raised to callers — the *last underlying error* is re-raised so
    the failure keeps its meaning; this class only exists for tests to
    distinguish budget exhaustion in stats.
    """


class RetryStats:
    """Thread-safe retry counters, shared across threads using one policy."""

    _FIELDS = ("calls", "retries", "exhausted", "deadline_exceeded")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.calls = 0
        self.retries = 0
        self.exhausted = 0
        self.deadline_exceeded = 0

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}

    def counters(self) -> dict[str, int]:
        """Report-facing counter names (``[RETRIES], Count`` lines)."""
        with self._lock:
            return {
                "RETRIES": self.retries,
                "RETRY-EXHAUSTED": self.exhausted + self.deadline_exceeded,
            }


class RetryPolicy:
    """Exponential backoff with full jitter, bounded by attempts and time.

    Args:
        max_attempts: total tries including the first (1 = no retry).
        base_delay_s: backoff cap for the first retry; the cap doubles
            (``multiplier``) per further retry up to ``max_delay_s``.
        max_delay_s: ceiling of the backoff cap.
        multiplier: backoff growth factor.
        deadline_s: optional wall-clock budget for one logical call,
            including backoff sleeps; when the next sleep would cross it,
            the last error is re-raised instead.
        retryable: exception types worth retrying.
        rng: jitter source (seed it for deterministic schedules).
        sleep / clock: injectable for tests — no real sleeping needed.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_s: float = 0.005,
        max_delay_s: float = 0.5,
        multiplier: float = 2.0,
        deadline_s: float | None = None,
        retryable: tuple[type[Exception], ...] = DEFAULT_RETRYABLE,
        rng: random.Random | None = None,
        sleep=ambient_sleep,
        clock=ambient_monotonic,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.multiplier = multiplier
        self.deadline_s = deadline_s
        self.retryable = tuple(retryable)
        self._rng = rng or random.Random()
        self._rng_lock = threading.Lock()
        self._sleep = sleep
        self._clock = clock
        self.stats = RetryStats()

    @classmethod
    def from_properties(
        cls,
        properties,
        stats: RetryStats | None = None,
        rng: random.Random | None = None,
    ) -> "RetryPolicy | None":
        """Build a policy from workload properties; None when disabled.

        Properties: ``retry.max_attempts`` [1 = disabled],
        ``retry.base_delay_ms`` [5], ``retry.max_delay_ms`` [500],
        ``retry.deadline_ms`` [none], ``retry.seed`` [none].  An explicit
        ``rng`` wins over ``retry.seed``; with neither, jitter is drawn
        from a fresh unseeded RNG (non-deterministic).
        """
        max_attempts = properties.get_int("retry.max_attempts", 1)
        if max_attempts <= 1:
            return None
        deadline_ms = properties.get_float("retry.deadline_ms", 0.0)
        seed = properties.get("retry.seed")
        if rng is None and seed is not None:
            rng = random.Random(int(seed))
        policy = cls(
            max_attempts=max_attempts,
            base_delay_s=properties.get_float("retry.base_delay_ms", 5.0) / 1000.0,
            max_delay_s=properties.get_float("retry.max_delay_ms", 500.0) / 1000.0,
            deadline_s=deadline_ms / 1000.0 if deadline_ms > 0 else None,
            rng=rng,
        )
        if stats is not None:
            policy.stats = stats
        return policy

    # -- policy --------------------------------------------------------------

    def is_retryable(self, exc: BaseException) -> bool:
        return isinstance(exc, self.retryable)

    def backoff_s(self, retry_number: int) -> float:
        """Sleep before retry ``retry_number`` (0-based): full jitter.

        Uniform in ``[0, cap]`` with ``cap = min(max_delay, base *
        multiplier ** retry_number)`` — the AWS "full jitter" strategy,
        which decorrelates competing clients better than equal jitter.
        """
        cap = min(self.max_delay_s, self.base_delay_s * (self.multiplier**retry_number))
        if cap <= 0:
            return 0.0
        with self._rng_lock:
            return self._rng.uniform(0.0, cap)

    def call(self, fn: Callable[[], T], stats: RetryStats | None = None) -> T:
        """Run ``fn`` under the policy; returns its result.

        Retryable exceptions are swallowed and retried until the attempt
        or deadline budget runs out, then the last one is re-raised.
        """
        stats = stats or self.stats
        stats.bump("calls")
        deadline = self._clock() + self.deadline_s if self.deadline_s is not None else None
        retry_number = 0
        while True:
            try:
                return fn()
            except Exception as exc:  # noqa: BLE001 - classified below
                if not self.is_retryable(exc):
                    raise
                if retry_number + 1 >= self.max_attempts:
                    stats.bump("exhausted")
                    raise
                delay = self.backoff_s(retry_number)
                if deadline is not None and self._clock() + delay > deadline:
                    stats.bump("deadline_exceeded")
                    raise
                retry_number += 1
                stats.bump("retries")
                if delay > 0:
                    self._sleep(delay)


class RetryingStore(KeyValueStore):
    """Applies a :class:`RetryPolicy` to every data-path call of a store.

    Blind per-operation retry is sound here because conditional-write
    callers in this codebase treat a failed CAS as "re-read and decide",
    so a torn write that a retry turns into a CAS failure is re-examined,
    never trusted.  In particular the transaction manager reads its
    transaction-status record back on *any* non-success of the commit
    insert, so a torn TSR write absorbed by this wrapper still resolves
    to the correct commit decision.
    """

    def __init__(self, inner: KeyValueStore, policy: RetryPolicy):
        self._inner = inner
        self._policy = policy

    @property
    def inner(self) -> KeyValueStore:
        return self._inner

    @property
    def policy(self) -> RetryPolicy:
        return self._policy

    @property
    def retry_stats(self) -> RetryStats:
        return self._policy.stats

    def counters(self) -> dict[str, int]:
        return self._policy.stats.counters()

    # -- reads ---------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        return self._policy.call(lambda: self._inner.get_with_meta(key))

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        return self._policy.call(lambda: self._inner.scan(start_key, record_count))

    def keys(self):
        return self._inner.keys()

    def size(self) -> int:
        return self._inner.size()

    # -- writes --------------------------------------------------------------

    def put(self, key: str, value) -> int:
        return self._policy.call(lambda: self._inner.put(key, value))

    def put_if_version(self, key: str, value, expected_version: int | None) -> int | None:
        return self._policy.call(
            lambda: self._inner.put_if_version(key, value, expected_version)
        )

    def put_versioned(self, key, versioned) -> bool:
        return self._policy.call(lambda: self._inner.put_versioned(key, versioned))

    def delete(self, key: str) -> bool:
        return self._policy.call(lambda: self._inner.delete(key))

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        return self._policy.call(
            lambda: self._inner.delete_if_version(key, expected_version)
        )

    # -- lifecycle -----------------------------------------------------------

    def clear(self) -> None:
        self._inner.clear()

    def close(self) -> None:
        self._inner.close()


def collect_counters(store: Any) -> dict[str, int]:
    """Sum report counters from a store wrapper chain.

    Walks ``store`` and its ``.inner`` chain, merging every
    ``counters()`` dict found (retry wrappers, fault injectors, the HTTP
    client).  Duplicate names across layers are summed.
    """
    totals: dict[str, int] = {}
    seen: set[int] = set()
    while store is not None and id(store) not in seen:
        seen.add(id(store))
        counters_fn = getattr(store, "counters", None)
        if callable(counters_fn):
            for name, value in counters_fn().items():
                totals[name] = totals.get(name, 0) + int(value)
        store = getattr(store, "inner", None)
    return totals
