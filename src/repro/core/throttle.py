"""Client-side target-throughput throttling.

YCSB's ``-target`` flag caps the aggregate request rate; each client
thread paces itself to ``target / threads`` operations per second.  The
pacer sleeps off any accumulated time credit after each operation, which
(unlike fixed inter-arrival sleeping) lets a thread catch up after a slow
operation rather than drifting permanently below target.
"""

from __future__ import annotations

from ..sim.clock import ambient_monotonic, ambient_sleep

__all__ = ["Throttle"]


class Throttle:
    """Paces one thread at ``ops_per_second`` operations per second."""

    def __init__(self, ops_per_second: float, clock=ambient_monotonic, sleep=ambient_sleep):
        if ops_per_second <= 0:
            raise ValueError(f"ops_per_second must be positive, got {ops_per_second}")
        self._interval = 1.0 / ops_per_second
        self._clock = clock
        self._sleep = sleep
        self._started_at: float | None = None
        self._operations = 0

    def wait_for_turn(self) -> None:
        """Block until the next operation is due, then account for it."""
        self.wait_for_turns(1)

    def wait_for_turns(self, count: int) -> None:
        """Block until the next operation is due, then account ``count`` ops.

        Batched loads consume ``batchsize`` slots per call: the batch
        starts when its first operation is due, and the *next* batch is
        pushed out by the whole batch's worth of pacing credit, so the
        aggregate rate still converges on the target.
        """
        if count <= 0:
            return
        now = self._clock()
        if self._started_at is None:
            self._started_at = now
            self._operations += count
            return
        due_at = self._started_at + self._operations * self._interval
        if due_at > now:
            self._sleep(due_at - now)
        self._operations += count
