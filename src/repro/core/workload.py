"""The ``Workload`` abstraction and the YCSB+T validation stage.

A workload owns every decision about *what* the benchmark does — which
keys, which operations, which values — while the client (executor) owns
threading, transaction wrapping and measurement.  YCSB+T adds one method
to YCSB's Workload: :meth:`Workload.validate`, a no-op by default, which
runs after the load or transaction phase and may inspect the whole
database to detect and quantify consistency anomalies (Tier 6).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any

from ..measurements.registry import Measurements
from .db import DB
from .properties import Properties

__all__ = ["ValidationResult", "Workload", "WorkloadError"]


class WorkloadError(Exception):
    """A workload could not be configured or executed."""


@dataclass
class ValidationResult:
    """Outcome of the validation stage (§IV-B).

    Attributes:
        passed: True when the database satisfied the workload's invariant.
        fields: ordered report sections, rendered as ``[SECTION], value``
            lines before the overall block (as in Listing 3).
        anomaly_score: the workload-defined inconsistency metric; for CEW
            this is the simple anomaly score gamma of §IV-C.
    """

    passed: bool
    fields: list[tuple[str, Any]] = field(default_factory=list)
    anomaly_score: float | None = None


class Workload:
    """Base workload: defines the load phase, transaction phase, and
    validation stage.

    Subclasses override :meth:`do_insert` and :meth:`do_transaction`
    (whose return value is the executed operation's name, used by the
    client to record the transactional ``TX-<OP>`` series), and may
    override :meth:`validate`.
    """

    def __init__(self) -> None:
        self.properties = Properties()
        self.measurements: Measurements | None = None
        self._stop_requested = threading.Event()

    # -- lifecycle -----------------------------------------------------------------

    def init(self, properties: Properties, measurements: Measurements | None = None) -> None:
        """One-time setup before any thread starts.

        Subclasses must call ``super().init(...)`` first.
        """
        self.properties = properties
        self.measurements = measurements

    def init_thread(self, thread_id: int, thread_count: int) -> Any:
        """Build per-thread state (e.g. a seeded RNG).

        The returned object is passed back to every ``do_*`` call made by
        that thread.  Default: an independently seeded ``random.Random``.
        """
        seed = self.properties.get("workload.seed")
        if seed is None:
            seed = self.properties.get("seed")
        if seed is None:
            return random.Random()
        return random.Random(int(seed) * 1_000_003 + thread_id)

    def cleanup(self) -> None:
        """One-time teardown after all threads finished."""

    def request_stop(self) -> None:
        """Ask long-running loops to wind down (cooperative)."""
        self._stop_requested.set()

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested.is_set()

    # -- phases -------------------------------------------------------------------------

    def do_insert(self, db: DB, thread_state: Any) -> bool:
        """Insert one record (load phase).  True on success."""
        raise NotImplementedError

    def do_batch_insert(self, db: DB, thread_state: Any, count: int) -> int:
        """Insert up to ``count`` records in one call (bulk loading).

        Returns the number of records successfully inserted.  Default:
        loop over :meth:`do_insert`; workloads that can pre-build their
        records override this to use :meth:`DB.batch_insert`.
        """
        inserted = 0
        for _ in range(count):
            if self.do_insert(db, thread_state):
                inserted += 1
        return inserted

    def do_transaction(self, db: DB, thread_state: Any) -> str | None:
        """Execute one operation of the transaction phase.

        Returns the operation's name (``"READ"``, ``"READMODIFYWRITE"``,
        ...) on success, or None on failure — the client aborts the
        surrounding transaction when it sees None.
        """
        raise NotImplementedError

    def finish_transaction(
        self, db: DB, thread_state: Any, operation: str | None, committed: bool
    ) -> None:
        """Called by the client after the wrapping transaction finishes.

        ``committed`` reports the final outcome (False covers both an
        operation failure and a commit-time conflict).  Workloads that
        keep side state correlated with database effects — CEW's escrow —
        reconcile it here, because only now is the outcome known.
        Default: no-op.
        """

    # -- YCSB+T validation stage -----------------------------------------------------------

    def validate(self, db: DB) -> ValidationResult | None:
        """Check database consistency after a phase completes.

        Default is a no-op returning None (backward compatible with
        workloads written for plain YCSB).  Implementations should read
        through ``db`` so validation exercises the same client path the
        benchmark used.
        """
        return None
