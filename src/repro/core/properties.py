"""Workload property files.

YCSB configures workloads through Java-style ``key=value`` property files
(Listing 2 of the paper shows the Closed Economy Workload file).  This module
implements a compatible reader plus a typed accessor object used throughout
the framework.

The grammar intentionally mirrors ``java.util.Properties`` for the subset
YCSB uses:

* one ``key=value`` or ``key: value`` pair per line,
* ``#`` and ``!`` start comment lines,
* surrounding whitespace around key and value is stripped,
* a trailing backslash continues the logical line,
* later assignments override earlier ones.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path
from typing import Any

__all__ = ["Properties", "parse_properties", "load_properties"]

_COMMENT_PREFIXES = ("#", "!")
_TRUE_WORDS = frozenset({"true", "yes", "on", "1"})
_FALSE_WORDS = frozenset({"false", "no", "off", "0"})


def _logical_lines(raw_lines: Iterable[str]) -> Iterator[str]:
    """Join physical lines that end with a continuation backslash."""
    pending = ""
    for raw in raw_lines:
        line = raw.rstrip("\n").rstrip("\r")
        if pending:
            line = pending + line.lstrip()
            pending = ""
        stripped = line.strip()
        if not stripped or stripped.startswith(_COMMENT_PREFIXES):
            continue
        if line.endswith("\\") and not line.endswith("\\\\"):
            pending = line[:-1]
            continue
        yield line
    if pending:
        yield pending


def _split_pair(line: str) -> tuple[str, str]:
    """Split a logical line into key and value.

    The first unescaped ``=`` or ``:`` terminates the key; if neither is
    present the whole line is a key with an empty value (matching
    ``java.util.Properties``).
    """
    for index, char in enumerate(line):
        if char in "=:":
            return line[:index].strip(), line[index + 1 :].strip()
    return line.strip(), ""


def parse_properties(text: str) -> dict[str, str]:
    """Parse property-file ``text`` into an ordered ``dict``."""
    pairs: dict[str, str] = {}
    for line in _logical_lines(io.StringIO(text)):
        key, value = _split_pair(line)
        if key:
            pairs[key] = value
    return pairs


def load_properties(path: str | Path) -> "Properties":
    """Read a property file from ``path``."""
    text = Path(path).read_text(encoding="utf-8")
    return Properties(parse_properties(text))


class Properties:
    """Typed access to a flat string-to-string configuration map.

    All getters take a default; a property that is present but cannot be
    converted raises ``ValueError`` naming the key, so misconfigured
    workload files fail loudly rather than silently falling back.
    """

    def __init__(self, values: Mapping[str, str] | None = None):
        self._values: dict[str, str] = dict(values or {})

    # -- mapping-ish surface -------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Properties):
            return self._values == other._values
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Properties({self._values!r})"

    def as_dict(self) -> dict[str, str]:
        """A copy of the underlying string map."""
        return dict(self._values)

    def set(self, key: str, value: Any) -> None:
        """Set ``key`` to ``str(value)``."""
        self._values[key] = str(value)

    def update(self, other: Mapping[str, str] | "Properties") -> None:
        """Merge ``other`` into this object, overriding existing keys."""
        if isinstance(other, Properties):
            self._values.update(other._values)
        else:
            self._values.update(other)

    def merged(self, other: Mapping[str, str] | "Properties") -> "Properties":
        """A new ``Properties`` equal to self overridden by ``other``."""
        result = Properties(self._values)
        result.update(other)
        return result

    # -- typed getters -------------------------------------------------------

    def get(self, key: str, default: str | None = None) -> str | None:
        """Raw string value of ``key``, or ``default``."""
        return self._values.get(key, default)

    def get_str(self, key: str, default: str = "") -> str:
        return self._values.get(key, default)

    def get_int(self, key: str, default: int = 0) -> int:
        raw = self._values.get(key)
        if raw is None or raw == "":
            return default
        try:
            return int(raw, 10)
        except ValueError as exc:
            raise ValueError(f"property {key!r}={raw!r} is not an integer") from exc

    def get_float(self, key: str, default: float = 0.0) -> float:
        raw = self._values.get(key)
        if raw is None or raw == "":
            return default
        try:
            return float(raw)
        except ValueError as exc:
            raise ValueError(f"property {key!r}={raw!r} is not a number") from exc

    def get_bool(self, key: str, default: bool = False) -> bool:
        raw = self._values.get(key)
        if raw is None or raw == "":
            return default
        lowered = raw.strip().lower()
        if lowered in _TRUE_WORDS:
            return True
        if lowered in _FALSE_WORDS:
            return False
        raise ValueError(f"property {key!r}={raw!r} is not a boolean")

    def get_list(self, key: str, default: list[str] | None = None, sep: str = ",") -> list[str]:
        """Value of ``key`` split on ``sep`` with items stripped."""
        raw = self._values.get(key)
        if raw is None or raw == "":
            return list(default or [])
        return [item.strip() for item in raw.split(sep) if item.strip()]

    def require(self, key: str) -> str:
        """Value of ``key``; raises ``KeyError`` with guidance if missing."""
        try:
            return self._values[key]
        except KeyError:
            raise KeyError(f"required workload property {key!r} is not set") from None
