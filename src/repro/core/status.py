"""Operation status codes for the YCSB+T ``DB`` interface.

YCSB reports per-operation return codes in its measurement output (the
``Return=0`` lines of Listing 3 in the paper).  This module defines a small
value type, :class:`Status`, plus the canonical set of codes used by the
framework.  A status carries an integer ``code`` (0 means success, mirroring
YCSB's convention) and a short human-readable ``name``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Status:
    """Outcome of a single database operation.

    Attributes:
        code: Integer return code.  ``0`` is success; anything else is a
            failure whose meaning is given by ``name``.
        name: Short identifier such as ``"OK"`` or ``"NOT_FOUND"``.
        message: Optional detail for error diagnosis; never used for
            control flow.
    """

    code: int
    name: str
    message: str = ""

    @property
    def ok(self) -> bool:
        """True when the operation succeeded."""
        return self.code == 0

    def is_retryable(self) -> bool:
        """True for transient failures the client may retry.

        Conflicts, timeouts and rate limiting are retryable; logical errors
        such as ``NOT_FOUND`` or ``BAD_REQUEST`` are not.
        """
        return self.name in _RETRYABLE

    def with_message(self, message: str) -> "Status":
        """Return a copy of this status carrying ``message``."""
        return Status(self.code, self.name, message)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.message:
            return f"{self.name}({self.code}): {self.message}"
        return f"{self.name}({self.code})"


#: Operation completed successfully.
OK = Status(0, "OK")
#: Generic failure.
ERROR = Status(1, "ERROR")
#: The requested key does not exist.
NOT_FOUND = Status(2, "NOT_FOUND")
#: A write-write or read-write conflict was detected (transactional mode).
CONFLICT = Status(3, "CONFLICT")
#: The operation exceeded its deadline.
TIMEOUT = Status(4, "TIMEOUT")
#: The store rejected the request because of throttling / rate limits.
RATE_LIMITED = Status(5, "RATE_LIMITED")
#: A conditional operation failed its precondition (e.g. ETag mismatch).
PRECONDITION_FAILED = Status(6, "PRECONDITION_FAILED")
#: The request was malformed.
BAD_REQUEST = Status(7, "BAD_REQUEST")
#: The operation is not implemented by this DB binding.
NOT_IMPLEMENTED = Status(8, "NOT_IMPLEMENTED")
#: The enclosing transaction was aborted.
ABORTED = Status(9, "ABORTED")
#: The service is temporarily unavailable (simulated outage, replica lag).
UNAVAILABLE = Status(10, "UNAVAILABLE")

_RETRYABLE = frozenset({"CONFLICT", "TIMEOUT", "RATE_LIMITED", "UNAVAILABLE", "ABORTED"})

#: All canonical statuses, keyed by name.  Used by exporters and tests.
ALL_STATUSES = {
    status.name: status
    for status in (
        OK,
        ERROR,
        NOT_FOUND,
        CONFLICT,
        TIMEOUT,
        RATE_LIMITED,
        PRECONDITION_FAILED,
        BAD_REQUEST,
        NOT_IMPLEMENTED,
        ABORTED,
        UNAVAILABLE,
    )
}


def from_name(name: str) -> Status:
    """Look up a canonical status by ``name``.

    Raises:
        KeyError: if ``name`` is not a canonical status name.
    """
    return ALL_STATUSES[name]
