"""Command-line interface.

Mirrors the YCSB client invocation from the paper's Listing 1::

    ycsbt run -db raw_http -P workloads/closed_economy_workload \\
        -p http.port=8001 -threads 16

Sub-commands:

* ``load`` / ``run`` — execute the load phase or the transaction phase of
  a workload against a DB binding, then the validation stage, and print
  the measurement report (Listing 3 format by default).
* ``serve`` — start the HTTP key-value server (the store side of the
  paper's §V-C setup) and block until interrupted.
* ``experiment`` — regenerate a paper figure/table and print its series.
* ``sim`` — seed-sweep campaign in virtual time: run the Closed Economy
  Workload under deterministic simulation across many seeds and fault
  schedules, hunting for consistency violations; violating seeds are
  written out as replayable JSON trace artifacts.
* ``synth`` — statistical workload synthesis: compile declarative
  scenarios (time-varying arrival curves, drifting hot-key skew,
  multi-tenant mixes under token-bucket ceilings) into deterministic
  million-user virtual-time campaigns with conformance assertions;
  failing seeds emit replayable trace artifacts.
* ``crash`` — crash-recovery campaign: kill simulated clients at named
  crashpoints mid-protocol, let lock leases expire, run the transaction
  scavenger, and re-validate the Closed Economy invariants; violating
  seeds emit the same replayable trace artifacts.
* ``cluster`` — multi-shard campaign: run the CEW against N live HTTP
  shard servers (raw operations routed by the shard map, transactions
  committing via cross-shard 2PC), kill one shard mid-run, recover via
  coordinator-WAL replay + scavenging, and re-validate.
* ``replication`` — leader-follower campaign: run the CEW through the
  consistency-routed store against a leader + N follower HTTP nodes,
  kill the leader mid-run, fail over on the lease (clean drain of the
  dead leader's durable log), rejoin it, and re-validate; strong and
  read_your_writes must balance the economy, bounded_staleness reports
  its expected leak.
* ``exp`` — declarative experiments: ``exp run`` executes a spec
  (built-in name or JSON/TOML file) N times and aggregates every metric
  into mean / stddev / 95 % confidence intervals (the extended
  ``BENCH_*.json`` shape); ``exp diff`` compares two trajectories
  significance-aware and exits non-zero on a regression; ``exp list``
  prints the built-in catalogue.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from collections.abc import Sequence

from ..measurements.exporters import (
    CsvExporter,
    JsonExporter,
    JsonLinesExporter,
    TextExporter,
)
from ..measurements.registry import Measurements
from .client import Client
from .closed_economy import ClosedEconomyWorkload
from .core_workload import CoreWorkload
from .db import create_db
from .properties import Properties, load_properties
from .workload import Workload

__all__ = ["main", "build_parser"]

def _anomaly_workload(name: str):
    from .. import workloads

    return getattr(workloads, name)


_WORKLOAD_ALIASES = {
    "core": CoreWorkload,
    "closed_economy": ClosedEconomyWorkload,
    "cew": ClosedEconomyWorkload,
    # Anomaly-targeting workloads (§VII future work).
    "lost_update": lambda: _anomaly_workload("LostUpdateWorkload")(),
    "write_skew": lambda: _anomaly_workload("WriteSkewWorkload")(),
    "read_skew": lambda: _anomaly_workload("ReadSkewWorkload")(),
    # Java-style names from YCSB property files, for drop-in compatibility.
    "com.yahoo.ycsb.workloads.coreworkload": CoreWorkload,
    "com.yahoo.ycsb.workloads.closedeconomyworkload": ClosedEconomyWorkload,
}

_EXPORTERS = {
    "text": TextExporter,
    "json": JsonExporter,
    "jsonl": JsonLinesExporter,
    "csv": CsvExporter,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ycsbt",
        description="YCSB+T: benchmark framework for transactional key-value stores",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    phase_help = {
        "load": "execute the load phase",
        "run": "execute the transaction phase",
        "bench": "load then run in one process (required for in-process "
        "bindings like 'memory', whose data dies with the process)",
    }
    for phase in ("load", "run", "bench"):
        sub = commands.add_parser(phase, help=phase_help[phase])
        sub.add_argument(
            "-db",
            "--db",
            default="basic",
            help="DB binding: alias (memory, lsm, cloud, raw_http, txn, basic) "
            "or dotted class path",
        )
        sub.add_argument(
            "-P",
            "--property-file",
            action="append",
            default=[],
            help="workload property file (repeatable; later files override)",
        )
        sub.add_argument(
            "-p",
            "--property",
            action="append",
            default=[],
            metavar="KEY=VALUE",
            help="property override (repeatable)",
        )
        sub.add_argument("-threads", "--threads", type=int, default=None)
        sub.add_argument(
            "-target", "--target", type=float, default=None, help="target ops/sec"
        )
        sub.add_argument(
            "--export", choices=sorted(_EXPORTERS), default="text", help="report format"
        )
        sub.add_argument(
            "-s",
            "--status",
            action="store_true",
            help="print interval status lines (ops done, current ops/sec, "
            "interval p95/p99 per operation) to stderr while running; "
            "window size via -p status.interval=SECONDS",
        )
        sub.add_argument(
            "--coordinator",
            default=None,
            metavar="HOST:PORT",
            help="multi-client coordination service: register, take a "
            "keyspace slice, rendezvous at phase barriers, report results",
        )
        sub.add_argument(
            "--processes",
            type=int,
            default=None,
            metavar="N",
            help="scale out across N worker processes (spawned and "
            "coordinated automatically; requires an HTTP binding such as "
            "raw_http or txn_http with http.port set).  operationcount "
            "is per worker; recordcount is sharded across workers",
        )

    coordinate = commands.add_parser(
        "coordinate", help="run the multi-client coordination service"
    )
    coordinate.add_argument("--clients", type=int, required=True,
                            help="number of benchmark clients to expect")
    coordinate.add_argument("--host", default="127.0.0.1")
    coordinate.add_argument("--port", type=int, default=9462)

    serve = commands.add_parser("serve", help="run the HTTP key-value server")
    serve.add_argument("--store", choices=("memory", "lsm"), default="memory")
    serve.add_argument("--dir", default=None, help="data directory (lsm store)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8001)

    experiment = commands.add_parser("experiment", help="regenerate a paper figure")
    experiment.add_argument(
        "name",
        choices=(
            "fig2",
            "fig2mp",
            "fig3",
            "fig4",
            "fig5",
            "sim_figure2",
            "tier5",
            "tier6",
            "ablation",
            "isolation",
            "all",
        ),
    )
    experiment.add_argument(
        "--full", action="store_true", help="longer, lower-noise runs"
    )

    from ..sim.campaign import FAULT_SCHEDULES, SIM_BINDINGS

    sim = commands.add_parser(
        "sim",
        help="seed-sweep campaign in virtual time: hunt for consistency "
        "violations and emit replayable traces",
    )
    sim.add_argument(
        "--seeds", type=int, default=20, help="number of seeds to sweep [20]"
    )
    sim.add_argument(
        "--start-seed", type=int, default=0, help="first seed of the sweep [0]"
    )
    sim.add_argument(
        "--db",
        action="append",
        choices=SIM_BINDINGS,
        default=None,
        help="binding to sweep (repeatable) [both]",
    )
    sim.add_argument(
        "--schedule",
        action="append",
        choices=sorted(FAULT_SCHEDULES),
        default=None,
        help="fault schedule to sweep (repeatable) [baseline]",
    )
    sim.add_argument(
        "-p",
        "--property",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="workload property override (repeatable)",
    )
    sim.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for violation trace artifacts (none written without it)",
    )
    sim.add_argument(
        "--no-trace",
        action="store_true",
        help="skip operation-interleaving capture (faster, artifacts carry "
        "no trace)",
    )

    synth = commands.add_parser(
        "synth",
        help="statistical workload-synthesis campaign: compile declarative "
        "scenarios (diurnal curves, flash crowds, drifting hot sets, "
        "multi-tenant mixes) into deterministic virtual-time runs",
    )
    synth.add_argument(
        "--seeds", type=int, default=5, help="number of seeds to sweep [5]"
    )
    synth.add_argument(
        "--start-seed", type=int, default=0, help="first seed of the sweep [0]"
    )
    synth.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="built-in scenario to sweep (repeatable) [steady]; "
        "see 'ycsbt synth --list'",
    )
    synth.add_argument(
        "--spec",
        action="append",
        default=None,
        metavar="FILE",
        help="synth spec file (.json/.toml) to sweep (repeatable)",
    )
    synth.add_argument(
        "--db",
        action="append",
        choices=("raw", "txn"),
        default=None,
        help="binding to sweep (repeatable) [each spec's own]",
    )
    synth.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override every spec's simulated duration",
    )
    synth.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for violation trace artifacts (none written without it)",
    )
    synth.add_argument(
        "--list", action="store_true", help="list built-in scenarios and exit"
    )

    from ..recovery.campaign import CRASH_BINDINGS, CRASH_SCHEDULES

    crash = commands.add_parser(
        "crash",
        help="crash-recovery campaign: kill clients at scheduled "
        "crashpoints, scavenge, re-validate the CEW invariants",
    )
    crash.add_argument(
        "--seeds", type=int, default=10, help="number of seeds to sweep [10]"
    )
    crash.add_argument(
        "--start-seed", type=int, default=0, help="first seed of the sweep [0]"
    )
    crash.add_argument(
        "--db",
        action="append",
        choices=CRASH_BINDINGS,
        default=None,
        help="binding to sweep (repeatable) [raw and txn]",
    )
    crash.add_argument(
        "--schedule",
        action="append",
        choices=sorted(CRASH_SCHEDULES) + ["seeded"],
        default=None,
        help="crash schedule to sweep (repeatable; 'seeded' derives one "
        "from each seed) [prewrite, primary-commit, mid-secondary, worker-kill]",
    )
    crash.add_argument(
        "-p",
        "--property",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="workload property override (repeatable)",
    )
    crash.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for violation trace artifacts (none written without it)",
    )
    crash.add_argument(
        "--no-trace",
        action="store_true",
        help="skip operation-interleaving capture (faster, artifacts carry "
        "no trace)",
    )

    from ..cluster.campaign import CLUSTER_BINDINGS

    cluster = commands.add_parser(
        "cluster",
        help="multi-shard cluster campaign: run CEW over N HTTP shards "
        "with cross-shard 2PC, kill one shard mid-run, recover "
        "(WAL replay + scavenge), re-validate",
    )
    cluster.add_argument(
        "--shards",
        action="append",
        type=int,
        default=None,
        metavar="N",
        help="shard count to sweep (repeatable) [4]",
    )
    cluster.add_argument(
        "--seeds", type=int, default=3, help="number of seeds to sweep [3]"
    )
    cluster.add_argument(
        "--start-seed", type=int, default=0, help="first seed of the sweep [0]"
    )
    cluster.add_argument(
        "--db",
        action="append",
        choices=CLUSTER_BINDINGS,
        default=None,
        help="binding to sweep (repeatable) [raw and txn]",
    )
    cluster.add_argument(
        "--no-kill",
        action="store_true",
        help="run fault-free (no shard is killed mid-run)",
    )
    cluster.add_argument(
        "-p",
        "--property",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="workload property override (repeatable)",
    )
    cluster.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for violation artifacts (none written without it)",
    )

    from ..replication.campaign import REPLICATION_LEVELS

    replication = commands.add_parser(
        "replication",
        help="leader-follower replication campaign: run CEW through the "
        "routed store at one or more consistency levels, kill the "
        "leader mid-run, fail over on the lease, rejoin, re-validate",
    )
    replication.add_argument(
        "--level",
        action="append",
        choices=REPLICATION_LEVELS,
        default=None,
        help="consistency level to sweep (repeatable) [all three]",
    )
    replication.add_argument(
        "--followers", type=int, default=2, help="follower count [2]"
    )
    replication.add_argument(
        "--seeds", type=int, default=3, help="number of seeds to sweep [3]"
    )
    replication.add_argument(
        "--start-seed", type=int, default=0, help="first seed of the sweep [0]"
    )
    replication.add_argument(
        "--no-kill",
        action="store_true",
        help="run fault-free (the leader survives the whole run)",
    )
    replication.add_argument(
        "-p",
        "--property",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="workload property override (repeatable)",
    )
    replication.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for violation artifacts (none written without it)",
    )

    replicated = commands.add_parser(
        "replicated-cluster",
        help="replicated shard cluster campaign: every shard a replica set "
        "of HTTP nodes with durable follower logs, kill one shard's "
        "leader mid-run, fail over on the lease, rejoin, replay the "
        "coordinator WAL through the new leader, re-validate",
    )
    replicated.add_argument(
        "--shards",
        action="append",
        type=int,
        default=None,
        metavar="N",
        help="shard count to sweep (repeatable) [2]",
    )
    replicated.add_argument(
        "--followers", type=int, default=2, help="followers per shard [2]"
    )
    replicated.add_argument(
        "--level",
        choices=("strong", "quorum", "read_your_writes", "bounded_staleness"),
        default="strong",
        help="read consistency for the raw binding's routed store [strong]",
    )
    replicated.add_argument(
        "--seeds", type=int, default=3, help="number of seeds to sweep [3]"
    )
    replicated.add_argument(
        "--start-seed", type=int, default=0, help="first seed of the sweep [0]"
    )
    replicated.add_argument(
        "--db",
        action="append",
        choices=CLUSTER_BINDINGS,
        default=None,
        help="binding to sweep (repeatable) [raw and txn]",
    )
    replicated.add_argument(
        "--no-kill",
        action="store_true",
        help="run fault-free (every shard leader survives the whole run)",
    )
    replicated.add_argument(
        "-p",
        "--property",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="workload property override (repeatable)",
    )
    replicated.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for violation artifacts (none written without it)",
    )

    exp = commands.add_parser(
        "exp",
        help="declarative experiments: run specs with N repetitions, "
        "aggregate confidence intervals, diff trajectories",
    )
    exp_commands = exp.add_subparsers(dest="exp_command", required=True)

    exp_run = exp_commands.add_parser(
        "run", help="run a spec (built-in name or .json/.toml file) N times"
    )
    exp_run.add_argument(
        "spec", help="built-in spec name (see 'exp list') or path to a "
        ".json/.toml spec file"
    )
    exp_run.add_argument(
        "--reps", type=int, default=None, help="override the spec's repetitions"
    )
    exp_run.add_argument(
        "--seed", type=int, default=None, help="override the spec's base seed"
    )
    exp_run.add_argument(
        "--full", action="store_true", help="longer, lower-noise runs"
    )
    exp_run.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory for the aggregated BENCH_<name>.json trajectory",
    )
    exp_run.add_argument(
        "--json",
        action="store_true",
        help="print the BENCH json document to stdout instead of the table",
    )

    exp_diff = exp_commands.add_parser(
        "diff",
        help="compare two BENCH trajectories; exit 1 on a significant "
        "regression (CIs disjoint AND effect >= --min-effect; single-run "
        "legacy documents use --legacy-threshold)",
    )
    exp_diff.add_argument("old", help="baseline BENCH_*.json (v1 or v2 schema)")
    exp_diff.add_argument("new", help="fresh BENCH_*.json (v1 or v2 schema)")
    exp_diff.add_argument(
        "--min-effect",
        type=float,
        default=0.05,
        help="minimum relative change to flag when both sides carry "
        "confidence intervals [0.05]",
    )
    exp_diff.add_argument(
        "--legacy-threshold",
        type=float,
        default=0.25,
        help="relative-change threshold when either side is a single run "
        "with no variance information [0.25]",
    )
    exp_diff.add_argument(
        "--json", action="store_true", help="print the machine-readable diff"
    )

    exp_commands.add_parser("list", help="list built-in specs and runners")
    return parser


def _gather_properties(args: argparse.Namespace) -> Properties:
    properties = Properties()
    for path in args.property_file:
        properties.update(load_properties(path))
    for pair in args.property:
        key, separator, value = pair.partition("=")
        if not separator:
            raise SystemExit(f"bad -p argument {pair!r}: expected KEY=VALUE")
        properties.set(key.strip(), value.strip())
    if args.threads is not None:
        properties.set("threadcount", args.threads)
    if args.target is not None:
        properties.set("target", args.target)
    return properties


def _build_workload(properties: Properties) -> Workload:
    name = properties.get_str("workload", "core")
    workload_class = _WORKLOAD_ALIASES.get(name.lower())
    if workload_class is None:
        # Dotted python path fallback.
        import importlib

        module_name, _, class_name = name.rpartition(".")
        if not module_name:
            raise SystemExit(f"unknown workload {name!r}")
        workload_class = getattr(importlib.import_module(module_name), class_name)
    return workload_class()


def _parse_host_port(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad address {value!r}: expected HOST:PORT")
    return host, int(port)


_HTTP_BINDINGS = frozenset({"raw_http", "rawhttp", "txn_http", "txnhttp"})


def _run_scaleout_phase(args: argparse.Namespace, phase: str) -> int:
    """Drive ``--processes N``: spawn workers, merge, print one report."""
    from ..scaleout import ScaleoutSpec, run_scaleout

    if args.coordinator:
        raise SystemExit(
            "--processes embeds its own coordinator; it cannot be combined "
            "with --coordinator"
        )
    if args.db not in _HTTP_BINDINGS:
        raise SystemExit(
            f"--processes requires an HTTP binding ({', '.join(sorted(_HTTP_BINDINGS))}); "
            f"got {args.db!r}"
        )
    properties = _gather_properties(args)
    host = properties.get_str("http.host", "127.0.0.1")
    port = properties.get_int("http.port", 0)
    if port == 0:
        raise SystemExit("--processes needs http.port pointing at a running server")

    phases = ("load", "run") if phase == "bench" else (phase,)
    spec = ScaleoutSpec(
        processes=args.processes,
        db=args.db,
        properties=dict(properties.as_dict()),
        phases=phases,
        store_address=(host, port),
    )
    result = run_scaleout(spec)

    exporter = _EXPORTERS[args.export]()
    final = result.run if result.run is not None else result.load
    if final is None:
        for error in result.worker_errors:
            print(f"error: {error}", file=sys.stderr)
        return 1
    # The merged result carries the parent's authoritative validation.
    final.validation = result.validation
    sys.stdout.write(exporter.export(final.report()))
    for error in result.worker_errors:
        print(f"error: {error}", file=sys.stderr)
    if result.worker_errors:
        return 1
    if result.validation is not None and not result.validation.passed:
        return 1
    return 0


def _run_phase(args: argparse.Namespace, phase: str) -> int:
    if getattr(args, "processes", None):
        return _run_scaleout_phase(args, phase)
    properties = _gather_properties(args)

    coordinator = None
    if getattr(args, "coordinator", None):
        from ..coordination import CoordinatorClient

        coordinator = CoordinatorClient(_parse_host_port(args.coordinator))
        index, expected = coordinator.register()
        start, count = CoordinatorClient.keyspace_slice(
            index, expected, properties.get_int("recordcount", 1000)
        )
        # Each client loads its own contiguous slice; the transaction
        # phase runs over the whole key space (insertcount stays sliced
        # only during the load).
        if phase in ("load", "bench"):
            properties.set("insertstart", start)
            properties.set("insertcount", count)
        print(
            f"coordinated as client {index + 1}/{expected}: "
            f"keys [{start}, {start + count})",
            file=sys.stderr,
        )

    if args.status:
        # The client owns the live status thread (interval ops/sec and
        # per-operation p95/p99 to stderr); the flag is just a property.
        properties.set("status", "true")

    measurements = Measurements.from_properties(properties)
    workload = _build_workload(properties)
    workload.init(properties, measurements)

    def db_factory():
        return create_db(args.db, properties)

    client = Client(workload, db_factory, properties, measurements)

    try:
        if phase == "bench":
            if coordinator is not None:
                coordinator.wait_barrier("load-start")
            load_result = client.load()
            if coordinator is not None:
                coordinator.submit_result("load", load_result)
                coordinator.wait_barrier("run-start")
            result = client.run()
        elif phase == "load":
            if coordinator is not None:
                coordinator.wait_barrier("load-start")
            result = client.load()
        else:
            if coordinator is not None:
                coordinator.wait_barrier("run-start")
            result = client.run()
    finally:
        workload.cleanup()

    if coordinator is not None:
        coordinator.submit_result(phase if phase != "bench" else "run", result)

    exporter = _EXPORTERS[args.export]()
    sys.stdout.write(exporter.export(result.report()))
    for error in result.errors:
        print(f"error: {error}", file=sys.stderr)
    if result.validation is not None and not result.validation.passed:
        return 1
    return 0


def _coordinate(args: argparse.Namespace) -> int:
    from ..coordination import CoordinationServer

    server = CoordinationServer(args.clients, host=args.host, port=args.port)
    server.start()
    host, port = server.address
    print(
        f"coordinating {args.clients} clients on http://{host}:{port} "
        f"(Ctrl-C to stop; pass --coordinator {host}:{port} to each client)"
    )
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        while not stop.wait(2.0):
            summary = server.state.summary()
            if summary["reports"]:
                print(
                    f"[coordinator] reports={summary['reports']} "
                    f"total throughput={summary['total_throughput']:,.0f} ops/s",
                    file=sys.stderr,
                )
    finally:
        summary = server.state.summary()
        if summary["reports"]:
            print(json.dumps(summary, indent=2))
        server.stop()
    return 0


def _serve(args: argparse.Namespace) -> int:
    from ..http.server import KVStoreHTTPServer
    from ..kvstore.lsm import LSMKVStore
    from ..kvstore.memory import InMemoryKVStore

    if args.store == "lsm":
        if not args.dir:
            raise SystemExit("--dir is required for the lsm store")
        store = LSMKVStore(args.dir)
    else:
        store = InMemoryKVStore()
    server = KVStoreHTTPServer(store, host=args.host, port=args.port)
    server.start()
    host, port = server.address
    print(f"serving {args.store} store on http://{host}:{port} (Ctrl-C to stop)")
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    stop.wait()
    server.stop()
    store.close()
    return 0


def _experiment(args: argparse.Namespace) -> int:
    from .. import harness
    from ..harness.report import render_experiment

    runners = {
        "fig2": (harness.fig2_cloud_scaling, "threads"),
        "fig2mp": (harness.figure2_multiprocess, "processes"),
        "fig3": (harness.fig3_transaction_overhead, "threads"),
        "fig4": (harness.fig4_anomaly_score, "threads"),
        "fig5": (harness.fig5_raw_scaling, "threads"),
        "sim_figure2": (harness.sim_figure2, "threads"),
        "tier5": (harness.tier5_operation_overhead, "threads"),
        "tier6": (harness.tier6_consistency, "threads"),
        "isolation": (harness.isolation_matrix, "threads"),
        "ablation": (harness.ablation_coordinators, "oracle RPC delay (ms)"),
    }
    names = list(runners) if args.name == "all" else [args.name]
    for name in names:
        runner, x_label = runners[name]
        result = runner(quick=not args.full)
        sys.stdout.write(render_experiment(result, x_label=x_label))
        sys.stdout.write("\n")
    return 0


def _sim(args: argparse.Namespace) -> int:
    from ..sim.campaign import SIM_BINDINGS, run_campaign

    if args.seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {args.seeds}")
    overrides: dict[str, str] = {}
    for pair in args.property:
        key, separator, value = pair.partition("=")
        if not separator:
            raise SystemExit(f"bad -p argument {pair!r}: expected KEY=VALUE")
        overrides[key.strip()] = value.strip()
    bindings = tuple(dict.fromkeys(args.db)) if args.db else SIM_BINDINGS
    schedules = tuple(dict.fromkeys(args.schedule)) if args.schedule else ("baseline",)
    seeds = range(args.start_seed, args.start_seed + args.seeds)

    result = run_campaign(
        seeds,
        bindings=bindings,
        schedules=schedules,
        properties=overrides or None,
        out_dir=args.out,
        trace=not args.no_trace,
        on_result=lambda run: print(run.summary_line(), file=sys.stderr),
    )
    print(result.summary())
    for artifact in result.artifacts:
        print(f"violation trace: {artifact}")
    # Raw-binding violations are the campaign's *findings* (expected: that
    # path has no transactions to protect it).  A transactional-binding
    # violation is a consistency bug and fails the command.
    txn_violations = [run for run in result.by_binding("txn") if run.violation]
    if txn_violations:
        seeds_hit = ", ".join(str(run.seed) for run in txn_violations)
        print(
            f"error: transactional binding violated on seed(s) {seeds_hit}",
            file=sys.stderr,
        )
        return 1
    return 0


def _synth(args: argparse.Namespace) -> int:
    from ..synth import SCENARIOS, load_synth_spec, run_synth_campaign, scenario_names

    if args.list:
        for name in scenario_names():
            print(f"{name:<18} {SCENARIOS[name].description}")
        return 0
    if args.seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {args.seeds}")
    sources = list(args.scenario or []) + list(args.spec or [])
    if not sources:
        sources = ["steady"]
    specs = [load_synth_spec(source) for source in dict.fromkeys(sources)]
    if args.duration is not None:
        specs = [spec.with_overrides(duration_s=args.duration) for spec in specs]
    bindings = tuple(dict.fromkeys(args.db)) if args.db else None
    seeds = range(args.start_seed, args.start_seed + args.seeds)

    result = run_synth_campaign(
        specs,
        seeds,
        bindings=bindings,
        out_dir=args.out,
        on_result=lambda run: print(run.summary_line(), file=sys.stderr),
    )
    print(result.summary())
    for artifact in result.artifacts:
        print(f"violation trace: {artifact}")
    # Unlike ``sim``, every synthesis assertion is expected to hold on
    # both bindings (the engine is serial, so even raw stays consistent):
    # any violation fails the command.
    if result.violations:
        for run in result.violations:
            for outcome in run.failed_assertions():
                print(
                    f"error: {run.scenario}/{run.binding} seed {run.seed}: "
                    f"{outcome.name}: {outcome.detail}",
                    file=sys.stderr,
                )
        return 1
    return 0


def _crash(args: argparse.Namespace) -> int:
    from ..recovery.campaign import run_crash_campaign

    if args.seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {args.seeds}")
    overrides: dict[str, str] = {}
    for pair in args.property:
        key, separator, value = pair.partition("=")
        if not separator:
            raise SystemExit(f"bad -p argument {pair!r}: expected KEY=VALUE")
        overrides[key.strip()] = value.strip()
    bindings = tuple(dict.fromkeys(args.db)) if args.db else ("raw", "txn")
    schedules = (
        tuple(dict.fromkeys(args.schedule))
        if args.schedule
        else ("prewrite", "primary-commit", "mid-secondary", "worker-kill")
    )
    seeds = range(args.start_seed, args.start_seed + args.seeds)

    result = run_crash_campaign(
        seeds,
        bindings=bindings,
        schedules=schedules,
        properties=overrides or None,
        out_dir=args.out,
        trace=not args.no_trace,
        on_result=lambda run: print(run.summary_line(), file=sys.stderr),
    )
    print(result.summary())
    for artifact in result.artifacts:
        print(f"violation trace: {artifact}")
    # The raw binding leaking money when a client dies mid-transfer is the
    # campaign's expected baseline.  A *transactional* binding failing
    # post-recovery validation means the scavenger broke its promise — that
    # fails the command.
    txn_violations = result.transactional_violations
    if txn_violations:
        seeds_hit = ", ".join(
            f"{run.binding}/{run.schedule}/{run.seed}" for run in txn_violations
        )
        print(
            f"error: post-recovery violation on {seeds_hit}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cluster(args: argparse.Namespace) -> int:
    from ..cluster.campaign import run_cluster_campaign

    if args.seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {args.seeds}")
    overrides: dict[str, str] = {}
    for pair in args.property:
        key, separator, value = pair.partition("=")
        if not separator:
            raise SystemExit(f"bad -p argument {pair!r}: expected KEY=VALUE")
        overrides[key.strip()] = value.strip()
    bindings = tuple(dict.fromkeys(args.db)) if args.db else ("raw", "txn")
    shard_counts = tuple(dict.fromkeys(args.shards)) if args.shards else (4,)
    if any(count < 1 for count in shard_counts):
        raise SystemExit(f"--shards must be >= 1, got {shard_counts}")
    seeds = range(args.start_seed, args.start_seed + args.seeds)

    result = run_cluster_campaign(
        seeds,
        bindings=bindings,
        shard_counts=shard_counts,
        properties=overrides or None,
        kill=not args.no_kill,
        out_dir=args.out,
        on_result=lambda run: print(run.summary_line(), file=sys.stderr),
    )
    print(result.summary())
    for artifact in result.artifacts:
        print(f"violation artifact: {artifact}")
    # Same exit-code rule as `ycsbt crash`: the raw binding leaking money
    # across a dead shard is the expected baseline; a transactional
    # post-recovery violation means 2PC recovery broke its promise.
    txn_violations = result.transactional_violations
    if txn_violations:
        seeds_hit = ", ".join(
            f"{run.binding}/shards{run.shard_count}/{run.seed}"
            for run in txn_violations
        )
        print(
            f"error: post-recovery violation on {seeds_hit}",
            file=sys.stderr,
        )
        return 1
    return 0


def _replicated_cluster(args: argparse.Namespace) -> int:
    from ..cluster.replicated_campaign import run_replicated_campaign

    if args.seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {args.seeds}")
    if args.followers < 1:
        raise SystemExit(f"--followers must be >= 1, got {args.followers}")
    overrides: dict[str, str] = {}
    for pair in args.property:
        key, separator, value = pair.partition("=")
        if not separator:
            raise SystemExit(f"bad -p argument {pair!r}: expected KEY=VALUE")
        overrides[key.strip()] = value.strip()
    bindings = tuple(dict.fromkeys(args.db)) if args.db else ("raw", "txn")
    shard_counts = tuple(dict.fromkeys(args.shards)) if args.shards else (2,)
    if any(count < 1 for count in shard_counts):
        raise SystemExit(f"--shards must be >= 1, got {shard_counts}")
    seeds = range(args.start_seed, args.start_seed + args.seeds)

    result = run_replicated_campaign(
        seeds,
        bindings=bindings,
        shard_counts=shard_counts,
        follower_count=args.followers,
        level=args.level,
        properties=overrides or None,
        kill=not args.no_kill,
        out_dir=args.out,
        on_result=lambda run: print(run.summary_line(), file=sys.stderr),
    )
    print(result.summary())
    for artifact in result.artifacts:
        print(f"violation artifact: {artifact}")
    # Same exit-code rule as `ycsbt cluster`: the raw binding leaking
    # money across a leaderless shard is the expected baseline; a
    # transactional post-recovery violation means 2PC + failover broke
    # its promise.
    txn_violations = result.transactional_violations
    if txn_violations:
        seeds_hit = ", ".join(
            f"{run.binding}/shards{run.shard_count}/{run.seed}"
            for run in txn_violations
        )
        print(
            f"error: post-recovery violation on {seeds_hit}",
            file=sys.stderr,
        )
        return 1
    return 0


def _replication(args: argparse.Namespace) -> int:
    from ..replication.campaign import REPLICATION_LEVELS, run_replication_campaign

    if args.seeds < 1:
        raise SystemExit(f"--seeds must be >= 1, got {args.seeds}")
    if args.followers < 1:
        raise SystemExit(f"--followers must be >= 1, got {args.followers}")
    overrides: dict[str, str] = {}
    for pair in args.property:
        key, separator, value = pair.partition("=")
        if not separator:
            raise SystemExit(f"bad -p argument {pair!r}: expected KEY=VALUE")
        overrides[key.strip()] = value.strip()
    levels = tuple(dict.fromkeys(args.level)) if args.level else REPLICATION_LEVELS
    seeds = range(args.start_seed, args.start_seed + args.seeds)

    result = run_replication_campaign(
        seeds,
        levels=levels,
        follower_count=args.followers,
        properties=overrides or None,
        kill=not args.no_kill,
        out_dir=args.out,
        on_result=lambda run: print(run.summary_line(), file=sys.stderr),
    )
    print(result.summary())
    for artifact in result.artifacts:
        print(f"violation artifact: {artifact}")
    # Same exit-code shape as `ycsbt cluster`: bounded staleness leaking
    # money through legally stale read-modify-writes is the expected
    # baseline; a violation at strong or read_your_writes (or a broken
    # log-prefix invariant at any level) fails the command.
    gated = result.gated_violations
    if gated:
        seeds_hit = ", ".join(f"{run.level}/{run.seed}" for run in gated)
        print(
            f"error: post-failover violation on {seeds_hit}",
            file=sys.stderr,
        )
        return 1
    return 0


def _exp(args: argparse.Namespace) -> int:
    from ..experiments import SpecValidationError

    try:
        if args.exp_command == "run":
            return _exp_run(args)
        if args.exp_command == "diff":
            return _exp_diff(args)
        if args.exp_command == "list":
            return _exp_list(args)
    except SpecValidationError as exc:
        raise SystemExit(f"spec error: {exc}") from None
    raise AssertionError(f"unhandled exp command {args.exp_command!r}")


def _exp_run(args: argparse.Namespace) -> int:
    from ..experiments import (
        load_spec,
        render_aggregate_text,
        render_bench_json,
        run_spec,
        write_bench,
    )

    if args.reps is not None and args.reps < 1:
        raise SystemExit(f"--reps must be >= 1, got {args.reps}")
    spec = load_spec(args.spec).with_overrides(
        repetitions=args.reps,
        seed=args.seed,
        quick=False if args.full else None,
    )

    def progress(index: int, seed: int, result) -> None:
        print(
            f"[exp] {spec.name} repetition {index + 1}/{spec.repetitions} "
            f"(seed {seed}) done",
            file=sys.stderr,
        )

    aggregate = run_spec(spec, on_repetition=progress)
    if args.json:
        sys.stdout.write(render_bench_json(aggregate) + "\n")
    else:
        sys.stdout.write(render_aggregate_text(aggregate))
    if args.out:
        path = write_bench(aggregate, args.out)
        print(f"[exp] wrote {path}", file=sys.stderr)
    return 0


def _exp_diff(args: argparse.Namespace) -> int:
    from ..experiments import compare_views, load_bench

    try:
        old = load_bench(args.old)
        new = load_bench(args.new)
        diff = compare_views(
            old,
            new,
            min_effect=args.min_effect,
            legacy_threshold=args.legacy_threshold,
        )
    except ValueError as exc:
        raise SystemExit(f"diff error: {exc}") from None
    if args.json:
        sys.stdout.write(json.dumps(diff.to_dict(), indent=2, sort_keys=True) + "\n")
    else:
        sys.stdout.write(diff.render())
    return 0 if diff.passed else 1


def _exp_list(args: argparse.Namespace) -> int:
    from ..experiments import BUILTIN_SPECS, RUNNERS

    print("built-in specs:")
    for name, spec in sorted(BUILTIN_SPECS.items()):
        deterministic = " [deterministic]" if spec.deterministic else ""
        print(
            f"  {name:<18} runner={spec.runner:<12} reps={spec.repetitions} "
            f"seed={spec.seed}{deterministic}"
        )
        if spec.description:
            print(f"                     {spec.description}")
    print("runners:")
    for name, info in sorted(RUNNERS.items()):
        print(f"  {name:<18} engine={info.engine:<9} {info.description}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("load", "run", "bench"):
        return _run_phase(args, args.command)
    if args.command == "serve":
        return _serve(args)
    if args.command == "coordinate":
        return _coordinate(args)
    if args.command == "experiment":
        return _experiment(args)
    if args.command == "sim":
        return _sim(args)
    if args.command == "synth":
        return _synth(args)
    if args.command == "crash":
        return _crash(args)
    if args.command == "cluster":
        return _cluster(args)
    if args.command == "replicated-cluster":
        return _replicated_cluster(args)
    if args.command == "replication":
        return _replication(args)
    if args.command == "exp":
        return _exp(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
