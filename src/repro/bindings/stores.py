"""Concrete store-backed bindings: memory, LSM, simulated cloud, HTTP.

Each binding resolves its backing store through the shared registry so
that every per-thread DB instance constructed with the same namespace
talks to the same data — the in-process equivalent of YCSB clients all
pointing at one server.
"""

from __future__ import annotations

import random

from ..core.properties import Properties
from ..core.retry import RetryPolicy, RetryingStore
from ..http.batching import BatchingKVStore
from ..http.client import HttpKVStore
from ..kvstore.base import KeyValueStore
from ..kvstore.cloud import GCS_PROFILE, WAS_PROFILE, SimulatedCloudStore
from ..kvstore.faults import FaultInjectingStore, FaultProfile
from ..kvstore.latency import (
    ConstantLatency,
    LatencyInjectingStore,
    LatencyModel,
    LognormalLatency,
)
from ..kvstore.lsm import LSMKVStore
from ..kvstore.memory import InMemoryKVStore
from . import registry
from .kv import KVStoreDB

__all__ = ["MemoryDB", "LsmDB", "CloudDB", "RawHttpDB", "wrap_store"]


def _latency_model_from_properties(
    properties: Properties, prefix: str, rng: random.Random
) -> LatencyModel | None:
    median_ms = properties.get_float(f"latency.{prefix}_ms", 0.0)
    if median_ms <= 0:
        return None
    model = properties.get_str("latency.model", "constant").lower()
    if model == "constant":
        return ConstantLatency(median_ms / 1000.0)
    if model == "lognormal":
        sigma = properties.get_float("latency.sigma", 0.4)
        return LognormalLatency(median_ms / 1000.0, sigma, rng)
    raise ValueError(f"unknown latency.model {model!r} (use constant|lognormal)")


def wrap_store(store: KeyValueStore, properties: Properties) -> KeyValueStore:
    """Apply property-configured latency, fault-injection and retry wrappers.

    Runs inside the registry factory, so every per-thread DB instance of
    a namespace shares one wrapper chain (and its counters).  Order
    matters: latency is the store's service time, faults sit above it,
    and retries sit on top so the injected failures exercise the retry
    layer.

    Properties: the ``latency.*`` family — ``latency.read_ms`` /
    ``latency.write_ms`` [0 = off], ``latency.model`` [constant|lognormal],
    ``latency.sigma`` [0.4], ``latency.seed`` [0]; the ``fault.*`` family
    (see :meth:`~repro.kvstore.faults.FaultProfile.from_properties`) plus
    ``fault.seed`` [0]; and the ``retry.*`` family (see
    :meth:`~repro.core.retry.RetryPolicy.from_properties`).

    When a layer's own seed is unset but ``workload.seed`` is present,
    the layer seed is *derived* from it (the campaign fan-out offsets:
    fault +1, retry +2, latency +3), so one spec-level seed replays the
    whole stack — request generators and injection layers alike.
    """
    base_seed = properties.get("workload.seed")

    def _layer_seed(key: str, offset: int) -> int:
        value = properties.get(key)
        if value is not None:
            return int(value)
        if base_seed is not None:
            return int(base_seed) + offset
        return 0

    latency_rng = random.Random(_layer_seed("latency.seed", 3))
    read_latency = _latency_model_from_properties(properties, "read", latency_rng)
    write_latency = _latency_model_from_properties(properties, "write", latency_rng)
    if read_latency is not None or write_latency is not None:
        store = LatencyInjectingStore(
            store,
            read_latency=read_latency or ConstantLatency(0.0),
            write_latency=write_latency,
        )
    fault_profile = FaultProfile.from_properties(properties)
    if fault_profile is not None:
        store = FaultInjectingStore(
            store,
            profile=fault_profile,
            seed=_layer_seed("fault.seed", 1),
            token_bucket=getattr(store, "bucket", None),
        )
    retry_rng = None
    if properties.get("retry.seed") is None and base_seed is not None:
        retry_rng = random.Random(int(base_seed) + 2)
    retry_policy = RetryPolicy.from_properties(properties, rng=retry_rng)
    if retry_policy is not None:
        store = RetryingStore(store, retry_policy)
    return store


class MemoryDB(KVStoreDB):
    """Non-transactional in-memory store (the Figure 4/5 "raw" path).

    Properties: ``memory.namespace`` [default] — instances with the same
    namespace share one store.
    """

    def __init__(self, properties: Properties | None = None):
        properties = properties or Properties()
        namespace = properties.get_str("memory.namespace", "default")
        store = registry.get_or_create(
            "memory", namespace, lambda: wrap_store(InMemoryKVStore(), properties)
        )
        super().__init__(store, properties)


class LsmDB(KVStoreDB):
    """Durable log-structured store binding (the WiredTiger stand-in).

    Properties: ``lsm.dir`` (required), ``lsm.memtable_bytes`` [1 MiB],
    ``lsm.sync_writes`` [false].
    """

    def __init__(self, properties: Properties | None = None):
        properties = properties or Properties()
        directory = properties.require("lsm.dir")
        memtable_bytes = properties.get_int("lsm.memtable_bytes", 1 << 20)
        sync_writes = properties.get_bool("lsm.sync_writes", False)
        store = registry.get_or_create(
            "lsm",
            directory,
            lambda: wrap_store(
                LSMKVStore(directory, memtable_bytes=memtable_bytes, sync_writes=sync_writes),
                properties,
            ),
        )
        super().__init__(store, properties)


class CloudDB(KVStoreDB):
    """Simulated WAS/GCS container binding (the Figure 2 substrate).

    Properties: ``cloud.profile`` [was|gcs], ``cloud.scale`` [10 — i.e.
    10x faster than the real service so benchmarks finish quickly],
    ``cloud.namespace`` [default], ``cloud.seed`` [none].
    """

    def __init__(self, properties: Properties | None = None):
        properties = properties or Properties()
        profile_name = properties.get_str("cloud.profile", "was").lower()
        if profile_name == "was":
            profile = WAS_PROFILE
        elif profile_name == "gcs":
            profile = GCS_PROFILE
        else:
            raise ValueError(f"unknown cloud profile {profile_name!r} (use was|gcs)")
        scale = properties.get_float("cloud.scale", 10.0)
        seed = properties.get("cloud.seed")
        namespace = f"{properties.get_str('cloud.namespace', 'default')}:{profile_name}"
        store = registry.get_or_create(
            "cloud",
            namespace,
            lambda: wrap_store(
                SimulatedCloudStore(
                    profile,
                    scale=scale,
                    rng=random.Random(int(seed)) if seed is not None else None,
                ),
                properties,
            ),
        )
        super().__init__(store, properties)


class RawHttpDB(KVStoreDB):
    """HTTP key-value store binding (the paper's ``RawHttpDB``).

    Properties: ``http.host`` [127.0.0.1], ``http.port`` (required),
    ``http.timeout`` [10 s], ``http.pool_size`` [8] keep-alive
    connections shared by the instance's threads, ``http.batchsize``
    [1] — when > 1 the store is wrapped in a
    :class:`~repro.http.batching.BatchingKVStore`, coalescing bulk-load
    writes into ``POST /batch`` round trips of that many records.
    """

    def __init__(self, properties: Properties | None = None):
        properties = properties or Properties()
        host = properties.get_str("http.host", "127.0.0.1")
        port = properties.get_int("http.port", 0)
        if port == 0:
            raise ValueError("http.port is required for RawHttpDB")
        timeout_s = properties.get_float("http.timeout", 10.0)
        store: KeyValueStore = HttpKVStore(
            (host, port),
            timeout_s=timeout_s,
            retry_policy=RetryPolicy.from_properties(properties),
            pool_size=properties.get_int("http.pool_size", 8),
        )
        batch_size = properties.get_int("http.batchsize", 1)
        if batch_size > 1:
            store = BatchingKVStore(store, batch_size=batch_size)
        super().__init__(store, properties)

    def cleanup(self) -> None:
        self.store.close()
