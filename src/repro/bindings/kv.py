"""Generic DB binding over any :class:`~repro.kvstore.base.KeyValueStore`.

This is the **non-transactional** path: each DB operation is one (or two)
individually atomic store calls with *nothing* protecting sequences of
calls — precisely the regime of the paper's §V-C experiments, where the
CEW read-modify-write races between threads produce the measurable
anomalies of Figure 4.  ``start``/``commit``/``abort`` inherit the DB
base class no-ops.

Table handling: YCSB tables are mapped into the key space with a
``<table>:`` prefix; scans translate and strip the prefix so workloads see
their own keys.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core import status as st
from ..core.db import DB
from ..core.properties import Properties
from ..core.status import Status
from ..core.retry import collect_counters
from ..kvstore.base import (
    KeyValueStore,
    RateLimitExceeded,
    StoreError,
    TransientStoreError,
)

__all__ = ["KVStoreDB"]


class KVStoreDB(DB):
    """DB facade over a shared key-value store instance."""

    def __init__(self, store: KeyValueStore, properties: Properties | None = None):
        super().__init__(properties)
        self._store = store
        # Merge semantics for update: read the record and merge the given
        # fields (YCSB updates may carry a subset of fields).  Disable for
        # whole-record workloads to save the extra read.
        self._merge_updates = (
            self.properties.get_bool("kv.mergedupdates", True)
            if properties is not None
            else True
        )

    @property
    def store(self) -> KeyValueStore:
        return self._store

    def counters(self) -> dict[str, int]:
        """Retry/fault counters accumulated by the shared store wrappers."""
        return collect_counters(self._store)

    @staticmethod
    def _internal_key(table: str, key: str) -> str:
        return f"{table}:{key}" if table else key

    @staticmethod
    def _table_prefix(table: str) -> str:
        return f"{table}:" if table else ""

    @staticmethod
    def _select_fields(
        record: dict[str, str], fields: set[str] | None
    ) -> dict[str, str]:
        if fields is None:
            return record
        return {name: value for name, value in record.items() if name in fields}

    # -- operations --------------------------------------------------------------------

    def read(
        self, table: str, key: str, fields: set[str] | None = None
    ) -> tuple[Status, dict[str, str] | None]:
        try:
            record = self._store.get(self._internal_key(table, key))
        except RateLimitExceeded as exc:
            return st.RATE_LIMITED.with_message(str(exc)), None
        except TransientStoreError as exc:
            return st.UNAVAILABLE.with_message(str(exc)), None
        except StoreError as exc:
            return st.ERROR.with_message(str(exc)), None
        if record is None:
            return st.NOT_FOUND, None
        return st.OK, self._select_fields(record, fields)

    def scan(
        self,
        table: str,
        start_key: str,
        record_count: int,
        fields: set[str] | None = None,
    ) -> tuple[Status, list[tuple[str, dict[str, str]]]]:
        prefix = self._table_prefix(table)
        try:
            raw = self._store.scan(prefix + start_key, record_count)
        except RateLimitExceeded as exc:
            return st.RATE_LIMITED.with_message(str(exc)), []
        except TransientStoreError as exc:
            return st.UNAVAILABLE.with_message(str(exc)), []
        except StoreError as exc:
            return st.ERROR.with_message(str(exc)), []
        results: list[tuple[str, dict[str, str]]] = []
        for internal_key, record in raw:
            if prefix and not internal_key.startswith(prefix):
                break  # left the table's key range
            results.append((internal_key[len(prefix) :], self._select_fields(record, fields)))
        return st.OK, results

    def update(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        internal = self._internal_key(table, key)
        try:
            if self._merge_updates:
                current = self._store.get(internal)
                if current is None:
                    return st.NOT_FOUND
                merged = dict(current)
                merged.update(values)
                self._store.put(internal, merged)
            else:
                self._store.put(internal, values)
        except RateLimitExceeded as exc:
            return st.RATE_LIMITED.with_message(str(exc))
        except TransientStoreError as exc:
            return st.UNAVAILABLE.with_message(str(exc))
        except StoreError as exc:
            return st.ERROR.with_message(str(exc))
        return st.OK

    def insert(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        try:
            created = self._store.put_if_version(self._internal_key(table, key), values, None)
        except RateLimitExceeded as exc:
            return st.RATE_LIMITED.with_message(str(exc))
        except TransientStoreError as exc:
            return st.UNAVAILABLE.with_message(str(exc))
        except StoreError as exc:
            return st.ERROR.with_message(str(exc))
        if created is None:
            return st.PRECONDITION_FAILED.with_message(f"key {key!r} already exists")
        return st.OK

    def batch_insert(self, table: str, records) -> Status:
        internal = [(self._internal_key(table, key), values) for key, values in records]
        put_batch = getattr(self._store, "put_batch", None)
        if put_batch is None:
            return super().batch_insert(table, records)
        try:
            put_batch(internal)
        except RateLimitExceeded as exc:
            return st.RATE_LIMITED.with_message(str(exc))
        except TransientStoreError as exc:
            return st.UNAVAILABLE.with_message(str(exc))
        except StoreError as exc:
            return st.ERROR.with_message(str(exc))
        return st.OK

    def delete(self, table: str, key: str) -> Status:
        try:
            existed = self._store.delete(self._internal_key(table, key))
        except RateLimitExceeded as exc:
            return st.RATE_LIMITED.with_message(str(exc))
        except TransientStoreError as exc:
            return st.UNAVAILABLE.with_message(str(exc))
        except StoreError as exc:
            return st.ERROR.with_message(str(exc))
        return st.OK if existed else st.NOT_FOUND
