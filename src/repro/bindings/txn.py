"""Transactional DB binding: the YCSB+T operations over a transaction manager.

:class:`TxnDB` is the binding the paper's Tier-5 experiments compare
against the raw path.  ``start()`` begins a transaction on the calling
thread; subsequent CRUD/scan calls route through that transaction
(snapshot reads, buffered writes); ``commit()``/``abort()`` finish it.
A conflict at commit returns :data:`~repro.core.status.CONFLICT` rather
than raising, matching the DB interface's status-code contract.

Outside a transaction, each operation runs as its own single-op
transaction (auto-commit) — so a workload that never calls ``start()``
still gets transactional semantics, just per-operation.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

from ..core import status as st
from ..core.db import DB
from ..core.properties import Properties
from ..core.status import Status
from ..kvstore.base import StoreError
from ..txn.base import Transaction, TransactionManager, TxState
from ..txn.errors import TransactionError
from . import registry
from .stores import MemoryDB

__all__ = ["TxnDB", "HttpTxnDB"]


def _default_manager(properties: Properties) -> TransactionManager:
    """Build a client-coordinated manager over a shared memory store.

    Properties: ``txn.isolation`` [snapshot|serializable],
    ``txn.lock_lease_ms`` [1000], plus the ``fault.*``/``retry.*``
    families the backing store's :func:`~repro.bindings.stores.wrap_store`
    reads.  The same retry policy settings also govern the manager's own
    commit-path retries.
    """
    from ..core.retry import RetryPolicy
    from ..txn.manager import ClientTransactionManager

    namespace = properties.get_str("txn.namespace", "default")
    # The store keeps its fault layer but NOT a retry layer: the manager
    # does its own retries, and the commit-point insert must see the raw
    # torn-write error to apply the verify-then-decide rule.
    store_db = MemoryDB(
        properties.merged(
            {"memory.namespace": f"txn-{namespace}", "retry.max_attempts": "1"}
        )
    )
    return ClientTransactionManager(
        store_db.store,
        isolation=properties.get_str("txn.isolation", "snapshot"),
        lock_lease_ms=properties.get_float("txn.lock_lease_ms", 1000.0),
        retry_policy=RetryPolicy.from_properties(properties),
    )


class TxnDB(DB):
    """YCSB+T transactional binding over any :class:`TransactionManager`."""

    def __init__(
        self,
        properties: Properties | None = None,
        manager: TransactionManager | None = None,
    ):
        super().__init__(properties or Properties())
        if manager is None:
            namespace = self.properties.get_str("txn.namespace", "default")
            manager = registry.get_or_create(
                "txn-manager", namespace, lambda: _default_manager(self.properties)
            )
        self._manager = manager
        self._local = threading.local()

    @property
    def manager(self) -> TransactionManager:
        return self._manager

    def counters(self) -> dict[str, int]:
        """Manager commit-path counters plus the store chains' fault/retry
        counters (all shared across threads of a namespace)."""
        from ..core.retry import collect_counters

        counters: dict[str, int] = {}
        manager_counters = getattr(self._manager, "counters", None)
        if callable(manager_counters):
            counters.update(manager_counters())
        for name in self._manager.store_names():
            for counter, value in collect_counters(self._manager.store(name)).items():
                counters[counter] = counters.get(counter, 0) + value
        return counters

    # -- transaction plumbing -----------------------------------------------------------

    def _current(self) -> Transaction | None:
        return getattr(self._local, "txn", None)

    def start(self) -> Status:
        if self._current() is not None:
            return st.ERROR.with_message("transaction already open on this thread")
        try:
            self._local.txn = self._manager.begin()
        except TransactionError as exc:
            return st.ERROR.with_message(str(exc))
        return st.OK

    def commit(self) -> Status:
        txn = self._current()
        if txn is None:
            return st.OK  # nothing open: no-op, backward compatible
        self._local.txn = None
        try:
            txn.commit()
        except TransactionError as exc:
            return st.CONFLICT.with_message(str(exc))
        except StoreError as exc:
            return st.ERROR.with_message(str(exc))
        return st.OK

    def abort(self) -> Status:
        txn = self._current()
        if txn is None:
            return st.OK
        self._local.txn = None
        try:
            txn.abort()
        except (TransactionError, StoreError) as exc:
            return st.ERROR.with_message(str(exc))
        return st.OK

    def _run_op(self, body) -> Status:
        """Run ``body(txn)`` in the open transaction or as auto-commit."""
        txn = self._current()
        if txn is not None:
            try:
                body(txn)
            except TransactionError as exc:
                return st.CONFLICT.with_message(str(exc))
            except StoreError as exc:
                return st.ERROR.with_message(str(exc))
            return st.OK
        one_shot = self._manager.begin()
        try:
            body(one_shot)
            one_shot.commit()
        except TransactionError as exc:
            if one_shot.state is TxState.ACTIVE:
                one_shot.abort()
            return st.CONFLICT.with_message(str(exc))
        except StoreError as exc:
            if one_shot.state is TxState.ACTIVE:
                one_shot.abort()
            return st.ERROR.with_message(str(exc))
        return st.OK

    # -- operations ------------------------------------------------------------------------

    @staticmethod
    def _internal_key(table: str, key: str) -> str:
        return f"{table}:{key}" if table else key

    @staticmethod
    def _select_fields(record: dict[str, str], fields: set[str] | None) -> dict[str, str]:
        if fields is None:
            return record
        return {name: value for name, value in record.items() if name in fields}

    def read(
        self, table: str, key: str, fields: set[str] | None = None
    ) -> tuple[Status, dict[str, str] | None]:
        record: dict[str, str] | None = None

        def body(txn: Transaction) -> None:
            nonlocal record
            record = txn.read(self._internal_key(table, key))

        result = self._run_op(body)
        if not result.ok:
            return result, None
        if record is None:
            return st.NOT_FOUND, None
        return st.OK, self._select_fields(record, fields)

    def scan(
        self,
        table: str,
        start_key: str,
        record_count: int,
        fields: set[str] | None = None,
    ) -> tuple[Status, list[tuple[str, dict[str, str]]]]:
        prefix = f"{table}:" if table else ""
        rows: list[tuple[str, dict[str, str]]] = []

        def body(txn: Transaction) -> None:
            for internal_key, record in txn.scan(prefix + start_key, record_count):
                if prefix and not internal_key.startswith(prefix):
                    break
                rows.append((internal_key[len(prefix) :], self._select_fields(record, fields)))

        result = self._run_op(body)
        return (result, rows) if result.ok else (result, [])

    def update(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        internal = self._internal_key(table, key)

        def body(txn: Transaction) -> None:
            current = txn.read(internal)
            merged = dict(current) if current is not None else {}
            merged.update(values)
            txn.write(internal, merged)

        return self._run_op(body)

    def insert(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        internal = self._internal_key(table, key)

        def body(txn: Transaction) -> None:
            txn.write(internal, dict(values))

        return self._run_op(body)

    def batch_insert(self, table: str, records) -> Status:
        def body(txn: Transaction) -> None:
            for key, values in records:
                txn.write(self._internal_key(table, key), dict(values))

        return self._run_op(body)

    def delete(self, table: str, key: str) -> Status:
        internal = self._internal_key(table, key)

        def body(txn: Transaction) -> None:
            txn.delete(internal)

        return self._run_op(body)


def _http_manager(properties: Properties, host: str, port: int) -> TransactionManager:
    from ..core.retry import RetryPolicy
    from ..http.client import HttpKVStore
    from ..txn.manager import ClientTransactionManager

    store = HttpKVStore(
        (host, port),
        timeout_s=properties.get_float("http.timeout", 10.0),
        pool_size=properties.get_int("http.pool_size", 8),
    )
    return ClientTransactionManager(
        store,
        isolation=properties.get_str("txn.isolation", "snapshot"),
        lock_lease_ms=properties.get_float("txn.lock_lease_ms", 1000.0),
        retry_policy=RetryPolicy.from_properties(properties),
    )


class HttpTxnDB(TxnDB):
    """Transactional binding over a *remote* HTTP store (alias ``txn_http``).

    The client-coordinated transaction protocol needs nothing from the
    store beyond conditional writes, which :class:`~repro.http.client.
    HttpKVStore` carries over the wire — so transactions compose across
    real processes all pointing at one HTTP front end.  This is what lets
    the multi-process consistency stress test assert gamma = 0 under
    transactions where the raw binding races.

    Properties: ``http.host`` [127.0.0.1], ``http.port`` (required),
    ``http.timeout`` [10 s], ``http.pool_size`` [8], plus the ``txn.*``
    family of :class:`TxnDB`.
    """

    def __init__(self, properties: Properties | None = None):
        properties = properties or Properties()
        host = properties.get_str("http.host", "127.0.0.1")
        port = properties.get_int("http.port", 0)
        if port == 0:
            raise ValueError("http.port is required for HttpTxnDB")
        manager = registry.get_or_create(
            "txn-http-manager",
            f"{host}:{port}",
            lambda: _http_manager(properties, host, port),
        )
        super().__init__(properties, manager=manager)
