"""Shared backing-state registry for in-process DB bindings.

Real YCSB clients all connect to one external database server, so each
per-thread DB instance naturally sees the same data.  In-process bindings
get the same effect here: instances constructed with the same namespace
share one backing object (store, transaction manager, ...), looked up in
this registry.  Tests call :func:`reset` for isolation.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, TypeVar

T = TypeVar("T")

__all__ = ["get_or_create", "reset", "registered_keys"]

# Reentrant: a factory may itself resolve another registered object
# (e.g. the default TxnDB manager building its backing MemoryDB store).
_lock = threading.RLock()
_objects: dict[tuple[str, str], Any] = {}


def get_or_create(kind: str, namespace: str, factory: Callable[[], T]) -> T:
    """The shared object for ``(kind, namespace)``, created on first use."""
    key = (kind, namespace)
    with _lock:
        found = _objects.get(key)
        if found is None:
            found = factory()
            _objects[key] = found
        return found


def reset() -> None:
    """Drop every registered object (test isolation)."""
    with _lock:
        for obj in _objects.values():
            close = getattr(obj, "close", None)
            if callable(close):
                try:
                    close()
                except Exception:  # noqa: BLE001 - best-effort teardown
                    pass
        _objects.clear()


def registered_keys() -> list[tuple[str, str]]:
    with _lock:
        return list(_objects)
