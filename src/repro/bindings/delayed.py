"""Latency-injecting DB wrapper.

Wraps any DB binding and sleeps a sampled service time around every data
operation, turning an in-memory binding into a network-shaped one.  This
is what makes thread-scaling and contention experiments realistic on one
machine: threads genuinely block, the GIL is released, and interleavings
resembling the paper's client/server setup occur.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core.db import DB
from ..core.properties import Properties
from ..core.status import Status
from ..kvstore.latency import ConstantLatency, LatencyModel
from ..sim.clock import ambient_sleep

__all__ = ["DelayedDB"]


class DelayedDB(DB):
    """Adds read/write latency around an inner DB's operations.

    ``start``/``commit``/``abort`` are forwarded *without* added latency:
    the wrapper models the data path, and for a transactional inner DB
    the commit's own store traffic already pays the store's latency.
    """

    def __init__(
        self,
        inner: DB,
        read_latency: LatencyModel | float = 0.0,
        write_latency: LatencyModel | float | None = None,
        sleep=ambient_sleep,
        properties: Properties | None = None,
    ):
        super().__init__(properties or inner.properties)
        self._inner = inner
        self._read_latency = (
            ConstantLatency(read_latency) if isinstance(read_latency, (int, float)) else read_latency
        )
        if write_latency is None:
            self._write_latency = self._read_latency
        elif isinstance(write_latency, (int, float)):
            self._write_latency = ConstantLatency(write_latency)
        else:
            self._write_latency = write_latency
        self._sleep = sleep

    @property
    def inner(self) -> DB:
        return self._inner

    def _pay(self, model: LatencyModel) -> None:
        delay = model.sample()
        if delay > 0:
            self._sleep(delay)

    def init(self) -> None:
        self._inner.init()

    def cleanup(self) -> None:
        self._inner.cleanup()

    def read(self, table: str, key: str, fields: set[str] | None = None):
        self._pay(self._read_latency)
        return self._inner.read(table, key, fields)

    def scan(self, table: str, start_key: str, record_count: int, fields: set[str] | None = None):
        self._pay(self._read_latency)
        return self._inner.scan(table, start_key, record_count, fields)

    def update(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        self._pay(self._write_latency)
        return self._inner.update(table, key, values)

    def insert(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        self._pay(self._write_latency)
        return self._inner.insert(table, key, values)

    def delete(self, table: str, key: str) -> Status:
        self._pay(self._write_latency)
        return self._inner.delete(table, key)

    def start(self) -> Status:
        return self._inner.start()

    def commit(self) -> Status:
        return self._inner.commit()

    def abort(self) -> Status:
        return self._inner.abort()
