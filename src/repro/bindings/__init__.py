"""DB bindings: each maps the YCSB+T DB interface onto a substrate."""

from .basic import BasicDB
from .delayed import DelayedDB
from .kv import KVStoreDB
from .stores import CloudDB, LsmDB, MemoryDB, RawHttpDB
from .txn import HttpTxnDB, TxnDB

#: Short names accepted by ``create_db`` and the command line.
ALIASES = {
    "basic": BasicDB,
    "memory": MemoryDB,
    "lsm": LsmDB,
    "cloud": CloudDB,
    "raw_http": RawHttpDB,
    "rawhttp": RawHttpDB,
    "txn": TxnDB,
    "txn_http": HttpTxnDB,
    "txnhttp": HttpTxnDB,
}

__all__ = [
    "BasicDB",
    "DelayedDB",
    "KVStoreDB",
    "CloudDB",
    "LsmDB",
    "MemoryDB",
    "RawHttpDB",
    "TxnDB",
    "HttpTxnDB",
    "ALIASES",
]
