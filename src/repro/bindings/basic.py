"""BasicDB: a do-nothing binding for framework debugging.

Mirrors YCSB's ``BasicDB``: every operation succeeds without touching any
data, optionally echoing the call.  Useful for verifying workload logic
and measuring pure framework overhead.
"""

from __future__ import annotations

import sys
from collections.abc import Mapping

from ..core import status as st
from ..core.db import DB
from ..core.properties import Properties
from ..core.status import Status

__all__ = ["BasicDB"]


class BasicDB(DB):
    """Accepts every operation; data is neither stored nor returned.

    Properties: ``basicdb.verbose`` [false] — echo calls to stderr.
    """

    def __init__(self, properties: Properties | None = None):
        super().__init__(properties or Properties())
        self._verbose = self.properties.get_bool("basicdb.verbose", False)

    def _echo(self, message: str) -> None:
        if self._verbose:
            print(message, file=sys.stderr)

    def read(self, table, key, fields=None) -> tuple[Status, dict[str, str] | None]:
        self._echo(f"READ {table} {key} {sorted(fields) if fields else '<all>'}")
        return st.OK, {}

    def scan(self, table, start_key, record_count, fields=None):
        self._echo(f"SCAN {table} {start_key} {record_count}")
        return st.OK, []

    def update(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        self._echo(f"UPDATE {table} {key} {len(values)} fields")
        return st.OK

    def insert(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        self._echo(f"INSERT {table} {key} {len(values)} fields")
        return st.OK

    def delete(self, table: str, key: str) -> Status:
        self._echo(f"DELETE {table} {key}")
        return st.OK

    def start(self) -> Status:
        self._echo("START")
        return st.OK

    def commit(self) -> Status:
        self._echo("COMMIT")
        return st.OK

    def abort(self) -> Status:
        self._echo("ABORT")
        return st.OK
