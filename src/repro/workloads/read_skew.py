"""Read-skew (fractured read) targeting workload.

Records come in mirrored pairs ``(a_i, b_i)`` that are always written
*together* to the same value.  Writers bump a pair to its next value;
readers read both sides and report a **fractured read** whenever the two
sides disagree — a state no serial (or snapshot-isolated) execution can
expose, but one that raw two-get access sees routinely while a writer is
mid-flight.

The live fracture count is the anomaly measure:

    anomaly score = fractured reads / read operations

Any snapshot read (all three transaction managers) yields exactly zero;
the raw binding yields a rate that grows with write concurrency.  The
final validation also re-checks every pair for durable mismatches (which
raw *interleaved writers* can also produce: two writers can leave a pair
half-and-half).
"""

from __future__ import annotations

import threading
from typing import Any

from ..core.db import DB
from ..core.properties import Properties
from ..core.workload import ValidationResult, Workload, WorkloadError
from ..generators import CounterGenerator, DiscreteGenerator, UniformLongGenerator, locked_random
from ..measurements.registry import Measurements

__all__ = ["ReadSkewWorkload", "MIRROR_FIELD"]

MIRROR_FIELD = "v"


class ReadSkewWorkload(Workload):
    """Mirrored-pair writers and fracture-detecting readers.

    Properties: ``paircount`` [16], ``readproportion`` [0.8], ``seed``.
    """

    def init(self, properties: Properties, measurements: Measurements | None = None) -> None:
        super().init(properties, measurements)
        self.table = properties.get_str("table", "usertable")
        self.pair_count = properties.get_int(
            "paircount", properties.get_int("recordcount", 16)
        )
        if self.pair_count < 1:
            raise WorkloadError("paircount must be >= 1")
        read_proportion = properties.get_float("readproportion", 0.8)
        if not 0.0 <= read_proportion <= 1.0:
            raise WorkloadError("readproportion must be in [0, 1]")
        seed = properties.get("seed")
        rng = locked_random(int(seed) if seed is not None else None)
        self.pair_chooser = UniformLongGenerator(0, self.pair_count - 1, rng=rng)
        self.operation_chooser = DiscreteGenerator(rng=rng)
        if read_proportion > 0:
            self.operation_chooser.add_value(read_proportion, "READPAIR")
        if read_proportion < 1:
            self.operation_chooser.add_value(1.0 - read_proportion, "WRITEPAIR")
        self.key_sequence = CounterGenerator(0)
        self._lock = threading.Lock()
        self._reads = 0
        self._fractured_reads = 0
        self._operations = 0

    def keys_for(self, pair: int) -> tuple[str, str]:
        return (f"mirror{pair:05d}:a", f"mirror{pair:05d}:b")

    @property
    def fractured_reads(self) -> int:
        with self._lock:
            return self._fractured_reads

    # -- phases -------------------------------------------------------------------

    def do_insert(self, db: DB, thread_state: Any) -> bool:
        pair = self.key_sequence.next_value()
        if pair >= self.pair_count:
            return True
        key_a, key_b = self.keys_for(pair)
        return (
            db.insert(self.table, key_a, {MIRROR_FIELD: "0"}).ok
            and db.insert(self.table, key_b, {MIRROR_FIELD: "0"}).ok
        )

    def do_transaction(self, db: DB, thread_state: Any) -> str | None:
        with self._lock:
            self._operations += 1
        operation = self.operation_chooser.next_value()
        pair = self.pair_chooser.next_value()
        key_a, key_b = self.keys_for(pair)
        if operation == "READPAIR":
            result_a, fields_a = db.read(self.table, key_a, None)
            result_b, fields_b = db.read(self.table, key_b, None)
            if not result_a.ok or not result_b.ok or fields_a is None or fields_b is None:
                return None
            with self._lock:
                self._reads += 1
                if fields_a.get(MIRROR_FIELD) != fields_b.get(MIRROR_FIELD):
                    self._fractured_reads += 1
            return operation
        # WRITEPAIR: read one side, bump both to the next value together.
        result_a, fields_a = db.read(self.table, key_a, None)
        if not result_a.ok or fields_a is None:
            return None
        next_value = str(int(fields_a.get(MIRROR_FIELD, "0")) + 1)
        if not db.update(self.table, key_a, {MIRROR_FIELD: next_value}).ok:
            return None
        if not db.update(self.table, key_b, {MIRROR_FIELD: next_value}).ok:
            return None
        return operation

    # -- validation --------------------------------------------------------------------

    def validate(self, db: DB) -> ValidationResult:
        durable_mismatches = 0
        for pair in range(self.pair_count):
            key_a, key_b = self.keys_for(pair)
            ra, fa = db.read(self.table, key_a, None)
            rb, fb = db.read(self.table, key_b, None)
            if not ra.ok or not rb.ok or fa is None or fb is None:
                continue
            if fa.get(MIRROR_FIELD) != fb.get(MIRROR_FIELD):
                durable_mismatches += 1
        with self._lock:
            reads, fractured = self._reads, self._fractured_reads
        score = (fractured + durable_mismatches) / max(1, reads + self.pair_count)
        return ValidationResult(
            passed=fractured == 0 and durable_mismatches == 0,
            fields=[
                ("PAIR READS", reads),
                ("FRACTURED READS", fractured),
                ("DURABLE MISMATCHES", durable_mismatches),
                ("ANOMALY SCORE", score),
            ],
            anomaly_score=score,
        )
