"""Write-skew targeting workload (the on-call doctors constraint).

Records come in pairs ``(x_i, y_i)``, each starting at 1, with the
application constraint ``x_i + y_i >= 1`` ("at least one doctor on
call").  A transaction picks a pair, reads both sides, and — only if the
sum is at least 2 — zeroes one randomly chosen side.  Executed serially
this can never break the constraint.

Under **snapshot isolation** two transactions can concurrently read
``(1, 1)`` and zero *different* sides: their write sets are disjoint, so
first-committer-wins does not fire, both commit, and the pair ends at
``(0, 0)`` — the classic write-skew anomaly of Berenson et al. that the
paper's future work targets.  The serializable mode of
:class:`~repro.txn.manager.ClientTransactionManager` validates read sets
at commit and aborts one of the two.

Validation counts violated pairs:

    anomaly score = violated pairs / operations
"""

from __future__ import annotations

import threading
from typing import Any

from ..core.db import DB
from ..core.properties import Properties
from ..core.workload import ValidationResult, Workload, WorkloadError
from ..generators import CounterGenerator, UniformLongGenerator, locked_random
from ..measurements.registry import Measurements

__all__ = ["WriteSkewWorkload", "VALUE_FIELD"]

VALUE_FIELD = "oncall"


class WriteSkewWorkload(Workload):
    """Disjoint-write, overlapping-read transactions over constrained pairs.

    Properties: ``paircount`` [8], ``seed``.  ``recordcount`` is accepted
    as an alias for ``paircount`` for CLI symmetry.
    """

    def init(self, properties: Properties, measurements: Measurements | None = None) -> None:
        super().init(properties, measurements)
        self.table = properties.get_str("table", "usertable")
        self.pair_count = properties.get_int(
            "paircount", properties.get_int("recordcount", 8)
        )
        if self.pair_count < 1:
            raise WorkloadError("paircount must be >= 1")
        seed = properties.get("seed")
        rng = locked_random(int(seed) if seed is not None else None)
        self.pair_chooser = UniformLongGenerator(0, self.pair_count - 1, rng=rng)
        self.side_chooser = UniformLongGenerator(0, 1, rng=rng)
        self.key_sequence = CounterGenerator(0)
        self._lock = threading.Lock()
        self._operations = 0
        self._zeroing_commits = 0
        self._observed_violations = 0

    def keys_for(self, pair: int) -> tuple[str, str]:
        return (f"pair{pair:05d}:x", f"pair{pair:05d}:y")

    # -- phases -----------------------------------------------------------------

    def do_insert(self, db: DB, thread_state: Any) -> bool:
        pair = self.key_sequence.next_value()
        if pair >= self.pair_count:
            return True  # the load loop over-claims when threads > pairs
        key_x, key_y = self.keys_for(pair)
        return (
            db.insert(self.table, key_x, {VALUE_FIELD: "1"}).ok
            and db.insert(self.table, key_y, {VALUE_FIELD: "1"}).ok
        )

    def do_transaction(self, db: DB, thread_state: Any) -> str | None:
        with self._lock:
            self._operations += 1
        pair = self.pair_chooser.next_value()
        key_x, key_y = self.keys_for(pair)
        result_x, fields_x = db.read(self.table, key_x, None)
        result_y, fields_y = db.read(self.table, key_y, None)
        if not result_x.ok or not result_y.ok or fields_x is None or fields_y is None:
            return None
        x = int(fields_x.get(VALUE_FIELD, "0"))
        y = int(fields_y.get(VALUE_FIELD, "0"))
        if x + y < 1:
            # No serial execution can reach a sum below the floor: a
            # transaction observed the write-skew (or, on the raw path, a
            # torn) state live.  Count it before the RESET branch repairs
            # the pair, so self-healing cannot mask the anomaly.
            with self._lock:
                self._observed_violations += 1
        if x + y < 2:
            # Not enough slack to go off call: put the pair back on call
            # instead, keeping the workload live (and the constraint safe:
            # raising values can never violate a floor).
            target = key_x if x <= y else key_y
            return "RESET" if db.update(self.table, target, {VALUE_FIELD: "1"}).ok else None
        # Slack available: zero one side (disjoint-write decision made on
        # the *read* state of both sides — the write-skew shape).
        target = key_x if self.side_chooser.next_value() == 0 else key_y
        if not db.update(self.table, target, {VALUE_FIELD: "0"}).ok:
            return None
        return "GOOFFCALL"

    def finish_transaction(
        self, db: DB, thread_state: Any, operation: str | None, committed: bool
    ) -> None:
        if operation == "GOOFFCALL" and committed:
            with self._lock:
                self._zeroing_commits += 1

    # -- validation ---------------------------------------------------------------

    def validate(self, db: DB) -> ValidationResult:
        violations = 0
        checked = 0
        for pair in range(self.pair_count):
            key_x, key_y = self.keys_for(pair)
            rx, fx = db.read(self.table, key_x, None)
            ry, fy = db.read(self.table, key_y, None)
            if not rx.ok or not ry.ok or fx is None or fy is None:
                continue
            checked += 1
            if int(fx.get(VALUE_FIELD, "0")) + int(fy.get(VALUE_FIELD, "0")) < 1:
                violations += 1
        operations = max(1, self._operations)
        total_violations = violations + self._observed_violations
        score = total_violations / operations
        return ValidationResult(
            passed=total_violations == 0,
            fields=[
                ("PAIRS CHECKED", checked),
                ("FINAL CONSTRAINT VIOLATIONS", violations),
                ("OBSERVED CONSTRAINT VIOLATIONS", self._observed_violations),
                ("OFF-CALL COMMITS", self._zeroing_commits),
                ("ANOMALY SCORE", score),
            ],
            anomaly_score=score,
        )
