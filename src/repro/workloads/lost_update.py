"""Lost-update targeting workload.

Every transaction increments one counter record by one.  The workload
counts, atomically and client-side, how many increments *committed*; the
validation stage sums the stored counters.  Any deficit is a lost update:

    anomaly score = (committed increments - stored sum) / operations

Raw (non-transactional) access loses updates under concurrency; any of
the transaction managers prevents them (first-committer-wins on the
write-write conflict), so their score is provably zero.
"""

from __future__ import annotations

import threading
from typing import Any

from ..core.db import DB
from ..core.properties import Properties
from ..core.workload import ValidationResult, Workload, WorkloadError
from ..generators import CounterGenerator, ZipfianGenerator, locked_random
from ..measurements.registry import Measurements

__all__ = ["LostUpdateWorkload", "COUNTER_FIELD"]

COUNTER_FIELD = "count"


class _PendingIncrement:
    """Per-thread bookkeeping: the key whose increment awaits settlement."""

    __slots__ = ("rng", "pending_key")

    def __init__(self, rng):
        self.rng = rng
        self.pending_key = None


class LostUpdateWorkload(Workload):
    """Concurrent counter increments with exact loss accounting.

    Properties: ``recordcount`` [16] (contention is the point, so few
    records), ``requestdistribution`` [zipfian|uniform], ``seed``.
    """

    def init(self, properties: Properties, measurements: Measurements | None = None) -> None:
        super().init(properties, measurements)
        self.table = properties.get_str("table", "usertable")
        self.record_count = properties.get_int("recordcount", 16)
        if self.record_count < 1:
            raise WorkloadError("recordcount must be >= 1")
        seed = properties.get("seed")
        rng = locked_random(int(seed) if seed is not None else None)
        distribution = properties.get_str("requestdistribution", "zipfian").lower()
        if distribution == "zipfian":
            self.key_chooser = ZipfianGenerator(0, self.record_count - 1, rng=rng)
        elif distribution == "uniform":
            from ..generators import UniformLongGenerator

            self.key_chooser = UniformLongGenerator(0, self.record_count - 1, rng=rng)
        else:
            raise WorkloadError(f"unknown requestdistribution {distribution!r}")
        self.key_sequence = CounterGenerator(0)
        self._lock = threading.Lock()
        self._committed_increments = 0
        self._operations = 0

    @property
    def committed_increments(self) -> int:
        with self._lock:
            return self._committed_increments

    def _key(self, number: int) -> str:
        return f"counter{number:06d}"

    # -- phases ---------------------------------------------------------------

    def init_thread(self, thread_id: int, thread_count: int) -> _PendingIncrement:
        return _PendingIncrement(super().init_thread(thread_id, thread_count))

    def do_insert(self, db: DB, thread_state: Any) -> bool:
        number = self.key_sequence.next_value()
        return db.insert(self.table, self._key(number), {COUNTER_FIELD: "0"}).ok

    def do_transaction(self, db: DB, thread_state: Any) -> str | None:
        with self._lock:
            self._operations += 1
        key = self._key(self.key_chooser.next_value())
        result, fields = db.read(self.table, key, None)
        if not result.ok or fields is None:
            return None
        try:
            current = int(fields[COUNTER_FIELD])
        except (KeyError, ValueError):
            return None
        if not db.update(self.table, key, {COUNTER_FIELD: str(current + 1)}).ok:
            return None
        thread_state.pending_key = key
        return "INCREMENT"

    def finish_transaction(
        self, db: DB, thread_state: Any, operation: str | None, committed: bool
    ) -> None:
        if thread_state.pending_key is not None and committed:
            with self._lock:
                self._committed_increments += 1
        thread_state.pending_key = None

    # -- validation ------------------------------------------------------------

    def validate(self, db: DB) -> ValidationResult:
        stored = 0
        for number in range(self.record_count):
            result, fields = db.read(self.table, self._key(number), None)
            if result.ok and fields is not None:
                stored += int(fields.get(COUNTER_FIELD, "0"))
        committed = self.committed_increments
        lost = committed - stored
        operations = max(1, self._operations)
        score = abs(lost) / operations
        return ValidationResult(
            passed=lost == 0,
            fields=[
                ("COMMITTED INCREMENTS", committed),
                ("STORED SUM", stored),
                ("LOST UPDATES", lost),
                ("ANOMALY SCORE", score),
            ],
            anomaly_score=score,
        )
