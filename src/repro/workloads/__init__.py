"""Anomaly-targeting workloads — the paper's future work (§VII).

"We are working on additional workloads that will target specific
anomalies that are observed at various transaction isolation levels [26]
and develop measures to quantify these."  This package implements that
programme: one workload per classic anomaly from Berenson et al.'s
critique of the ANSI isolation levels, each with a validation stage that
quantifies exactly its anomaly:

* :class:`LostUpdateWorkload` — concurrent increments; lost updates show
  as a deficit between committed increments and the stored counters.
  Prevented by snapshot isolation's first-committer-wins rule.
* :class:`WriteSkewWorkload` — the two-doctors-on-call constraint;
  violations show as pairs whose sum drops below the floor.  *Permitted*
  by snapshot isolation, prevented by the serializable mode of
  :class:`~repro.txn.manager.ClientTransactionManager`.
* :class:`ReadSkewWorkload` — mirrored pairs written together; fractured
  (torn) reads are counted live by the readers.  Prevented by any
  snapshot read, present under raw access.

Together with the CEW they give the isolation-level matrix the
``isolation`` benchmark regenerates: which anomaly survives which level.
"""

from .lost_update import LostUpdateWorkload
from .read_skew import ReadSkewWorkload
from .write_skew import WriteSkewWorkload

__all__ = ["LostUpdateWorkload", "ReadSkewWorkload", "WriteSkewWorkload"]
