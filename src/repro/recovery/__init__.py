"""Crash-recovery subsystem: crashpoint injection and transaction scavenging.

The availability tier the benchmark was missing: §VII of the YCSB paper
leaves *availability under failures* as future work, and every transaction
protocol in :mod:`repro.txn` promises lease-based recovery of crashed
clients without any code path ever exercising one.  This package supplies

* :mod:`repro.recovery.crashpoints` — named, schedulable crashpoints
  threaded through the transaction managers, the LSM store's WAL and
  checkpoint paths, and the benchmark workers;
* :mod:`repro.recovery.scavenger` — an explicit recovery pass (plus an
  optional background thread) that finds expired locks and resolves each
  stranded transaction by its decided state: roll-forward if committed,
  roll-back otherwise;
* :mod:`repro.recovery.campaign` — the ``ycsbt crash`` seed sweep: crash a
  client mid-protocol in virtual time, scavenge, and re-validate the
  Closed Economy invariants, emitting replayable traces for violations.
"""

from .crashpoints import (
    CRASHPOINTS,
    CrashError,
    CrashInjector,
    crashpoint,
    get_crash_injector,
    set_crash_injector,
    use_crash_injector,
)


def __getattr__(name: str):
    # Lazy: the scavenger and the store wrapper import the txn/kvstore
    # layers, which themselves import .crashpoints through this package —
    # an eager import here would cycle.
    if name in ("ScavengeStats", "TxnScavenger"):
        from . import scavenger

        return getattr(scavenger, name)
    if name == "CrashpointStore":
        from .store import CrashpointStore

        return CrashpointStore
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CRASHPOINTS",
    "CrashError",
    "CrashInjector",
    "CrashpointStore",
    "crashpoint",
    "get_crash_injector",
    "set_crash_injector",
    "use_crash_injector",
    "ScavengeStats",
    "TxnScavenger",
]
