"""Transaction scavenger: find and resolve stranded transactions.

A client that dies mid-commit leaves locks (with staged intents) on its
write set, and — for the TSR-based manager — possibly a transaction-status
record.  The protocols already recover such state *lazily*: any reader
that trips over an expired lock resolves it.  But a benchmark measuring
recovery cannot wait for luck; the scavenger is the *eager* version of the
same rules, shared by both coordinators:

* scan every registered store for locked records;
* for each lock, delegate to the manager's own ``resolve_lock`` — it
  consults the commit point (TSR for :class:`~repro.txn.manager.
  ClientTransactionManager`, the primary record for :class:`~repro.txn.
  percolator.PercolatorLikeManager`), rolls **forward** if the owner
  committed, rolls **back** if it is decided-aborted or its lease expired,
  and leaves live undecided owners alone;
* optionally (TSR manager only) delete *orphan* TSRs — status records no
  surviving lock refers to.  Locks are always installed before the TSR is
  created, so once a transaction has zero locks anywhere nothing depends
  on its TSR.  This assumes no live client is mid-commit, which holds in
  post-crash recovery; the background thread therefore skips it.

Run :meth:`TxnScavenger.scavenge_once` explicitly after a (simulated)
crash, or :meth:`TxnScavenger.start` a wall-clock background thread the
way a real deployment would run a janitor.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields as dataclass_fields

from ..kvstore.base import StoreError
from ..txn.manager import TSR_PREFIX
from ..txn.record import TxRecord

__all__ = ["ScavengeStats", "TxnScavenger"]


@dataclass
class ScavengeStats:
    """What one scavenger pass saw and did."""

    #: records examined (TSRs included).
    scanned: int = 0
    #: records carrying a lock when examined.
    locks_seen: int = 0
    #: of those, locks whose lease had expired (presumed-dead owners).
    expired_locks: int = 0
    #: locks resolved into a committed version (owner had committed).
    rolled_forward: int = 0
    #: stranded transactions decided ``aborted`` on behalf of their owner.
    rolled_back: int = 0
    #: locks left alone because the owner is alive and undecided.
    pending_live: int = 0
    #: transaction-status records no lock refers to, deleted.
    orphan_tsrs_removed: int = 0

    def add(self, other: "ScavengeStats") -> None:
        for spec in dataclass_fields(self):
            setattr(self, spec.name, getattr(self, spec.name) + getattr(other, spec.name))


class TxnScavenger:
    """Eager recovery pass over a transaction manager's stores.

    Works with any manager exposing the shared recovery surface:
    ``store_names()`` / ``store(name)``, ``resolve_lock(store, key)``,
    ``stats`` (a :class:`~repro.txn.manager.TxnStats`) and ``_now_us()`` —
    i.e. both :class:`~repro.txn.manager.ClientTransactionManager` and
    :class:`~repro.txn.percolator.PercolatorLikeManager`.
    """

    def __init__(self, manager):
        self.manager = manager
        self.total = ScavengeStats()
        self.passes = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- one explicit pass -----------------------------------------------------

    def scavenge_once(self, remove_orphan_tsrs: bool = True) -> ScavengeStats:
        """Scan every store, resolve every resolvable lock; returns stats."""
        manager = self.manager
        stats = ScavengeStats()
        tsr_keys: list[tuple[str, str]] = []  # (store name, tsr key)
        live_txids: set[str] = set()
        for store_name in manager.store_names():
            store = manager.store(store_name)
            for key in list(store.keys()):
                stats.scanned += 1
                if key.startswith(TSR_PREFIX):
                    tsr_keys.append((store_name, key))
                    continue
                versioned = store.get_with_meta(key)
                if versioned is None:
                    continue
                try:
                    record = TxRecord.decode(versioned.value)
                except ValueError:
                    continue  # raw (non-transactional) key; not ours
                lock = record.lock
                if lock is None:
                    continue
                stats.locks_seen += 1
                if lock.lease_expiry_us < manager._now_us():
                    stats.expired_locks += 1
                before_forward = manager.stats.rollforwards
                before_back = manager.stats.rollbacks_of_peers
                try:
                    resolved = manager.resolve_lock(store, key)
                except StoreError:
                    resolved = False  # store flaked; next pass retries
                stats.rolled_forward += manager.stats.rollforwards - before_forward
                stats.rolled_back += manager.stats.rollbacks_of_peers - before_back
                if not resolved:
                    stats.pending_live += 1
                    live_txids.add(lock.txid)
        if remove_orphan_tsrs:
            self._remove_orphan_tsrs(tsr_keys, live_txids, stats)
        self.total.add(stats)
        self.passes += 1
        return stats

    def _remove_orphan_tsrs(
        self,
        tsr_keys: list[tuple[str, str]],
        live_txids: set[str],
        stats: ScavengeStats,
    ) -> None:
        """Delete status records whose transaction left no lock anywhere.

        Re-checks the stores *after* the resolution pass: resolution itself
        removes locks, so a TSR is orphaned exactly when no key — in any
        store — still carries its txid.
        """
        if not tsr_keys:
            return
        manager = self.manager
        remaining: set[str] = set(live_txids)
        for store_name in manager.store_names():
            store = manager.store(store_name)
            for key in list(store.keys()):
                if key.startswith(TSR_PREFIX):
                    continue
                versioned = store.get_with_meta(key)
                if versioned is None:
                    continue
                try:
                    record = TxRecord.decode(versioned.value)
                except ValueError:
                    continue
                if record.lock is not None:
                    remaining.add(record.lock.txid)
        for store_name, key in tsr_keys:
            txid = key[len(TSR_PREFIX) :]
            if txid in remaining:
                continue
            try:
                if manager.store(store_name).delete(key):
                    stats.orphan_tsrs_removed += 1
            except StoreError:
                pass  # next pass retries

    # -- background janitor ----------------------------------------------------

    def start(self, interval_s: float = 0.25) -> None:
        """Run :meth:`scavenge_once` every ``interval_s`` wall seconds.

        The background thread is the deployment shape (a janitor beside
        the clients); it skips orphan-TSR removal, which is only safe with
        no live committers.  Under the sim clock call ``scavenge_once``
        from the driver instead — a free-running wall thread has no place
        in virtual time.
        """
        if self._thread is not None:
            raise RuntimeError("scavenger already started")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval_s):
                self.scavenge_once(remove_orphan_tsrs=False)

        self._thread = threading.Thread(target=loop, name="txn-scavenger", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread (no-op when not running)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    # -- reporting -------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Cumulative counters in report-exporter naming."""
        return {
            "SCAVENGER-PASSES": self.passes,
            "SCAVENGER-LOCKS-SEEN": self.total.locks_seen,
            "SCAVENGER-EXPIRED-LOCKS": self.total.expired_locks,
            "SCAVENGER-ROLLED-FORWARD": self.total.rolled_forward,
            "SCAVENGER-ROLLED-BACK": self.total.rolled_back,
            "SCAVENGER-PENDING-LIVE": self.total.pending_live,
            "SCAVENGER-ORPHAN-TSRS-REMOVED": self.total.orphan_tsrs_removed,
        }
