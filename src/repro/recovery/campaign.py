"""Crash-recovery campaigns: kill a client mid-protocol, scavenge, re-validate.

The ``ycsbt crash`` counterpart to ``ycsbt sim``: each run executes the
Closed Economy Workload in virtual time with a *crash schedule* armed —
named crashpoints that kill a simulated client at a scheduled hit (between
prewrite and commit, right after the commit point, mid roll-forward, or
inside an arbitrary store write).  The dead client leaves stranded locks
and half-applied state behind; the campaign then

1. lets every lock lease expire (a virtual-clock sleep),
2. runs the :class:`~repro.recovery.scavenger.TxnScavenger` to roll each
   stranded transaction forward or back,
3. re-runs CEW validation on the recovered store.

The verdict: on the transactional bindings, **post-recovery validation
must pass** (total cash preserved, gamma == 0) for every seed and every
schedule — recovery restored a state some serial execution could have
produced.  The raw binding has no recovery story, so a client dying
between the debit and the credit of a transfer leaks money that stays
leaked; the campaign reports it but (like ``ycsbt sim``) only fails on
transactional violations.

Every run is a pure function of ``(binding, seed, schedule)``; violations
emit the same replayable JSON trace artifacts as the sim campaign.

Crash campaigns run the CEW without deletes: a delete's captured balance
lives in the *workload's* in-memory escrow until commit, so a client that
dies mid-delete takes that bookkeeping with it — real money lost to a
crashed *benchmark process*, not to the database.  With deletes off the
escrow stays empty and every operation's money lives in the store, where
recovery can reach it (see docs/RECOVERY.md).
"""

from __future__ import annotations

import json
import random
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..bindings.kv import KVStoreDB
from ..bindings.txn import TxnDB
from ..core.client import Client
from ..core.closed_economy import ClosedEconomyWorkload
from ..core.properties import Properties
from ..core.retry import RetryPolicy
from ..kvstore.memory import InMemoryKVStore
from ..measurements.exporters import JsonLinesExporter
from ..measurements.registry import Measurements
from ..sim.campaign import DEFAULT_SIM_PROPERTIES
from ..sim.clock import use_clock
from ..sim.scheduler import SimClock
from ..sim.trace import SimTrace, TracingDB
from ..txn.manager import ClientTransactionManager
from ..txn.percolator import PercolatorLikeManager
from .crashpoints import CrashInjector, use_crash_injector
from .scavenger import TxnScavenger
from .store import CrashpointStore

__all__ = [
    "DEFAULT_CRASH_PROPERTIES",
    "CRASH_SCHEDULES",
    "CRASH_BINDINGS",
    "CrashRunResult",
    "CrashCampaignResult",
    "seeded_schedule",
    "run_crash",
    "run_crash_campaign",
    "write_crash_violation_trace",
]

#: The sim campaign's CEW, minus deletes (see module docs) and minus
#: injected store faults — the crash *is* the fault under study, and an
#: uncluttered run keeps each violation trace attributable to it.
DEFAULT_CRASH_PROPERTIES: dict[str, str] = {
    **{
        key: value
        for key, value in DEFAULT_SIM_PROPERTIES.items()
        if not key.startswith("fault.")
    },
    "deleteproportion": "0",
    "readmodifywriteproportion": "0.40",
}

#: Named crash schedules: crashpoint -> 1-based hit numbers that kill the
#: client passing through.  Hits are global across the run's clients, and
#: under the sim scheduler the hit order is deterministic per seed.
CRASH_SCHEDULES: dict[str, dict[str, list[int]]] = {
    # Die with every lock installed but the commit undecided: recovery
    # must roll the transaction back.
    "prewrite": {"txn.after_prewrite": [3, 17]},
    # Die just past the commit point (TSR created / primary committed)
    # with no intent applied: recovery must roll forward.
    "primary-commit": {"txn.after_primary_commit": [2, 11]},
    # Die with the apply phase half done: recovery must finish it.
    "mid-secondary": {"txn.mid_secondary_commit": [2, 9]},
    # Die inside arbitrary store writes — mid read-modify-write on the
    # raw binding, mid lock-install on the transactional ones.
    "worker-kill": {"worker.mid_run": [40, 180, 400]},
    # All of the above in one run: several clients die at different
    # protocol stages.
    "multi": {
        "txn.after_prewrite": [2],
        "txn.after_primary_commit": [6],
        "txn.mid_secondary_commit": [10],
        "worker.mid_run": [300],
    },
}

CRASH_BINDINGS = ("raw", "txn", "pct")

#: Crashpoints a seeded schedule may draw (store-engine points are
#: exercised by the WAL/LSM property tests, not the CEW campaign).
_SEEDED_POINTS = (
    "txn.after_prewrite",
    "txn.after_primary_commit",
    "txn.mid_secondary_commit",
    "worker.mid_run",
)


def seeded_schedule(seed: int) -> dict[str, list[int]]:
    """A pseudo-random crash schedule, a pure function of ``seed``.

    Draws 1-3 crashpoints and a small hit index for each, so a seed sweep
    covers protocol stages no hand-written schedule thought of.
    """
    rng = random.Random(seed * 2654435761 % (2**31))
    points = rng.sample(_SEEDED_POINTS, rng.randint(1, 3))
    schedule: dict[str, list[int]] = {}
    for point in points:
        ceiling = 500 if point == "worker.mid_run" else 25
        count = rng.randint(1, 2)
        schedule[point] = sorted({rng.randint(1, ceiling) for _ in range(count)})
    return schedule


@dataclass
class CrashRunResult:
    """One crash → scavenge → re-validate cycle."""

    binding: str
    seed: int
    schedule: str
    crash_schedule: dict[str, list[int]]
    #: (crashpoint, hit number) pairs that actually fired, in order.
    fired: list[tuple[str, int]]
    #: clients killed mid-run (the CLIENT-CRASHES counter).
    crashes: int
    #: validation straight after the run, stranded state and all.
    pre_gamma: float
    pre_passed: bool
    #: validation after lease expiry + scavenger recovery — the verdict.
    post_gamma: float
    post_passed: bool
    post_validation_fields: list[tuple[str, str]]
    #: locks still unresolved after recovery (must be 0).
    residual_locks: int
    scavenger_counters: dict[str, int]
    operations: int
    failed_operations: int
    run_time_virtual_s: float
    wall_time_s: float
    events_processed: int
    counters: dict[str, int]
    report_jsonl: str
    properties: dict[str, str]
    trace: SimTrace | None = None
    errors: list[str] = field(default_factory=list)

    @property
    def transactional(self) -> bool:
        return self.binding != "raw"

    @property
    def violation(self) -> bool:
        """True when recovery failed to restore a consistent state."""
        return not self.post_passed or self.post_gamma > 0.0 or self.residual_locks > 0

    def summary_line(self) -> str:
        flag = "VIOLATION" if self.violation else "ok"
        return (
            f"{self.binding:<4} seed={self.seed:<6} schedule={self.schedule:<14} "
            f"crashes={self.crashes} pre-gamma={self.pre_gamma:.6f} "
            f"post-gamma={self.post_gamma:.6f} residual-locks={self.residual_locks} "
            f"wall={self.wall_time_s * 1000:.0f}ms {flag}"
        )


def _build_binding(binding: str, props: Properties, seed: int):
    """Returns ``(db_factory, manager)``; ``manager`` is None for raw.

    Every store write goes through a :class:`CrashpointStore`, so the
    ``worker.mid_run`` crashpoint can kill a client inside any operation
    sequence.  Mirrors the sim campaign's stacks otherwise.
    """
    from ..bindings.stores import wrap_store

    if binding == "raw":
        store = CrashpointStore(wrap_store(InMemoryKVStore(), props))
        return (lambda: KVStoreDB(store, props)), None
    if binding in ("txn", "pct"):
        store = CrashpointStore(
            wrap_store(InMemoryKVStore(), props.merged({"retry.max_attempts": "1"}))
        )
        if binding == "txn":
            manager = ClientTransactionManager(
                store,
                isolation=props.get_str("txn.isolation", "serializable"),
                lock_lease_ms=props.get_float("txn.lock_lease_ms", 1000.0),
                lock_wait_retries=props.get_int("txn.lock_wait_retries", 500),
                retry_policy=RetryPolicy.from_properties(props),
                client_id=f"crash{seed}",
            )
        else:
            manager = PercolatorLikeManager(
                store,
                lock_lease_ms=props.get_float("txn.lock_lease_ms", 1000.0),
                lock_wait_retries=props.get_int("txn.lock_wait_retries", 500),
            )
        return (lambda: TxnDB(props, manager=manager)), manager
    raise ValueError(f"unknown crash binding {binding!r}; use one of {CRASH_BINDINGS}")


def _crash_properties(base: Mapping[str, str] | None, seed: int) -> Properties:
    values = dict(DEFAULT_CRASH_PROPERTIES)
    if base:
        values.update({key: str(value) for key, value in base.items()})
    values["seed"] = str(seed)
    values["retry.seed"] = str(seed + 2)
    values["latency.seed"] = str(seed + 3)
    # The percolator baseline has no serializable mode.
    return Properties(values)


def resolve_schedule(schedule: str | Mapping[str, object], seed: int):
    """Normalise a schedule argument to ``(name, {point: [hits]})``."""
    if isinstance(schedule, str):
        if schedule == "seeded":
            return "seeded", seeded_schedule(seed)
        return schedule, {
            point: list(hits) for point, hits in CRASH_SCHEDULES[schedule].items()
        }
    return "custom", {
        point: [hits] if isinstance(hits, int) else list(hits)  # type: ignore[list-item]
        for point, hits in dict(schedule).items()
    }


def run_crash(
    binding: str = "txn",
    properties: Mapping[str, str] | None = None,
    seed: int = 0,
    schedule: str | Mapping[str, object] = "multi",
    trace: bool = True,
    max_trace_events: int = 200_000,
    lease_margin_s: float = 1.0,
) -> CrashRunResult:
    """One deterministic crash/recovery cycle; the campaign's unit of work.

    Load runs with the injector disarmed (a crash during load is a setup
    failure, not a recovery scenario); the schedule is armed for the run
    phase only.  Afterwards the virtual clock jumps past every lock lease
    and the scavenger recovers whatever the dead clients left behind.
    """
    schedule_name, schedule_values = resolve_schedule(schedule, seed)
    props = _crash_properties(properties, seed)
    if binding == "pct":
        props = props.merged({"txn.isolation": "snapshot"})
    clock = SimClock()
    sim_trace = SimTrace(clock.scheduler, max_trace_events) if trace else None
    injector = CrashInjector(schedule_values)
    wall_started = time.perf_counter()
    with use_clock(clock):
        base_factory, manager = _build_binding(binding, props, seed)
        if sim_trace is not None:
            trace_ref = sim_trace  # narrow for the closure

            def db_factory():
                return TracingDB(base_factory(), trace_ref)

        else:
            db_factory = base_factory
        workload = ClosedEconomyWorkload()
        measurements = Measurements.from_properties(props)
        workload.init(props, measurements)
        client = Client(workload, db_factory, props, measurements)
        if sim_trace is not None:
            sim_trace.phase = "load"
        load = client.load()
        if sim_trace is not None:
            sim_trace.phase = "run"
        with use_crash_injector(injector):
            run = client.run()

        # -- recovery: expire leases, scavenge, verify nothing is left ----
        lease_s = props.get_float("txn.lock_lease_ms", 1000.0) / 1000.0
        clock.sleep(lease_s + lease_margin_s)
        scavenger_counters: dict[str, int] = {}
        residual_locks = 0
        if manager is not None:
            scavenger = TxnScavenger(manager)
            scavenger.scavenge_once()
            verify = scavenger.scavenge_once(remove_orphan_tsrs=False)
            residual_locks = verify.locks_seen
            scavenger_counters = {
                name: value for name, value in scavenger.counters().items() if value
            }
            for name, value in scavenger_counters.items():
                run.measurements.set_counter(name, value)
        if injector.fired:
            run.measurements.set_counter("CRASHPOINTS-FIRED", len(injector.fired))

        # -- post-recovery validation: the campaign's verdict --------------
        post_db = base_factory()
        post_db.init()
        try:
            post_validation = workload.validate(post_db)
        finally:
            post_db.cleanup()
        workload.cleanup()
    wall_time_s = time.perf_counter() - wall_started
    counters = {name: int(value) for name, value in run.measurements.counters().items()}
    return CrashRunResult(
        binding=binding,
        seed=seed,
        schedule=schedule_name,
        crash_schedule={point: list(hits) for point, hits in schedule_values.items()},
        fired=list(injector.fired),
        crashes=counters.get("CLIENT-CRASHES", 0),
        pre_gamma=run.anomaly_score if run.anomaly_score is not None else 0.0,
        pre_passed=run.validation.passed if run.validation else False,
        post_gamma=post_validation.anomaly_score,
        post_passed=post_validation.passed,
        post_validation_fields=[
            (str(name), str(value)) for name, value in post_validation.fields
        ],
        residual_locks=residual_locks,
        scavenger_counters=scavenger_counters,
        operations=run.operations,
        failed_operations=run.failed_operations,
        run_time_virtual_s=run.run_time_ms / 1000.0,
        wall_time_s=wall_time_s,
        events_processed=clock.scheduler.events_processed,
        counters=counters,
        report_jsonl=JsonLinesExporter().export(run.report()),
        properties=props.as_dict(),
        trace=sim_trace,
        errors=list(run.errors) + list(load.errors),
    )


def write_crash_violation_trace(result: CrashRunResult, directory: str | Path) -> Path:
    """Write the replayable artifact for a run recovery failed to repair."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {
        "kind": "ycsbt-crash-violation",
        "binding": result.binding,
        "seed": result.seed,
        "schedule": result.schedule,
        "crash_schedule": result.crash_schedule,
        "crashpoints_fired": [list(pair) for pair in result.fired],
        "crashes": result.crashes,
        "pre_recovery": {"gamma": result.pre_gamma, "passed": result.pre_passed},
        "post_recovery": {
            "gamma": result.post_gamma,
            "passed": result.post_passed,
            "validation": [list(pair) for pair in result.post_validation_fields],
            "residual_locks": result.residual_locks,
        },
        "scavenger": result.scavenger_counters,
        "operations": result.operations,
        "failed_operations": result.failed_operations,
        "virtual_run_time_s": result.run_time_virtual_s,
        "events_processed": result.events_processed,
        "counters": result.counters,
        "properties": result.properties,
        "replay": {
            "command": (
                f"ycsbt crash --db {result.binding} --schedule {result.schedule} "
                f"--seeds 1 --start-seed {result.seed}"
            ),
        },
        "errors": result.errors,
    }
    if result.trace is not None:
        payload["trace"] = result.trace.to_payload()
    path = directory / (
        f"crash-violation-{result.binding}-{result.schedule}-seed{result.seed}.json"
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class CrashCampaignResult:
    """All runs of one crash campaign plus the violations it surfaced."""

    runs: list[CrashRunResult]
    artifacts: list[Path] = field(default_factory=list)

    @property
    def violations(self) -> list[CrashRunResult]:
        return [run for run in self.runs if run.violation]

    @property
    def transactional_violations(self) -> list[CrashRunResult]:
        """The failures that fail the campaign: recovery broke its promise."""
        return [run for run in self.runs if run.transactional and run.violation]

    def by_binding(self, binding: str) -> list[CrashRunResult]:
        return [run for run in self.runs if run.binding == binding]

    def summary(self) -> str:
        lines = []
        for binding in sorted({run.binding for run in self.runs}):
            runs = self.by_binding(binding)
            violations = [run for run in runs if run.violation]
            crashes = sum(run.crashes for run in runs)
            max_post = max((run.post_gamma for run in runs), default=0.0)
            wall = sum(run.wall_time_s for run in runs)
            lines.append(
                f"{binding}: {len(runs)} runs, {crashes} crashed clients, "
                f"{len(violations)} post-recovery violations, "
                f"max post-gamma {max_post:.6f}, {wall:.2f} wall s"
            )
        return "\n".join(lines)


def run_crash_campaign(
    seeds: Sequence[int],
    bindings: Sequence[str] = ("raw", "txn"),
    schedules: Sequence[str] = ("prewrite", "primary-commit", "mid-secondary"),
    properties: Mapping[str, str] | None = None,
    out_dir: str | Path | None = None,
    trace: bool = True,
    on_result=None,
) -> CrashCampaignResult:
    """Sweep seeds x crash schedules x bindings; artifacts for violations.

    Only *transactional* post-recovery violations should fail a CI job —
    the raw binding leaking money when a client dies mid-transfer is the
    expected baseline, not a bug (see the CLI's exit-code rule).
    """
    result = CrashCampaignResult(runs=[])
    for schedule in schedules:
        for binding in bindings:
            for seed in seeds:
                run = run_crash(
                    binding=binding,
                    properties=properties,
                    seed=seed,
                    schedule=schedule,
                    trace=trace,
                )
                result.runs.append(run)
                if run.violation and out_dir is not None:
                    result.artifacts.append(write_crash_violation_trace(run, out_dir))
                if on_result is not None:
                    on_result(run)
    return result
