"""Named, schedulable crashpoints.

A *crashpoint* is a place in the stack where a participant can die:
between prewrite and commit, with the commit record written but the
intents unapplied, halfway through a WAL append.  Production code calls
:func:`crashpoint` at those places; the call is a no-op unless a test or
campaign has installed a :class:`CrashInjector` with a schedule naming
that point.  When a scheduled hit count is reached the injector raises
:class:`CrashError` — a ``BaseException`` on purpose, so none of the
retry/fault handlers between the crash site and the client loop can
swallow it: the "process" is dead and nothing downstream of the raise
runs, exactly like a real crash.

The catalogue (``CRASHPOINTS``):

``txn.after_prewrite``
    every write-set lock is installed (with staged intent); the commit
    decision has not been made.  Recovery must roll the transaction back.
``txn.after_primary_commit``
    the commit point has been passed (TSR created / primary committed)
    but no intent has been applied.  Recovery must roll forward.
``txn.mid_secondary_commit``
    the commit point passed and *some* intents applied.  Recovery must
    finish the roll-forward.
``wal.mid_append``
    the WAL record is half on disk (a torn tail, no trailing newline).
    Replay must drop exactly that record.
``lsm.mid_checkpoint``
    the memtable flush wrote its segment but the WAL was not truncated.
    Recovery must lose no acknowledged write (replay is idempotent).
``worker.mid_run``
    a benchmark worker dies mid-run: a scale-out worker process exits, or
    an in-sim client thread dies inside a store write (mid read-modify-
    write for the raw binding, mid commit protocol for the transactional
    one).
``twopc.after_prepare``
    every participant voted yes (locks installed shard-side) but the
    coordinator died before reaching the commit point.  Recovery must
    abort: no TSR exists, so leases expire and peers roll back.
``twopc.after_decision_logged``
    the commit point passed (TSR created) and the decision is in the
    coordinator WAL, but no participant has applied.  Coordinator-WAL
    redo — or any peer reading the TSR — must roll forward.
``twopc.mid_participant_commit``
    a participant died halfway through applying its share of a committed
    transaction.  The committed TSR survives; scavenging the shard must
    finish the roll-forward.
``repl.mid_log_ship``
    the leader's log shipper died between chunks of one shipment: the
    follower holds a strict prefix of the batch.  Anti-entropy must
    finish the catch-up; no guarantee of any consistency level may break
    while the follower is behind.
``repl.mid_follower_apply``
    a follower died between applying records of one shipped batch: its
    store and log hold a strict prefix of the leader's log.  On rejoin,
    anti-entropy resumes from ``applied_seq``; idempotent re-application
    must converge.
``repl.leader_mid_prepare``
    a shard's *replica-set leader* died inside a 2PC prepare, with some
    of its locks installed (and replicated to whichever followers the
    shipper reached).  The coordinator sees a dead participant; after
    lease failover the new leader holds whatever lock prefix was
    shipped, and lease expiry must roll it back.
``repl.leader_mid_commit_apply``
    a shard's replica-set leader died with the commit *decided* (TSR
    present, decision in the coordinator WAL) but before applying any of
    its share.  Coordinator-WAL redo against the failed-over leader — or
    the scavenger reading the TSR — must finish the roll-forward.

Deterministic under simulation: hits are counted under a lock, and the
PR 4 scheduler runs one task at a time, so *which* operation dies is a
pure function of the seed and the schedule.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping
from contextlib import contextmanager

__all__ = [
    "CRASHPOINTS",
    "CrashError",
    "CrashInjector",
    "crashpoint",
    "get_crash_injector",
    "set_crash_injector",
    "use_crash_injector",
]

#: The crashpoint catalogue: every name production code may hit.
CRASHPOINTS = (
    "txn.after_prewrite",
    "txn.after_primary_commit",
    "txn.mid_secondary_commit",
    "wal.mid_append",
    "lsm.mid_checkpoint",
    "worker.mid_run",
    "twopc.after_prepare",
    "twopc.after_decision_logged",
    "twopc.mid_participant_commit",
    "repl.mid_log_ship",
    "repl.mid_follower_apply",
    "repl.leader_mid_prepare",
    "repl.leader_mid_commit_apply",
)


class CrashError(BaseException):
    """A scheduled crash fired: the simulated participant is dead.

    Subclasses ``BaseException`` (like ``KeyboardInterrupt``) so that the
    ``except StoreError`` / ``except TransactionError`` handlers along the
    commit path cannot catch it — a crashed client performs no cleanup,
    which is precisely the stranded state recovery must handle.
    """

    def __init__(self, point: str, hit: int):
        super().__init__(f"crashpoint {point!r} fired on hit {hit}")
        self.point = point
        self.hit = hit


class CrashInjector:
    """Counts crashpoint hits and fires per a schedule.

    Args:
        schedule: crashpoint name -> hit number(s) at which to fire (an
            ``int`` or an iterable of them, 1-based).  Each scheduled hit
            fires exactly once; hit counting continues afterwards so a
            later index on the same point can still fire (several clients
            can die over one run).

    Thread safety: hit counting is lock-protected.  Under the sim
    scheduler only one task runs at a time, so the sequence of hits — and
    therefore which task dies — is deterministic.
    """

    def __init__(self, schedule: Mapping[str, int | Iterable[int]]):
        self._pending: dict[str, set[int]] = {}
        for point, hits in schedule.items():
            if point not in CRASHPOINTS:
                raise ValueError(
                    f"unknown crashpoint {point!r}; catalogue: {CRASHPOINTS}"
                )
            indices = {hits} if isinstance(hits, int) else {int(h) for h in hits}
            if any(index < 1 for index in indices):
                raise ValueError(f"crashpoint hits are 1-based, got {sorted(indices)}")
            self._pending[point] = indices
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        #: (point, hit) pairs that fired, in firing order.
        self.fired: list[tuple[str, int]] = []

    def hit_counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._hits)

    def hit(self, point: str) -> None:
        """Count one pass through ``point``; raise if the schedule says so."""
        with self._lock:
            count = self._hits.get(point, 0) + 1
            self._hits[point] = count
            pending = self._pending.get(point)
            fire = pending is not None and count in pending
            if fire:
                pending.discard(count)
                self.fired.append((point, count))
        if fire:
            raise CrashError(point, count)


_active: CrashInjector | None = None


def get_crash_injector() -> CrashInjector | None:
    """The ambient injector, or None when no crash schedule is installed."""
    return _active


def set_crash_injector(injector: CrashInjector | None) -> CrashInjector | None:
    """Install ``injector`` process-wide; returns the previous one."""
    global _active
    previous = _active
    _active = injector
    return previous


@contextmanager
def use_crash_injector(injector: CrashInjector):
    """Run a block with ``injector`` installed, then restore."""
    previous = set_crash_injector(injector)
    try:
        yield injector
    finally:
        set_crash_injector(previous)


def crashpoint(point: str) -> None:
    """Hit ``point``: free when no injector is installed, else counted.

    Call-time dispatch (like the ambient clock) so instrumented modules
    pay one global read per crashpoint when no campaign is running.
    """
    injector = _active
    if injector is not None:
        injector.hit(point)
