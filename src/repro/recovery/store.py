"""Store wrapper hitting the ``worker.mid_run`` crashpoint on writes.

Separate from :mod:`repro.recovery.crashpoints` so that module stays free
of storage imports — the LSM engine itself calls crashpoints, and a
crashpoints -> kvstore -> lsm -> crashpoints cycle would follow.
"""

from __future__ import annotations

from ..kvstore.base import Fields, KeyValueStore, VersionedValue
from .crashpoints import crashpoint

__all__ = ["CrashpointStore"]


class CrashpointStore(KeyValueStore):
    """Store wrapper that hits ``worker.mid_run`` before every write.

    Used by the crash campaign to land a client death *inside* an
    operation sequence: for the raw binding that is between the debit and
    the credit of a read-modify-write; for the transactional binding it is
    inside the lock-install / commit-apply protocol.  Reads never crash —
    a read is where recovery happens, not where state is mutated.
    """

    def __init__(self, inner: KeyValueStore):
        self._inner = inner

    @property
    def inner(self) -> KeyValueStore:
        return self._inner

    # -- reads (pass-through) --------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        return self._inner.get_with_meta(key)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        return self._inner.scan(start_key, record_count)

    def keys(self):
        return self._inner.keys()

    def size(self) -> int:
        return self._inner.size()

    # -- writes (crashpoint-guarded) -------------------------------------------

    def put(self, key: str, value) -> int:
        crashpoint("worker.mid_run")
        return self._inner.put(key, value)

    def put_batch(self, items):
        crashpoint("worker.mid_run")
        batched = getattr(self._inner, "put_batch", None)
        if batched is not None:
            return batched(items)
        return [self._inner.put(key, value) for key, value in items]

    def put_if_version(self, key: str, value, expected_version):
        crashpoint("worker.mid_run")
        return self._inner.put_if_version(key, value, expected_version)

    def put_versioned(self, key, versioned) -> bool:
        crashpoint("worker.mid_run")
        return self._inner.put_versioned(key, versioned)

    def delete(self, key: str) -> bool:
        crashpoint("worker.mid_run")
        return self._inner.delete(key)

    def delete_if_version(self, key: str, expected_version: int):
        crashpoint("worker.mid_run")
        return self._inner.delete_if_version(key, expected_version)

    # -- lifecycle ---------------------------------------------------------------

    def clear(self) -> None:
        self._inner.clear()

    def close(self) -> None:
        self._inner.close()
