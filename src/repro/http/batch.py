"""Wire codec and executor for the pipelined ``POST /batch`` protocol.

One HTTP round trip carries a JSON array of operations; the server
executes them in order against its store and returns one result per
operation, preserving order.  Both sides of the protocol use this module:
the server executes decoded requests with :func:`execute_ops`, and the
client builds requests with the ``op_*`` constructors — so the two can
never drift apart on the wire format.

Request body::

    {"ops": [
        {"op": "get",       "key": "k"},
        {"op": "put",       "key": "k", "fields": {...}},
        {"op": "insert",    "key": "k", "fields": {...}},
        {"op": "cas",       "key": "k", "fields": {...}, "version": 3},
        {"op": "delete",    "key": "k"},
        {"op": "delete_if", "key": "k", "version": 3},
        {"op": "scan",      "start": "k", "count": 10}
    ]}

Response body (HTTP 200 whenever the envelope parsed)::

    {"results": [
        {"status": 200, "fields": {...}, "version": 3},   # get hit
        {"status": 200, "version": 4},                    # put / insert / cas
        {"status": 404},                                  # get/delete miss
        {"status": 412},                                  # failed precondition
        {"status": 204},                                  # delete success
        {"status": 200, "records": [["k", {...}], ...]},  # scan
        {"status": 400, "error": "..."}                   # malformed op
    ]}

Per-operation status codes mirror the single-op REST endpoints exactly,
so a batch of N operations is observationally equivalent to N sequential
requests (asserted byte-for-byte by the protocol property tests).
Failures are *partial*: a malformed or failing operation yields its error
result and the remaining operations still execute.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..kvstore.base import KeyValueStore, RateLimitExceeded, StoreError

__all__ = [
    "op_get",
    "op_put",
    "op_insert",
    "op_cas",
    "op_delete",
    "op_delete_if",
    "op_scan",
    "insert_ops",
    "put_ops",
    "execute_ops",
]

#: Operation kinds understood by the executor.
OP_KINDS = frozenset({"get", "put", "insert", "cas", "delete", "delete_if", "scan"})


# -- request constructors -----------------------------------------------------

def op_get(key: str) -> dict:
    return {"op": "get", "key": key}


def op_put(key: str, fields: Mapping[str, str]) -> dict:
    return {"op": "put", "key": key, "fields": dict(fields)}


def op_insert(key: str, fields: Mapping[str, str]) -> dict:
    """Insert-if-absent (the single-op ``If-None-Match: *`` PUT)."""
    return {"op": "insert", "key": key, "fields": dict(fields)}


def op_cas(key: str, fields: Mapping[str, str], version: int) -> dict:
    """Conditional update (the single-op ``If-Match`` PUT)."""
    return {"op": "cas", "key": key, "fields": dict(fields), "version": version}


def op_delete(key: str) -> dict:
    return {"op": "delete", "key": key}


def op_delete_if(key: str, version: int) -> dict:
    return {"op": "delete_if", "key": key, "version": version}


def op_scan(start: str, count: int) -> dict:
    return {"op": "scan", "start": start, "count": count}


def insert_ops(records: Sequence[tuple[str, Mapping[str, str]]]) -> list[dict]:
    """Insert-if-absent ops for a record list (the load-phase shape)."""
    return [op_insert(key, fields) for key, fields in records]


def put_ops(records: Sequence[tuple[str, Mapping[str, str]]]) -> list[dict]:
    """Unconditional-put ops for a record list (``put_batch`` semantics)."""
    return [op_put(key, fields) for key, fields in records]


# -- executor -----------------------------------------------------------------

def _check_fields(op: dict) -> dict[str, str] | None:
    fields = op.get("fields")
    if not isinstance(fields, dict):
        return None
    return fields


def _execute_one(store: KeyValueStore, op: object) -> dict:
    """Run one decoded operation; never raises for per-op problems."""
    if not isinstance(op, dict):
        return {"status": 400, "error": "operation must be a JSON object"}
    kind = op.get("op")
    if kind not in OP_KINDS:
        return {"status": 400, "error": f"unknown op {kind!r}"}
    if kind == "scan":
        start = op.get("start", "")
        count = op.get("count")
        if not isinstance(start, str) or not isinstance(count, int) or isinstance(count, bool):
            return {"status": 400, "error": "scan needs a string start and integer count"}
        return {"status": 200, "records": [[k, f] for k, f in store.scan(start, count)]}

    key = op.get("key")
    if not isinstance(key, str):
        return {"status": 400, "error": "key must be a string"}

    if kind == "get":
        found = store.get_with_meta(key)
        if found is None:
            return {"status": 404}
        return {"status": 200, "fields": found.value, "version": found.version}
    if kind == "put":
        fields = _check_fields(op)
        if fields is None:
            return {"status": 400, "error": "fields must be a JSON object"}
        return {"status": 200, "version": store.put(key, fields)}
    if kind == "insert":
        fields = _check_fields(op)
        if fields is None:
            return {"status": 400, "error": "fields must be a JSON object"}
        version = store.put_if_version(key, fields, None)
        if version is None:
            return {"status": 412}
        return {"status": 200, "version": version}
    if kind == "cas":
        fields = _check_fields(op)
        if fields is None:
            return {"status": 400, "error": "fields must be a JSON object"}
        expected = op.get("version")
        if not isinstance(expected, int) or isinstance(expected, bool):
            return {"status": 400, "error": "version must be an integer"}
        version = store.put_if_version(key, fields, expected)
        if version is None:
            return {"status": 412}
        return {"status": 200, "version": version}
    if kind == "delete":
        return {"status": 204} if store.delete(key) else {"status": 404}
    # delete_if
    expected = op.get("version")
    if not isinstance(expected, int) or isinstance(expected, bool):
        return {"status": 400, "error": "version must be an integer"}
    result = store.delete_if_version(key, expected)
    if result is None:
        return {"status": 412}
    return {"status": 204} if result else {"status": 404}


def execute_ops(store: KeyValueStore, ops: Sequence[object]) -> list[dict]:
    """Execute decoded operations in order; one result dict per op.

    Store-level failures stay *partial*: a throttled or failing operation
    reports 503/500 in its slot and the rest of the batch still runs —
    matching what N independent single-op requests would produce.
    """
    results: list[dict] = []
    for op in ops:
        try:
            results.append(_execute_one(store, op))
        except RateLimitExceeded as exc:
            results.append({"status": 503, "error": str(exc)})
        except StoreError as exc:
            results.append({"status": 500, "error": str(exc)})
    return results
