"""Threaded HTTP front end for any key-value store.

The paper's §V-C experiments ran "a WiredTiger key-value store augmented
with an HTTP interface that we implemented using the Boost ASIO library",
with server and client on the same machine.  This module is that front
end: a real TCP/HTTP server (``ThreadingHTTPServer``) exposing any
:class:`~repro.kvstore.base.KeyValueStore` over a small REST protocol, so
benchmark operations pay genuine network round trips and serialisation.

Protocol::

    GET    /kv/<key>                    -> 200 {fields}, ETag: <version> | 404
    PUT    /kv/<key>   {fields}         -> 200 {"version": v}
           If-Match: <version>          conditional update; 412 on mismatch
           If-None-Match: *             insert-if-absent;   412 if present
    DELETE /kv/<key>                    -> 204 | 404
           If-Match: <version>          conditional delete; 412 on mismatch
    GET    /scan?start=<key>&count=<n>  -> 200 {"records": [[key, fields], ...]}
    GET    /stats                       -> 200 {"size": n, "requests": {...}}
    GET    /health                      -> 200 {"status": "ok"}
    POST   /batch      {"ops": [...]}   -> 200 {"results": [...]}
    POST   /txn/<verb> {...}            -> 200 {...} (shard participants only)
    POST   /repl/<verb> {...}           -> 200 {...} (replication nodes only)

Keys are URL-path-encoded by the client; bodies are JSON.  The batch
endpoint executes a whole operation array in one round trip — its wire
format lives in :mod:`repro.http.batch`.  The server counts every request
it handles (total and per route) so tests and experiments can measure how
many round trips a client actually paid.

**Cluster extensions.**  A server may carry a two-phase-commit
*participant* (see :mod:`repro.cluster.participant`); the ``/txn/prepare``
/ ``commit`` / ``abort`` / ``expire`` verbs dispatch to it.  It may also
carry a *replicator* (a :class:`~repro.replication.node.ReplicationNode`);
the ``/repl/status`` / ``append`` / ``since`` / ``resync`` / ``promote``
/ ``demote`` verbs dispatch to its ``handle_repl`` method.  Servers also
support a *crashed* state (:meth:`KVStoreHTTPServer.mark_crashed`): the
port stays bound — exactly like a just-killed real process whose OS has
not released the address — but every connection is dropped without a
response, so clients observe transport errors, not clean HTTP failures.
A :class:`~repro.recovery.crashpoints.CrashError` fired inside a handler
(a scheduled participant death) flips the same flag: the "process" dies
mid-request and stays dead until :meth:`KVStoreHTTPServer.revive`.
"""

from __future__ import annotations

import json
import socket
import sys
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..kvstore.base import KeyValueStore, StoreError
from ..recovery.crashpoints import CrashError
from ..txn.errors import TransactionError
from .batch import execute_ops

__all__ = ["KVStoreHTTPServer"]


class _QuietThreadingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that doesn't scream when a client dies.

    A benchmark client killed mid-request (worker-death runs do this on
    purpose) resets its sockets; the stock server prints a full traceback
    per dropped connection.  Losing a peer is not a server error.

    It also tracks established connections so ``close_established`` can
    sever lingering keep-alives — the stock ``shutdown()`` only stops the
    accept loop, leaving idle handler threads parked on open sockets, so
    a "stopped" server would otherwise keep answering pooled clients.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._established_lock = threading.Lock()
        self._established: set[socket.socket] = set()

    def get_request(self):
        request, client_address = super().get_request()
        with self._established_lock:
            self._established.add(request)
        return request, client_address

    def shutdown_request(self, request) -> None:
        with self._established_lock:
            self._established.discard(request)
        super().shutdown_request(request)

    def close_established(self) -> None:
        """Force-close every live connection (a stop is a real bounce)."""
        with self._established_lock:
            lingering, self._established = self._established, set()
        for request in lingering:
            try:
                request.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            request.close()

    def handle_error(self, request, client_address) -> None:
        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionResetError, BrokenPipeError)):
            return
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to the server's store."""

    protocol_version = "HTTP/1.1"
    server_version = "ReproKV/1.0"
    # Responses are written as separate header/body sends; without this,
    # Nagle holds the body behind the client's delayed ACK (~40 ms per
    # request over loopback).
    disable_nagle_algorithm = True

    # The store is attached to the server object by KVStoreHTTPServer.
    @property
    def _store(self) -> KeyValueStore:
        return self.server.kv_store  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Benchmarks hammer the server; default stderr logging would drown it."""

    # -- helpers -------------------------------------------------------------

    def _dead(self) -> bool:
        """True when the server is in the crashed state: drop, don't answer.

        A crashed process sends nothing — closing the connection without a
        response makes the client's transport layer fail, which is what a
        kill looks like from the other end of a socket.
        """
        if getattr(self.server, "crashed", False):
            self.close_connection = True
            return True
        return False

    def _count_request(self, route: str) -> None:
        lock: threading.Lock = self.server.request_lock  # type: ignore[attr-defined]
        counts: dict[str, int] = self.server.request_counts  # type: ignore[attr-defined]
        with lock:
            counts[route] = counts.get(route, 0) + 1

    def _send_json(self, status: int, payload: object, etag: int | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", str(etag))
        self.end_headers()
        self.wfile.write(body)

    def _send_empty(self, status: int) -> None:
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _key_from_path(self, parsed: urllib.parse.ParseResult) -> str | None:
        if not parsed.path.startswith("/kv/"):
            return None
        return urllib.parse.unquote(parsed.path[len("/kv/") :])

    def _read_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length", "0"))
        if length == 0:
            return None
        try:
            return json.loads(self.rfile.read(length))
        except json.JSONDecodeError:
            return None

    # -- verbs ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self._dead():
            return
        parsed = urllib.parse.urlparse(self.path)
        if parsed.path == "/health":
            # Liveness probe: answers without touching the store, so a
            # wedged store cannot mask a live server (and vice versa a
            # dead server fails the connect, which is the real signal).
            self._count_request("health")
            self._send_json(200, {"status": "ok"})
            return
        if parsed.path == "/stats":
            self._count_request("stats")
            lock: threading.Lock = self.server.request_lock  # type: ignore[attr-defined]
            counts: dict[str, int] = self.server.request_counts  # type: ignore[attr-defined]
            with lock:
                requests = dict(counts)
            self._send_json(200, {"size": self._store.size(), "requests": requests})
            return
        if parsed.path == "/scan":
            self._count_request("scan")
            query = urllib.parse.parse_qs(parsed.query)
            start = query.get("start", [""])[0]
            try:
                count = int(query.get("count", ["10"])[0])
            except ValueError:
                self._send_json(400, {"error": "count must be an integer"})
                return
            records = self._store.scan(start, count)
            self._send_json(200, {"records": records})
            return
        self._count_request("kv")
        key = self._key_from_path(parsed)
        if key is None:
            self._send_json(404, {"error": "unknown path"})
            return
        versioned = self._store.get_with_meta(key)
        if versioned is None:
            self._send_json(404, {"error": "not found"})
            return
        self._send_json(200, versioned.value, etag=versioned.version)

    def do_POST(self) -> None:  # noqa: N802
        if self._dead():
            return
        parsed = urllib.parse.urlparse(self.path)
        if parsed.path.startswith("/txn/"):
            self._handle_txn(parsed.path[len("/txn/") :])
            return
        if parsed.path.startswith("/repl/"):
            self._handle_repl(parsed.path[len("/repl/") :])
            return
        if parsed.path != "/batch":
            self._send_json(404, {"error": "unknown path"})
            return
        self._count_request("batch")
        document = self._read_body()
        if document is None or not isinstance(document.get("ops"), list):
            self._send_json(400, {"error": "body must be a JSON object with an ops array"})
            return
        self._send_json(200, {"results": execute_ops(self._store, document["ops"])})

    def _handle_txn(self, verb: str) -> None:
        """Dispatch a two-phase-commit verb to the attached participant.

        A scheduled :class:`CrashError` inside the participant kills this
        "process": the server flips to crashed and the connection drops
        with no response — the coordinator sees a transport failure, never
        a vote, which is exactly the ambiguity 2PC recovery exists for.
        """
        self._count_request("txn")
        participant = getattr(self.server, "participant", None)
        if participant is None:
            self._send_json(404, {"error": "no transaction participant attached"})
            return
        document = self._read_body() or {}
        try:
            if verb == "prepare":
                result = participant.prepare(
                    document["txid"],
                    int(document["start_ts"]),
                    document["primary"],
                    document["writes"],
                )
            elif verb == "commit":
                result = participant.commit(
                    document["txid"],
                    int(document["commit_ts"]),
                    document.get("keys", []),
                )
            elif verb == "abort":
                result = participant.abort(document["txid"], document.get("keys", []))
            elif verb == "expire":
                result = participant.expire()
            else:
                self._send_json(404, {"error": f"unknown txn verb {verb!r}"})
                return
        except CrashError:
            self.server.crashed = True  # type: ignore[attr-defined]
            self.close_connection = True
            return
        except TransactionError as exc:
            self._send_json(409, {"error": str(exc)})
            return
        except (KeyError, TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"malformed txn request: {exc}"})
            return
        except StoreError as exc:
            # 500, not 503: a participant-side store failure must not be
            # blindly replayed by the client's throttle-retry layer — the
            # coordinator decides what a failed verb means.
            self._send_json(500, {"error": str(exc)})
            return
        self._send_json(200, result)

    def _handle_repl(self, verb: str) -> None:
        """Dispatch a replication verb to the attached replication node.

        Same death semantics as the 2PC verbs: a scheduled
        :class:`CrashError` inside the node (``repl.mid_follower_apply``)
        kills this "process" — the server flips to crashed and the
        connection drops with no response, so the shipper sees a
        transport failure and the node is left holding a strict prefix.
        """
        self._count_request("repl")
        replicator = getattr(self.server, "replicator", None)
        if replicator is None:
            self._send_json(404, {"error": "no replication node attached"})
            return
        document = self._read_body() or {}
        try:
            status, payload = replicator.handle_repl(verb, document)
        except CrashError:
            self.server.crashed = True  # type: ignore[attr-defined]
            self.close_connection = True
            return
        except (KeyError, TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"malformed repl request: {exc}"})
            return
        except StoreError as exc:
            self._send_json(500, {"error": str(exc)})
            return
        self._send_json(status, payload)

    def do_PUT(self) -> None:  # noqa: N802
        if self._dead():
            return
        parsed = urllib.parse.urlparse(self.path)
        self._count_request("kv")
        key = self._key_from_path(parsed)
        if key is None:
            self._send_json(404, {"error": "unknown path"})
            return
        fields = self._read_body()
        if fields is None or not isinstance(fields, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return
        if_match = self.headers.get("If-Match")
        if_none_match = self.headers.get("If-None-Match")
        if if_none_match == "*":
            version = self._store.put_if_version(key, fields, None)
        elif if_match is not None:
            try:
                expected = int(if_match)
            except ValueError:
                self._send_json(400, {"error": "If-Match must be an integer version"})
                return
            version = self._store.put_if_version(key, fields, expected)
        else:
            version = self._store.put(key, fields)
        if version is None:
            self._send_json(412, {"error": "precondition failed"})
            return
        self._send_json(200, {"version": version}, etag=version)

    def do_DELETE(self) -> None:  # noqa: N802
        if self._dead():
            return
        parsed = urllib.parse.urlparse(self.path)
        self._count_request("kv")
        key = self._key_from_path(parsed)
        if key is None:
            self._send_json(404, {"error": "unknown path"})
            return
        if_match = self.headers.get("If-Match")
        if if_match is not None:
            try:
                expected = int(if_match)
            except ValueError:
                self._send_json(400, {"error": "If-Match must be an integer version"})
                return
            result = self._store.delete_if_version(key, expected)
            if result is None:
                self._send_json(412, {"error": "precondition failed"})
                return
            if result is False:
                self._send_json(404, {"error": "not found"})
                return
            self._send_empty(204)
            return
        if self._store.delete(key):
            self._send_empty(204)
        else:
            self._send_json(404, {"error": "not found"})


class KVStoreHTTPServer:
    """Serves a :class:`KeyValueStore` over HTTP on a background thread.

    Usage::

        with KVStoreHTTPServer(store) as server:
            client = HttpKVStore(server.address)
            ...
    """

    def __init__(
        self,
        store: KeyValueStore,
        host: str = "127.0.0.1",
        port: int = 0,
        participant=None,
        replicator=None,
    ):
        self._server = _QuietThreadingHTTPServer((host, port), _Handler)
        self._server.kv_store = store  # type: ignore[attr-defined]
        self._server.request_lock = threading.Lock()  # type: ignore[attr-defined]
        self._server.request_counts = {}  # type: ignore[attr-defined]
        self._server.participant = participant  # type: ignore[attr-defined]
        self._server.replicator = replicator  # type: ignore[attr-defined]
        self._server.crashed = False  # type: ignore[attr-defined]
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def store(self) -> KeyValueStore:
        """The durable store behind this server (survives a crash)."""
        return self._server.kv_store  # type: ignore[attr-defined]

    @property
    def participant(self):
        """The attached 2PC participant, or None for a plain KV server."""
        return self._server.participant  # type: ignore[attr-defined]

    @property
    def replicator(self):
        """The attached replication node, or None for a plain KV server."""
        return self._server.replicator  # type: ignore[attr-defined]

    @property
    def crashed(self) -> bool:
        return self._server.crashed  # type: ignore[attr-defined]

    def mark_crashed(self) -> None:
        """Kill the "process" without releasing the port.

        Every live connection is severed without a response and every new
        request is dropped the same way, so clients see transport errors —
        the shape of a real crash.  The durable store object is untouched;
        volatile participant state (the prepared-transaction table) is the
        participant's to lose on :meth:`revive`.
        """
        self._server.crashed = True  # type: ignore[attr-defined]
        self._server.close_established()

    def revive(self, participant=None) -> None:
        """Bring a crashed server back, optionally with a fresh participant.

        Passing a participant models a process restart: the durable store
        carries over, the in-memory prepared table does not.
        """
        if participant is not None:
            self._server.participant = participant  # type: ignore[attr-defined]
        self._server.crashed = False  # type: ignore[attr-defined]

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound — port 0 picks a free one."""
        return self._server.server_address[0], self._server.server_address[1]

    @property
    def request_counts(self) -> dict[str, int]:
        """Requests handled so far, keyed by route (kv/scan/stats/batch)."""
        with self._server.request_lock:  # type: ignore[attr-defined]
            return dict(self._server.request_counts)  # type: ignore[attr-defined]

    @property
    def request_count(self) -> int:
        """Total requests handled so far, across every route."""
        return sum(self.request_counts.values())

    def start(self) -> "KVStoreHTTPServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="kv-http-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.close_established()
        self._thread.join(timeout=5)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "KVStoreHTTPServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
