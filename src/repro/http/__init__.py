"""HTTP transport: a REST front end and client for any key-value store."""

from .client import HttpKVStore
from .server import KVStoreHTTPServer

__all__ = ["HttpKVStore", "KVStoreHTTPServer"]
