"""Write-behind batching wrapper that coalesces bulk loads.

:class:`BatchingKVStore` sits in front of any :class:`~repro.kvstore.
base.KeyValueStore` and turns a stream of ``put_batch`` calls into
chunked group commits of ``batch_size`` records.  Over
:class:`~repro.http.client.HttpKVStore` each flush is one ``POST /batch``
round trip, which is what makes the load phase cheap enough to saturate a
rate-limited store instead of the network stack.

Consistency rules keep the wrapper contract-safe:

* only ``put_batch`` buffers; **every** other operation (including reads
  and single puts) flushes the buffer first, then delegates — so no
  operation can ever observe a store missing its own earlier writes;
* ``flush``/``close`` drain the buffer explicitly;
* deferred write errors surface on the call that triggers the flush
  (write-behind moves *when* an error raises, never whether it does).
"""

from __future__ import annotations

import threading
from collections.abc import Iterator, Mapping, Sequence

from ..kvstore.base import Fields, KeyValueStore, VersionedValue

__all__ = ["BatchingKVStore"]


class BatchingKVStore(KeyValueStore):
    """Buffers ``put_batch`` records and flushes them in fixed-size chunks."""

    def __init__(self, inner: KeyValueStore, batch_size: int = 64):
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self._inner = inner
        self._batch_size = batch_size
        self._lock = threading.Lock()
        self._pending: list[tuple[str, Fields]] = []
        #: flushes actually shipped to the inner store (observability).
        self.flush_count = 0

    @property
    def inner(self) -> KeyValueStore:
        return self._inner

    @property
    def batch_size(self) -> int:
        return self._batch_size

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- buffering ---------------------------------------------------------------------

    def _flush_chunks_locked(self, drain: bool) -> None:
        """Ship full chunks (and the remainder when ``drain``) to the inner store."""
        while len(self._pending) >= self._batch_size or (drain and self._pending):
            chunk = self._pending[: self._batch_size]
            del self._pending[: self._batch_size]
            self._write_chunk(chunk)
            self.flush_count += 1

    def _write_chunk(self, chunk: list[tuple[str, Fields]]) -> None:
        batched = getattr(self._inner, "put_batch", None)
        if callable(batched):
            batched(chunk)
            return
        for key, fields in chunk:
            self._inner.put(key, fields)

    def flush(self) -> None:
        """Drain the buffer to the inner store immediately."""
        with self._lock:
            self._flush_chunks_locked(drain=True)

    def put_batch(self, records: Sequence[tuple[str, Mapping[str, str]]]) -> list[int]:
        """Buffer records; full ``batch_size`` chunks ship immediately.

        Returns a placeholder version (0) per record — write-behind means
        the authoritative version is assigned at flush time.  Bulk-load
        callers ignore these; anything that needs a real version should
        use ``put``/``put_if_version``, which flush first.
        """
        with self._lock:
            self._pending.extend((key, dict(fields)) for key, fields in records)
            self._flush_chunks_locked(drain=False)
        return [0] * len(records)

    # -- delegated operations (flush first: read-your-writes) --------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        self.flush()
        return self._inner.get_with_meta(key)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        self.flush()
        return self._inner.scan(start_key, record_count)

    def keys(self) -> Iterator[str]:
        self.flush()
        return self._inner.keys()

    def size(self) -> int:
        self.flush()
        return self._inner.size()

    def put(self, key: str, value: Mapping[str, str]) -> int:
        self.flush()
        return self._inner.put(key, value)

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        self.flush()
        return self._inner.put_if_version(key, value, expected_version)

    def put_versioned(self, key, versioned) -> bool:
        self.flush()
        return self._inner.put_versioned(key, versioned)

    def delete(self, key: str) -> bool:
        self.flush()
        return self._inner.delete(key)

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        self.flush()
        return self._inner.delete_if_version(key, expected_version)

    def counters(self) -> dict[str, int]:
        inner_counters = getattr(self._inner, "counters", None)
        return dict(inner_counters()) if callable(inner_counters) else {}

    def close(self) -> None:
        self.flush()
        close = getattr(self._inner, "close", None)
        if callable(close):
            close()
