"""HTTP client for :class:`~repro.http.server.KVStoreHTTPServer`.

:class:`HttpKVStore` implements the full :class:`~repro.kvstore.base.
KeyValueStore` interface over the REST protocol, so anything that runs on
a local store — the raw bindings, the transaction managers — runs
unchanged across a real network hop.  Connections come from a bounded
LIFO pool shared by all threads (HTTP/1.1 keep-alive): a thread borrows a
connection per request and returns it, so socket count is capped by
``pool_size`` rather than growing one-per-thread.

Beyond the single-op REST verbs, :meth:`HttpKVStore.execute_batch` ships
an operation array through ``POST /batch`` in one round trip, and
:meth:`HttpKVStore.put_batch` bulk-writes a record list that way —
mirroring the group-commit ``put_batch`` of the LSM store.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.parse
from collections.abc import Iterator, Mapping, Sequence
from typing import TYPE_CHECKING

from ..kvstore.base import (
    Fields,
    KeyValueStore,
    RateLimitExceeded,
    StoreError,
    StoreUnavailable,
    VersionedValue,
)
from .batch import put_ops

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports kvstore)
    from ..core.retry import RetryPolicy

__all__ = ["HttpKVStore"]

#: Response codes a well-behaved client treats as transient and retries:
#: 429 Too Many Requests and 503 Service Unavailable (what WAS/GCS send
#: when a container is throttled).
_RETRYABLE_HTTP = frozenset({429, 503})

#: Exceptions that mean the transport failed (vs. the server answering).
_TRANSPORT_ERRORS = (http.client.HTTPException, ConnectionError, OSError)


class _ConnectionPool:
    """Bounded LIFO pool of keep-alive connections, shared across threads.

    A thread borrows a connection for the duration of one request and
    returns it afterwards.  When the pool is empty a fresh connection is
    opened; when a returned connection would exceed ``max_size`` idle
    entries it is closed instead.  LIFO keeps the hottest sockets in use,
    so idle ones age out via the server's keep-alive timeout naturally.
    """

    def __init__(self, host: str, port: int, timeout_s: float, max_size: int):
        self._host = host
        self._port = port
        self._timeout_s = timeout_s
        self._max_size = max(1, max_size)
        self._lock = threading.Lock()
        self._idle: list[http.client.HTTPConnection] = []
        self._closed = False

    def acquire(self) -> tuple[http.client.HTTPConnection, bool]:
        """A connection plus whether it came from the idle pool.

        The flag matters for error handling: a *pooled* connection can be
        stale (the server closed its side of the keep-alive, or bounced
        entirely), so a transport error on it says nothing about the
        server being down — the caller should retry once on a fresh
        socket.  A fresh connection failing is the real signal.
        """
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
        return self.fresh(), False

    def fresh(self) -> http.client.HTTPConnection:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout_s
        )
        # Connect eagerly so Nagle can be switched off before the first
        # request: header and body go out as separate writes, and Nagle
        # holding the second behind the peer's delayed ACK costs ~40 ms
        # per request — three orders of magnitude over loopback latency.
        # Eager also means the connect itself can fail here, before any
        # request-level error handling sees it — so translate.
        try:
            connection.connect()
        except _TRANSPORT_ERRORS as exc:
            connection.close()
            raise StoreUnavailable(
                f"HTTP store {self._host}:{self._port} unreachable: {exc}"
            ) from exc
        if connection.sock is not None:
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return connection

    def release(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self._max_size:
                self._idle.append(connection)
                return
        connection.close()

    def discard(self, connection: http.client.HTTPConnection) -> None:
        """Drop a connection whose transport failed — never re-pooled."""
        connection.close()

    def clear(self) -> None:
        """Close every idle connection (the pool stays usable).

        After a server bounce every pooled socket is equally stale;
        dropping them all at the first stale hit saves each later request
        from paying its own failed attempt.
        """
        with self._lock:
            idle, self._idle = self._idle, []
        for connection in idle:
            connection.close()

    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for connection in idle:
            connection.close()


class HttpKVStore(KeyValueStore):
    """A remote key-value store reached over HTTP.

    ``retry_policy`` (a :class:`~repro.core.retry.RetryPolicy`) governs
    transport-level retries: connection failures and throttle responses
    (429/503) are retried with backoff.  Independently of any policy, a
    transport error on a **pooled** connection is retried once on a fresh
    socket after dropping every idle connection — a stale keep-alive (the
    server timed the socket out, or bounced) is not a server failure and
    must not surface as one, nor burn a policy attempt.  Without a policy,
    throttle responses surface as :class:`~repro.kvstore.base.
    RateLimitExceeded` immediately.
    """

    def __init__(
        self,
        address: tuple[str, int],
        timeout_s: float = 10.0,
        retry_policy: "RetryPolicy | None" = None,
        pool_size: int = 8,
    ):
        self._host, self._port = address
        self._timeout_s = timeout_s
        self._retry_policy = retry_policy
        self._pool = _ConnectionPool(self._host, self._port, timeout_s, pool_size)
        self._closed = False
        self._stale_lock = threading.Lock()
        self._stale_retries = 0

    @property
    def stale_retries(self) -> int:
        """Requests transparently replayed after a stale pooled connection."""
        with self._stale_lock:
            return self._stale_retries

    def counters(self) -> dict[str, int]:
        """Transport retry counters."""
        counts: dict[str, int] = (
            dict(self._retry_policy.stats.counters()) if self._retry_policy else {}
        )
        stale = self.stale_retries
        if stale:
            counts["HTTP-STALE-RETRIES"] = stale
        return counts

    # -- connection handling ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict | None, dict[str, str]]:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        send_headers = dict(headers or {})
        if payload is not None:
            send_headers["Content-Type"] = "application/json"

        def perform(connection):
            connection.request(method, path, body=payload, headers=send_headers)
            response = connection.getresponse()
            raw = response.read()
            return response, (json.loads(raw) if raw else None)

        def attempt_once() -> tuple[int, dict | None, dict[str, str]]:
            connection, pooled = self._pool.acquire()
            try:
                response, document = perform(connection)
            except _TRANSPORT_ERRORS as exc:
                self._pool.discard(connection)
                if not pooled:
                    raise StoreUnavailable(
                        f"HTTP store {self._host}:{self._port} unreachable: {exc}"
                    ) from exc
                # A pooled socket died under us: the server closed its
                # side of the keep-alive or bounced.  Every idle socket
                # is equally suspect — drop them all and replay this one
                # request on a guaranteed-fresh connection.  Only *that*
                # failing means the server is actually unreachable.
                self._pool.clear()
                with self._stale_lock:
                    self._stale_retries += 1
                connection = self._pool.fresh()
                try:
                    response, document = perform(connection)
                except _TRANSPORT_ERRORS as fresh_exc:
                    self._pool.discard(connection)
                    raise StoreUnavailable(
                        f"HTTP store {self._host}:{self._port} unreachable: "
                        f"{fresh_exc}"
                    ) from fresh_exc
            self._pool.release(connection)
            if response.status in _RETRYABLE_HTTP:
                raise RateLimitExceeded(
                    f"{method} {path} throttled with HTTP {response.status}"
                )
            return response.status, document, dict(response.getheaders())

        if self._retry_policy is not None:
            return self._retry_policy.call(attempt_once)
        return attempt_once()

    @staticmethod
    def _key_path(key: str) -> str:
        return "/kv/" + urllib.parse.quote(key, safe="")

    # -- reads -----------------------------------------------------------------------

    def get_with_meta(self, key: str) -> VersionedValue | None:
        status, document, headers = self._request("GET", self._key_path(key))
        if status == 404:
            return None
        if status != 200 or document is None:
            raise StoreError(f"GET {key!r} failed with HTTP {status}")
        version = int(headers.get("ETag", "0"))
        return VersionedValue(dict(document), version)

    def scan(self, start_key: str, record_count: int) -> list[tuple[str, Fields]]:
        if record_count <= 0:
            return []
        query = urllib.parse.urlencode({"start": start_key, "count": record_count})
        status, document, _ = self._request("GET", f"/scan?{query}")
        if status != 200 or document is None:
            raise StoreError(f"scan from {start_key!r} failed with HTTP {status}")
        return [(key, dict(fields)) for key, fields in document.get("records", [])]

    def keys(self) -> Iterator[str]:
        # Page through the key space via ranged scans.
        cursor = ""
        page_size = 1000
        while True:
            page = self.scan(cursor, page_size)
            for key, _ in page:
                yield key
            if len(page) < page_size:
                return
            cursor = page[-1][0] + "\x00"

    def size(self) -> int:
        status, document, _ = self._request("GET", "/stats")
        if status != 200 or document is None:
            raise StoreError(f"stats failed with HTTP {status}")
        return int(document["size"])

    def health(self) -> bool:
        """Liveness probe: True iff the server answers ``GET /health``.

        Never raises — an unreachable or misbehaving server is simply
        unhealthy, which is the answer the caller asked for.
        """
        try:
            status, document, _ = self._request("GET", "/health")
        except StoreError:
            return False
        return status == 200 and bool(document) and document.get("status") == "ok"

    # -- writes -----------------------------------------------------------------------

    def put(self, key: str, value: Mapping[str, str]) -> int:
        status, document, _ = self._request("PUT", self._key_path(key), body=dict(value))
        if status != 200 or document is None:
            raise StoreError(f"PUT {key!r} failed with HTTP {status}")
        return int(document["version"])

    def put_if_version(
        self, key: str, value: Mapping[str, str], expected_version: int | None
    ) -> int | None:
        headers = (
            {"If-None-Match": "*"}
            if expected_version is None
            else {"If-Match": str(expected_version)}
        )
        status, document, _ = self._request(
            "PUT", self._key_path(key), body=dict(value), headers=headers
        )
        if status == 412:
            return None
        if status != 200 or document is None:
            raise StoreError(f"conditional PUT {key!r} failed with HTTP {status}")
        return int(document["version"])

    def delete(self, key: str) -> bool:
        status, _, _ = self._request("DELETE", self._key_path(key))
        if status == 204:
            return True
        if status == 404:
            return False
        raise StoreError(f"DELETE {key!r} failed with HTTP {status}")

    def delete_if_version(self, key: str, expected_version: int) -> bool | None:
        status, _, _ = self._request(
            "DELETE", self._key_path(key), headers={"If-Match": str(expected_version)}
        )
        if status == 204:
            return True
        if status == 404:
            return False
        if status == 412:
            return None
        raise StoreError(f"conditional DELETE {key!r} failed with HTTP {status}")

    # -- batch ------------------------------------------------------------------------

    def execute_batch(self, ops: Sequence[dict]) -> list[dict]:
        """Ship an operation array through ``POST /batch`` in one round trip.

        Returns one result dict per operation, order-preserved, with the
        same per-op statuses the single-op endpoints would have produced
        (see :mod:`repro.http.batch` for the wire format).
        """
        status, document, _ = self._request("POST", "/batch", body={"ops": list(ops)})
        if status != 200 or document is None:
            raise StoreError(f"batch of {len(ops)} ops failed with HTTP {status}")
        results = document.get("results")
        if not isinstance(results, list) or len(results) != len(ops):
            raise StoreError("batch response did not match the request shape")
        return results

    def post_json(self, path: str, body: dict) -> tuple[int, dict | None]:
        """POST a JSON document to an arbitrary path; (status, response body).

        The generic escape hatch for non-KV endpoints — the cluster layer
        uses it for the two-phase-commit ``/txn/*`` verbs.  Transport
        errors surface as :class:`~repro.kvstore.base.StoreUnavailable`
        exactly like the KV verbs; the caller interprets the status.
        """
        status, document, _ = self._request("POST", path, body=body)
        return status, document

    def put_batch(self, records: Sequence[tuple[str, Mapping[str, str]]]) -> list[int]:
        """Unconditionally write a record list in one round trip.

        Same semantics as the LSM store's group-commit ``put_batch``:
        every record is written, versions returned in order.
        """
        records = list(records)
        results = self.execute_batch(put_ops(records))
        versions: list[int] = []
        for (key, _), result in zip(records, results):
            op_status = result.get("status")
            if op_status == 503:
                raise RateLimitExceeded(f"batched PUT {key!r} throttled")
            if op_status != 200:
                raise StoreError(f"batched PUT {key!r} failed with status {op_status}")
            versions.append(int(result["version"]))
        return versions

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        self._pool.close()
        self._closed = True
