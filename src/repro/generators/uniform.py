"""Uniform distributions over integer ranges and item sequences."""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import TypeVar

from .base import Generator, NumberGenerator, default_rng

T = TypeVar("T")

__all__ = ["UniformLongGenerator", "UniformChoiceGenerator"]


class UniformLongGenerator(NumberGenerator):
    """Uniformly random integers in the inclusive range ``[lower, upper]``."""

    def __init__(self, lower: int, upper: int, rng: random.Random | None = None):
        if upper < lower:
            raise ValueError(f"empty range [{lower}, {upper}]")
        super().__init__()
        self._lower = lower
        self._upper = upper
        self._rng = rng or default_rng()

    @property
    def lower(self) -> int:
        return self._lower

    @property
    def upper(self) -> int:
        return self._upper

    def next_value(self) -> int:
        return self._remember(self._rng.randint(self._lower, self._upper))

    def mean(self) -> float:
        return (self._lower + self._upper) / 2.0


class UniformChoiceGenerator(Generator[T]):
    """Uniformly random element of a fixed sequence."""

    def __init__(self, items: Sequence[T], rng: random.Random | None = None):
        if not items:
            raise ValueError("items must be non-empty")
        super().__init__()
        self._items = list(items)
        self._rng = rng or default_rng()

    def next_value(self) -> T:
        return self._remember(self._rng.choice(self._items))
