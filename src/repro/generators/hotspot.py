"""Hotspot distribution: a small hot set receives most of the traffic."""

from __future__ import annotations

import random

from .base import NumberGenerator, default_rng

__all__ = ["HotspotIntegerGenerator"]


class HotspotIntegerGenerator(NumberGenerator):
    """Integers in ``[lower, upper]`` where a fraction of the keys is hot.

    With probability ``hot_opn_fraction`` a value is drawn uniformly from
    the first ``hot_set_fraction`` of the range; otherwise uniformly from
    the remaining cold keys.  This matches YCSB's ``hotspot`` request
    distribution.
    """

    def __init__(
        self,
        lower: int,
        upper: int,
        hot_set_fraction: float = 0.2,
        hot_opn_fraction: float = 0.8,
        rng: random.Random | None = None,
    ):
        if upper < lower:
            raise ValueError(f"empty range [{lower}, {upper}]")
        if not 0.0 <= hot_set_fraction <= 1.0:
            raise ValueError("hot_set_fraction must be within [0, 1]")
        if not 0.0 <= hot_opn_fraction <= 1.0:
            raise ValueError("hot_opn_fraction must be within [0, 1]")
        super().__init__()
        self._lower = lower
        self._upper = upper
        self._hot_set_fraction = hot_set_fraction
        self._hot_opn_fraction = hot_opn_fraction
        total = upper - lower + 1
        self._hot_interval = int(total * hot_set_fraction)
        self._cold_interval = total - self._hot_interval
        self._rng = rng or default_rng()

    def next_value(self) -> int:
        rng = self._rng
        if rng.random() < self._hot_opn_fraction and self._hot_interval > 0:
            value = self._lower + rng.randrange(self._hot_interval)
        elif self._cold_interval > 0:
            value = self._lower + self._hot_interval + rng.randrange(self._cold_interval)
        else:
            value = self._lower + rng.randrange(self._hot_interval)
        return self._remember(value)

    def mean(self) -> float:
        hot_mean = self._lower + self._hot_interval / 2.0
        cold_mean = self._lower + self._hot_interval + self._cold_interval / 2.0
        p_hot = self._hot_opn_fraction if self._hot_interval > 0 else 0.0
        if self._cold_interval == 0:
            p_hot = 1.0
        return p_hot * hot_mean + (1.0 - p_hot) * cold_mean
