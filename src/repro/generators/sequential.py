"""Sequential key selection (YCSB's ``sequential`` request distribution)."""

from __future__ import annotations

import threading

from .base import NumberGenerator

__all__ = ["SequentialGenerator"]


class SequentialGenerator(NumberGenerator):
    """Cycles deterministically through ``[lower, upper]``.

    Useful for full-coverage passes such as the CEW validation stage and
    for cache-behaviour experiments.  Thread-safe: concurrent callers each
    receive a distinct value until the range wraps.
    """

    def __init__(self, lower: int, upper: int):
        if upper < lower:
            raise ValueError(f"empty range [{lower}, {upper}]")
        super().__init__()
        self._lower = lower
        self._span = upper - lower + 1
        self._cursor = 0
        self._lock = threading.Lock()

    def next_value(self) -> int:
        with self._lock:
            value = self._lower + self._cursor % self._span
            self._cursor += 1
        return self._remember(value)

    def mean(self) -> float:
        return self._lower + (self._span - 1) / 2.0
