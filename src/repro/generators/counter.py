"""Counter generators.

The load phase of YCSB inserts keys ``insertstart .. insertstart+insertcount``
using a shared, thread-safe counter.  The transaction phase additionally
needs to know which inserted keys are *safe to read* when inserts run
concurrently with reads; YCSB solves that with an *acknowledged* counter
that tracks the highest contiguous acknowledged insert.  Both are
implemented here.
"""

from __future__ import annotations

import itertools
import threading

from .base import NumberGenerator

__all__ = ["CounterGenerator", "AcknowledgedCounterGenerator"]


class CounterGenerator(NumberGenerator):
    """Generates ``start, start+1, start+2, ...`` atomically across threads."""

    def __init__(self, start: int = 0):
        super().__init__()
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._start = start
        self._last_issued = start - 1

    def next_value(self) -> int:
        with self._lock:
            value = next(self._counter)
            self._last_issued = value
        return self._remember(value)

    def last_value(self) -> int:
        """Most recently issued value (``start - 1`` before any call)."""
        with self._lock:
            return self._last_issued

    def mean(self) -> float:
        raise NotImplementedError("CounterGenerator has no stationary mean")


class AcknowledgedCounterGenerator(CounterGenerator):
    """A counter whose consumers acknowledge completed values.

    ``last_value()`` returns the *limit* of the contiguous acknowledged
    prefix rather than the last issued value, so concurrent readers never
    pick a key whose insert has not finished.  This mirrors YCSB's
    ``AcknowledgedCounterGenerator`` (there implemented with a sliding
    bitmap window; a sorted pending-set is simpler and equivalent here).
    """

    def __init__(self, start: int = 0):
        super().__init__(start)
        self._ack_lock = threading.Lock()
        self._limit = start - 1
        self._pending: set[int] = set()

    def acknowledge(self, value: int) -> None:
        """Mark ``value`` as durably inserted."""
        with self._ack_lock:
            self._pending.add(value)
            # Advance the contiguous frontier as far as possible.
            while self._limit + 1 in self._pending:
                self._pending.remove(self._limit + 1)
                self._limit += 1

    def last_value(self) -> int:
        """Highest value such that it and everything below is acknowledged."""
        with self._ack_lock:
            return self._limit
