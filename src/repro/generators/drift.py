"""Time-drifting request distributions.

Real web workloads do not keep one hot set forever: trending content,
cache warm-ups and regional day/night cycles *rotate* the popular keys
while the popularity profile itself (how skewed traffic is) stays
roughly constant.  The drifting generators here keep YCSB's popularity
maths — a Zipfian or hotspot draw produces a *rank* — and add a
time-dependent scatter: the rank-to-key mapping is re-randomised every
``drift_period_s`` of (ambient, possibly virtual) time, so the hot set
occupies a different region of the key space each epoch while every
draw remains a pure function of ``(rng state, clock)``.

The mapping is ``(fnv1_64(rank) + epoch * stride) % span``: FNV scatters
ranks uniformly (exactly like :class:`ScrambledZipfianGenerator`), and
the odd ``stride`` walks that scatter around the key space as the epoch
advances, guaranteeing the hottest key changes between consecutive
epochs for any span > 1.
"""

from __future__ import annotations

import random

from ..sim.clock import ambient_monotonic
from .base import NumberGenerator, default_rng
from .hashing import fnv1_64
from .hotspot import HotspotIntegerGenerator
from .zipfian import ZIPFIAN_CONSTANT, ZipfianGenerator

__all__ = ["DriftingZipfianGenerator", "DriftingHotspotGenerator"]

#: Epoch stride for the rank scatter: a large odd constant (2**64 / phi,
#: forced odd) so consecutive epochs land far apart and, because it is
#: coprime with every power of two and with most spans, the hot set
#: visits the whole key space before repeating.
DRIFT_STRIDE = 0x9E3779B97F4A7C15


class DriftingZipfianGenerator(NumberGenerator):
    """Zipfian popularity whose hot set rotates every ``drift_period_s``.

    Args:
        lower: smallest generated value (inclusive).
        upper: largest generated value (inclusive).
        theta: Zipfian skew in (0, 1).
        drift_period_s: seconds between hot-set rotations; ``0`` disables
            drift (the mapping is then a plain scrambled Zipfian).
        rng: source of randomness.
        clock: time source (defaults to the ambient clock, so the hot
            set rotates on *virtual* time under a simulation).
    """

    def __init__(
        self,
        lower: int,
        upper: int,
        theta: float = ZIPFIAN_CONSTANT,
        drift_period_s: float = 0.0,
        rng: random.Random | None = None,
        clock=ambient_monotonic,
    ):
        if upper < lower:
            raise ValueError(f"empty range [{lower}, {upper}]")
        if drift_period_s < 0:
            raise ValueError(f"drift_period_s must be >= 0, got {drift_period_s}")
        super().__init__()
        self._base = lower
        self._span = upper - lower + 1
        self._period = float(drift_period_s)
        self._clock = clock
        self._rank_source = ZipfianGenerator(
            0, self._span - 1, theta, rng=rng or default_rng()
        )

    @property
    def span(self) -> int:
        return self._span

    def epoch_at(self, t: float) -> int:
        """Rotation epoch in effect at clock time ``t``."""
        if self._period <= 0:
            return 0
        return int(t / self._period)

    def key_for_rank(self, rank: int, epoch: int) -> int:
        """The key that popularity rank ``rank`` maps to during ``epoch``."""
        return self._base + (fnv1_64(rank) + epoch * DRIFT_STRIDE) % self._span

    def hot_keys(self, epoch: int, count: int = 1) -> list[int]:
        """The ``count`` most popular keys of ``epoch`` (rank order)."""
        return [self.key_for_rank(rank, epoch) for rank in range(count)]

    def next_value(self) -> int:
        rank = self._rank_source.next_value()
        epoch = self.epoch_at(self._clock())
        return self._remember(self.key_for_rank(rank, epoch))

    def mean(self) -> float:
        # The FNV scatter spreads every rank uniformly over the span.
        return (2 * self._base + self._span - 1) / 2.0


class DriftingHotspotGenerator(NumberGenerator):
    """Hotspot distribution whose hot region rotates every ``drift_period_s``.

    A hotspot draw produces an offset into the range; the offset is then
    rotated by ``epoch * stride`` so the contiguous hot region sweeps
    around the key space over time (a moving celebrity shard).
    """

    def __init__(
        self,
        lower: int,
        upper: int,
        hot_set_fraction: float = 0.2,
        hot_opn_fraction: float = 0.8,
        drift_period_s: float = 0.0,
        rng: random.Random | None = None,
        clock=ambient_monotonic,
    ):
        if upper < lower:
            raise ValueError(f"empty range [{lower}, {upper}]")
        if drift_period_s < 0:
            raise ValueError(f"drift_period_s must be >= 0, got {drift_period_s}")
        super().__init__()
        self._base = lower
        self._span = upper - lower + 1
        self._period = float(drift_period_s)
        self._clock = clock
        self._offset_source = HotspotIntegerGenerator(
            0,
            self._span - 1,
            hot_set_fraction=hot_set_fraction,
            hot_opn_fraction=hot_opn_fraction,
            rng=rng or default_rng(),
        )

    @property
    def span(self) -> int:
        return self._span

    def epoch_at(self, t: float) -> int:
        if self._period <= 0:
            return 0
        return int(t / self._period)

    def key_for_offset(self, offset: int, epoch: int) -> int:
        return self._base + (offset + epoch * DRIFT_STRIDE) % self._span

    def hot_keys(self, epoch: int, count: int = 1) -> list[int]:
        return [self.key_for_offset(offset, epoch) for offset in range(count)]

    def next_value(self) -> int:
        offset = self._offset_source.next_value()
        epoch = self.epoch_at(self._clock())
        return self._remember(self.key_for_offset(offset, epoch))

    def mean(self) -> float:
        # Rotation is a bijection on the range; averaged over epochs the
        # distribution of keys is the rotated hotspot's — report the
        # uniform-over-span mean, exact whenever the hot region wraps.
        return (2 * self._base + self._span - 1) / 2.0
