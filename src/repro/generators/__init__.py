"""Request, key and value distributions used by YCSB+T workloads.

Everything a workload randomises flows through one of these generator
classes, so a seeded ``random.Random`` threaded through them makes an
entire benchmark run reproducible.
"""

from .base import ConstantGenerator, Generator, NumberGenerator, default_rng, locked_random
from .counter import AcknowledgedCounterGenerator, CounterGenerator
from .discrete import DiscreteGenerator
from .drift import DriftingHotspotGenerator, DriftingZipfianGenerator
from .exponential import ExponentialGenerator
from .hashing import fnv1_64, fnv1a_64
from .histogram import HistogramGenerator
from .hotspot import HotspotIntegerGenerator
from .sequential import SequentialGenerator
from .strings import KeyNameGenerator, RandomStringGenerator
from .uniform import UniformChoiceGenerator, UniformLongGenerator
from .zipfian import (
    ZIPFIAN_CONSTANT,
    ScrambledZipfianGenerator,
    SkewedLatestGenerator,
    ZipfianGenerator,
)

__all__ = [
    "ConstantGenerator",
    "Generator",
    "NumberGenerator",
    "default_rng",
    "locked_random",
    "AcknowledgedCounterGenerator",
    "CounterGenerator",
    "DiscreteGenerator",
    "DriftingHotspotGenerator",
    "DriftingZipfianGenerator",
    "ExponentialGenerator",
    "fnv1_64",
    "fnv1a_64",
    "HistogramGenerator",
    "HotspotIntegerGenerator",
    "SequentialGenerator",
    "KeyNameGenerator",
    "RandomStringGenerator",
    "UniformChoiceGenerator",
    "UniformLongGenerator",
    "ZIPFIAN_CONSTANT",
    "ScrambledZipfianGenerator",
    "SkewedLatestGenerator",
    "ZipfianGenerator",
]
