"""Zipfian request distributions.

The paper's experiments access "10000 records ... in a Zipfian distribution
pattern"; contention on the popular keys is what produces the anomalies of
Figure 4.  The implementation follows the rejection-free method of Gray et
al., *Quickly Generating Billion-Record Synthetic Databases* (SIGMOD '94),
exactly as YCSB does, including support for an item count that grows while
the benchmark runs (needed by the ``latest`` distribution).

Three generators are provided:

* :class:`ZipfianGenerator` — popular items are the low indices.
* :class:`ScrambledZipfianGenerator` — same popularity profile, but
  popular items are FNV-scattered across the key space.
* :class:`SkewedLatestGenerator` — popularity follows recency: the most
  recently inserted key is the most popular.
"""

from __future__ import annotations

import random
import threading

from .base import NumberGenerator, default_rng
from .counter import CounterGenerator
from .hashing import fnv1_64

__all__ = [
    "ZIPFIAN_CONSTANT",
    "ZipfianGenerator",
    "ScrambledZipfianGenerator",
    "SkewedLatestGenerator",
]

#: YCSB's default skew parameter (theta).
ZIPFIAN_CONSTANT = 0.99

# Constants YCSB precomputes for the scrambled generator's fixed item space.
_SCRAMBLED_ITEM_COUNT = 10_000_000_000
_SCRAMBLED_ZETAN = 26.46902820178302


def zeta_static(start: int, count: int, theta: float, initial: float = 0.0) -> float:
    """Incremental generalized harmonic number.

    Returns ``initial + sum_{i=start+1}^{count} 1/i**theta``.  ``start`` is
    the item count the ``initial`` sum was computed for, allowing the
    running benchmark to extend zeta cheaply when new items are inserted.
    """
    total = initial
    for i in range(start, count):
        total += 1.0 / ((i + 1) ** theta)
    return total


class ZipfianGenerator(NumberGenerator):
    """Zipfian-distributed integers in ``[lower, upper]``.

    Item ``lower`` is the most popular, ``lower + 1`` the second most, and
    so on.  ``theta`` (the *zipfian constant*) controls the skew; YCSB's
    default of 0.99 makes the hottest item receive roughly 9–10 % of all
    requests with 10 000 items.

    Args:
        lower: smallest generated value (inclusive).
        upper: largest generated value (inclusive).
        theta: skew parameter in (0, 1).
        zetan: precomputed ``zeta(n, theta)`` for ``n = upper - lower + 1``;
            pass it for very large item counts where computing zeta on the
            fly would be slow.
        rng: source of randomness.
    """

    def __init__(
        self,
        lower: int,
        upper: int,
        theta: float = ZIPFIAN_CONSTANT,
        zetan: float | None = None,
        rng: random.Random | None = None,
    ):
        if upper < lower:
            raise ValueError(f"empty range [{lower}, {upper}]")
        if not 0.0 < theta < 1.0:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        super().__init__()
        self._lock = threading.Lock()
        self._rng = rng or default_rng()
        self._base = lower
        self._items = upper - lower + 1
        self._theta = theta

        self._zeta2theta = zeta_static(0, 2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        # _count_for_zeta tracks the item count _zetan corresponds to.
        self._count_for_zeta = self._items
        self._zetan = zetan if zetan is not None else zeta_static(0, self._items, theta)
        self._eta = self._compute_eta()
        self._allow_item_count_decrease = False
        # Incremental cache for mean(): sum_{i=1..n} (i-1) / i**theta,
        # extended the same way zeta is when the item space grows.
        self._mean_numerator = 0.0
        self._mean_count = 0

    @property
    def theta(self) -> float:
        return self._theta

    @property
    def item_count(self) -> int:
        return self._items

    def _compute_eta(self) -> float:
        # For n <= 2 the two early-return branches of next_for_items cover
        # the whole probability mass (zeta(n) <= zeta(2)), so eta is never
        # used — and its denominator would be zero at n == 2.
        if self._items <= 2:
            return 0.0
        return (1.0 - (2.0 / self._items) ** (1.0 - self._theta)) / (
            1.0 - self._zeta2theta / self._zetan
        )

    def next_for_items(self, item_count: int) -> int:
        """Draw from a Zipfian over ``item_count`` items.

        Used by :class:`SkewedLatestGenerator`, whose item space grows with
        every insert.  Recomputes zeta incrementally when the space grows.
        """
        with self._lock:
            if item_count != self._count_for_zeta:
                if item_count > self._count_for_zeta:
                    self._zetan = zeta_static(
                        self._count_for_zeta, item_count, self._theta, self._zetan
                    )
                elif self._allow_item_count_decrease:
                    self._zetan = zeta_static(0, item_count, self._theta)
                self._count_for_zeta = item_count
                self._items = item_count
                self._eta = self._compute_eta()

            u = self._rng.random()
            uz = u * self._zetan
            if uz < 1.0:
                return self._remember(self._base)
            if uz < 1.0 + 0.5**self._theta:
                return self._remember(self._base + 1)
            rank = int(self._items * ((self._eta * u - self._eta + 1.0) ** self._alpha))
            return self._remember(self._base + rank)

    def next_value(self) -> int:
        return self.next_for_items(self._items)

    def mean(self) -> float:
        """Exact expected value: ``base + sum((i-1) / i**theta) / zeta(n)``.

        Rank ``r`` (0-based) has probability ``(r+1)**-theta / zeta(n)``,
        so the mean offset is the partial sum above.  The numerator is
        cached incrementally, mirroring the zeta bookkeeping, so a
        growing key space (``next_for_items``) keeps mean() O(growth)
        instead of O(n) per call.
        """
        with self._lock:
            if self._mean_count > self._items:
                # The item space shrank: recompute from scratch.
                self._mean_numerator = 0.0
                self._mean_count = 0
            for i in range(self._mean_count + 1, self._items + 1):
                self._mean_numerator += (i - 1) / i**self._theta
            self._mean_count = self._items
            return self._base + self._mean_numerator / self._zetan


class ScrambledZipfianGenerator(NumberGenerator):
    """Zipfian popularity scattered uniformly over ``[lower, upper]``.

    Draws a rank from a Zipfian over a large fixed item space (so the skew
    profile does not depend on the benchmark's record count, matching
    YCSB), then hashes the rank into the requested range.  Popular keys are
    therefore spread across the whole key space instead of clustered at the
    low end.
    """

    def __init__(
        self,
        lower: int,
        upper: int,
        theta: float = ZIPFIAN_CONSTANT,
        rng: random.Random | None = None,
    ):
        if upper < lower:
            raise ValueError(f"empty range [{lower}, {upper}]")
        super().__init__()
        self._base = lower
        self._span = upper - lower + 1
        if theta == ZIPFIAN_CONSTANT:
            self._zipfian = ZipfianGenerator(
                0, _SCRAMBLED_ITEM_COUNT - 1, theta, zetan=_SCRAMBLED_ZETAN, rng=rng
            )
        else:
            # Non-default skew: fall back to a zipfian over the actual span,
            # where zeta is cheap to compute.
            self._zipfian = ZipfianGenerator(0, self._span - 1, theta, rng=rng)

    def next_value(self) -> int:
        rank = self._zipfian.next_value()
        return self._remember(self._base + fnv1_64(rank) % self._span)

    def mean(self) -> float:
        return (self._base + self._base + self._span - 1) / 2.0


class SkewedLatestGenerator(NumberGenerator):
    """Zipfian over recency: the newest key is the most popular.

    Wraps an insert-order counter; a draw of rank ``r`` maps to the key
    inserted ``r`` positions before the latest one.
    """

    def __init__(self, basis: CounterGenerator, rng: random.Random | None = None):
        super().__init__()
        self._basis = basis
        upper = max(basis.last_value(), 1)
        self._zipfian = ZipfianGenerator(0, upper - 1, rng=rng)
        self.next_value()

    def next_value(self) -> int:
        maximum = self._basis.last_value()
        if maximum < 1:
            return self._remember(0)
        rank = self._zipfian.next_for_items(maximum)
        return self._remember(maximum - rank)

    def mean(self) -> float:
        raise NotImplementedError("SkewedLatest mean is not defined")
