"""Weighted discrete choice — used to pick the next operation type.

The operation mix of a workload (``readproportion=0.9`` etc. in Listing 2)
is realised as a :class:`DiscreteGenerator` over operation names.
"""

from __future__ import annotations

import random
from typing import TypeVar

from .base import Generator, default_rng

T = TypeVar("T")

__all__ = ["DiscreteGenerator"]


class DiscreteGenerator(Generator[T]):
    """Returns values with probability proportional to their weight."""

    def __init__(self, rng: random.Random | None = None):
        super().__init__()
        self._values: list[tuple[float, T]] = []
        self._total = 0.0
        self._rng = rng or default_rng()

    def add_value(self, weight: float, value: T) -> None:
        """Register ``value`` with relative ``weight`` (must be positive)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight} for {value!r}")
        self._values.append((weight, value))
        self._total += weight

    def weights(self) -> dict[T, float]:
        """Normalised probability of each registered value."""
        return {value: weight / self._total for weight, value in self._values}

    def next_value(self) -> T:
        if not self._values:
            raise RuntimeError("DiscreteGenerator has no values registered")
        threshold = self._rng.random() * self._total
        cumulative = 0.0
        for weight, value in self._values:
            cumulative += weight
            if threshold < cumulative:
                return self._remember(value)
        # Floating-point slack: fall back to the final value.
        return self._remember(self._values[-1][1])
