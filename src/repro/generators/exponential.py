"""Exponential distribution generator (YCSB's ``exponential`` request mix)."""

from __future__ import annotations

import math
import random

from .base import NumberGenerator, default_rng

__all__ = ["ExponentialGenerator"]


class ExponentialGenerator(NumberGenerator):
    """Exponentially distributed non-negative integers.

    YCSB parameterises this either by ``mean`` (gamma = 1/mean) or by the
    pair (*percentile*, *range*): e.g. "95 % of requests fall in the first
    10 % of the key space".  Both constructors are supported.
    """

    def __init__(self, gamma: float, rng: random.Random | None = None):
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        super().__init__()
        self._gamma = gamma
        self._rng = rng or default_rng()

    @classmethod
    def from_mean(cls, mean: float, rng: random.Random | None = None) -> "ExponentialGenerator":
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return cls(1.0 / mean, rng=rng)

    @classmethod
    def from_percentile(
        cls, percentile: float, coverage: float, rng: random.Random | None = None
    ) -> "ExponentialGenerator":
        """``percentile`` per cent of samples fall below ``coverage``.

        Matches YCSB's ``exponential.percentile`` / ``exponential.frac``
        configuration (percentile given in percent, e.g. 95).
        """
        if not 0.0 < percentile < 100.0:
            raise ValueError("percentile must be in (0, 100)")
        if coverage <= 0:
            raise ValueError("coverage must be positive")
        gamma = -math.log(1.0 - percentile / 100.0) / coverage
        return cls(gamma, rng=rng)

    @property
    def gamma(self) -> float:
        return self._gamma

    def next_value(self) -> int:
        u = self._rng.random()
        return self._remember(int(-math.log(1.0 - u) / self._gamma))

    def mean(self) -> float:
        return 1.0 / self._gamma
