"""Generator base classes.

YCSB drives every random choice — which key to touch, which operation to
perform, how long a scan should be — through small *generator* objects.
Re-implementing that design keeps workloads declarative: a workload is a
bundle of generators plus a little glue.

Two abstract flavours exist, mirroring YCSB:

* :class:`Generator` produces arbitrary values (e.g. operation names).
* :class:`NumberGenerator` produces numbers and can report an expected
  ``mean()`` where that is well defined, which workloads use for sizing.

All concrete generators accept an optional ``rng`` (a ``random.Random``)
so experiments are reproducible; when omitted a private module-level
instance seeded from the OS is used.
"""

from __future__ import annotations

import random
import threading
from abc import ABC, abstractmethod
from typing import Generic, TypeVar

T = TypeVar("T")

__all__ = [
    "Generator",
    "NumberGenerator",
    "ConstantGenerator",
    "default_rng",
    "locked_random",
]

_shared_rng = random.Random()
_shared_rng_lock = threading.Lock()


class _LockedRandom(random.Random):
    """A ``random.Random`` whose core sampler is guarded by a lock.

    The default shared generator may be pulled from several client threads;
    CPython's ``random`` is not documented as thread-safe, so the fallback
    wraps ``random()`` and ``getrandbits`` in a mutex.  Workloads that care
    about throughput pass per-thread instances instead.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def random(self) -> float:  # noqa: A003 - mirrors stdlib name
        with self._lock:
            return super().random()

    def getrandbits(self, k: int) -> int:
        with self._lock:
            return super().getrandbits(k)


_default = _LockedRandom()


def default_rng() -> random.Random:
    """The process-wide fallback RNG used when none is supplied."""
    return _default


def locked_random(seed: int | None = None) -> random.Random:
    """A new thread-safe ``random.Random``, optionally seeded.

    Workloads share generators across client threads; giving those
    generators a locked RNG keeps a seeded benchmark run reproducible in
    aggregate (the multiset of drawn values) without per-thread plumbing.
    """
    rng = _LockedRandom()
    if seed is not None:
        rng.seed(seed)
    return rng


class Generator(ABC, Generic[T]):
    """Produces a sequence of values of type ``T``.

    Subclasses implement :meth:`next_value`; :meth:`last_value` returns the
    most recently generated value without advancing, which YCSB workloads
    use to correlate choices (e.g. insert a key, then immediately read it).
    """

    def __init__(self) -> None:
        self._last: T | None = None

    @abstractmethod
    def next_value(self) -> T:
        """Generate and return the next value."""

    def last_value(self) -> T:
        """The most recent value from :meth:`next_value`.

        Generates one first if the sequence has not started yet.
        """
        if self._last is None:
            self._last = self.next_value()
        return self._last

    def _remember(self, value: T) -> T:
        self._last = value
        return value


class NumberGenerator(Generator[int], ABC):
    """A generator of integers with an (optional) analytic mean."""

    def mean(self) -> float:
        """Expected value of the distribution.

        Raises:
            NotImplementedError: for distributions without a useful
                closed-form mean (e.g. Zipfian over a mutating key space).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a mean()"
        )


class ConstantGenerator(Generator[T]):
    """Always returns the same value. Useful as a degenerate parameter."""

    def __init__(self, value: T):
        super().__init__()
        self._value = value

    def next_value(self) -> T:
        return self._remember(self._value)
