"""Histogram-shaped generator.

YCSB sizes scans and field lengths either with an analytic distribution or
with an empirical histogram (``fieldlengthhistogram`` files: one bucket per
line, ``value, weight``).  This generator reproduces that behaviour.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from pathlib import Path

from .base import NumberGenerator, default_rng

__all__ = ["HistogramGenerator"]


class HistogramGenerator(NumberGenerator):
    """Draws bucket indices with probability proportional to bucket weight.

    ``buckets[i]`` is the weight of value ``i * block_size``.
    """

    def __init__(
        self,
        buckets: Sequence[float],
        block_size: int = 1,
        rng: random.Random | None = None,
    ):
        if not buckets:
            raise ValueError("buckets must be non-empty")
        if any(weight < 0 for weight in buckets):
            raise ValueError("bucket weights must be non-negative")
        total = float(sum(buckets))
        if total <= 0:
            raise ValueError("bucket weights must sum to a positive value")
        super().__init__()
        self._buckets = [float(weight) for weight in buckets]
        self._block_size = block_size
        self._total = total
        self._rng = rng or default_rng()

    @classmethod
    def from_file(cls, path: str | Path, rng: random.Random | None = None) -> "HistogramGenerator":
        """Load a YCSB histogram file.

        Format: an optional ``BlockSize, n`` header then ``bucket, weight``
        lines.  Unknown lines raise ``ValueError``.
        """
        block_size = 1
        weights: dict[int, float] = {}
        for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [part.strip() for part in line.split(",")]
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: expected 'key, weight', got {raw!r}")
            if parts[0].lower() == "blocksize":
                block_size = int(parts[1])
                continue
            weights[int(parts[0])] = float(parts[1])
        if not weights:
            raise ValueError(f"{path}: histogram file has no buckets")
        size = max(weights) + 1
        buckets = [weights.get(i, 0.0) for i in range(size)]
        return cls(buckets, block_size=block_size, rng=rng)

    def next_value(self) -> int:
        threshold = self._rng.random() * self._total
        cumulative = 0.0
        for index, weight in enumerate(self._buckets):
            cumulative += weight
            if threshold < cumulative:
                return self._remember(index * self._block_size)
        return self._remember((len(self._buckets) - 1) * self._block_size)

    def mean(self) -> float:
        weighted = sum(
            index * self._block_size * weight for index, weight in enumerate(self._buckets)
        )
        return weighted / self._total
