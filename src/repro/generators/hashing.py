"""Hash helpers used to decorrelate generated key sequences.

YCSB scrambles Zipfian-popular item indices across the key space with a
64-bit FNV-1 hash so that the hottest keys are not physically adjacent.
The same function is reused to turn integer key numbers into stable,
uniformly spread record keys.
"""

from __future__ import annotations

__all__ = ["fnv1_64", "fnv1a_64"]

_FNV_OFFSET_BASIS_64 = 0xCBF29CE484222325
_FNV_PRIME_64 = 0x100000001B3
_MASK_64 = 0xFFFFFFFFFFFFFFFF


def fnv1_64(value: int) -> int:
    """64-bit FNV-1 hash of an integer, matching YCSB's ``Utils.FNVhash64``.

    The integer is consumed one byte at a time (little-endian order, eight
    bytes) and the result is folded to a non-negative value.
    """
    hashval = _FNV_OFFSET_BASIS_64
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        hashval = hashval ^ octet
        hashval = (hashval * _FNV_PRIME_64) & _MASK_64
    return hashval & 0x7FFFFFFFFFFFFFFF


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash of a byte string (used for shard placement)."""
    hashval = _FNV_OFFSET_BASIS_64
    for octet in data:
        hashval = hashval ^ octet
        hashval = (hashval * _FNV_PRIME_64) & _MASK_64
    return hashval
