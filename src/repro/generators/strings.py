"""Field-value generators.

YCSB fills record fields with random printable strings whose length comes
from a pluggable length distribution (``fieldlength``/``fieldlengthdistribution``
properties).  Keys are built from integer key numbers, optionally hashed
(``insertorder=hashed``) and zero-padded (``zeropadding``).
"""

from __future__ import annotations

import random
import string

from .base import Generator, NumberGenerator, default_rng
from .hashing import fnv1_64

__all__ = ["RandomStringGenerator", "KeyNameGenerator"]

_ALPHABET = string.ascii_letters + string.digits


class RandomStringGenerator(Generator[str]):
    """Random alphanumeric strings with generator-driven lengths."""

    def __init__(self, length_generator: NumberGenerator, rng: random.Random | None = None):
        super().__init__()
        self._length_generator = length_generator
        self._rng = rng or default_rng()

    def next_value(self) -> str:
        length = max(0, self._length_generator.next_value())
        rng = self._rng
        value = "".join(rng.choice(_ALPHABET) for _ in range(length))
        return self._remember(value)


class KeyNameGenerator:
    """Maps integer key numbers to record keys (``user12345`` style).

    Args:
        prefix: string prepended to every key (YCSB uses ``user``).
        hashed: when True the key number is FNV-hashed first, spreading
            sequentially inserted keys across the key space
            (``insertorder=hashed``); when False insertion order is
            preserved (``insertorder=ordered``), which scan-heavy
            workloads require.
        zero_padding: minimum digit count, left-padded with zeros so that
            lexicographic and numeric orderings agree.
    """

    def __init__(self, prefix: str = "user", hashed: bool = True, zero_padding: int = 1):
        if zero_padding < 1:
            raise ValueError("zero_padding must be >= 1")
        self._prefix = prefix
        self._hashed = hashed
        self._zero_padding = zero_padding

    @property
    def hashed(self) -> bool:
        return self._hashed

    def build_key(self, key_number: int) -> str:
        """Record key for ``key_number``."""
        if key_number < 0:
            raise ValueError(f"key numbers are non-negative, got {key_number}")
        value = fnv1_64(key_number) if self._hashed else key_number
        return f"{self._prefix}{value:0{self._zero_padding}d}"
