"""Multi-client benchmark coordination service.

The paper's §VII plans to adopt YCSB++'s "distributed client execution,
coordination and monitoring capabilities that are useful for running
web-scale simulations".  This module provides that capability for this
framework: a small HTTP coordination service that lets N independent
benchmark client *processes* (possibly on different hosts) run one
logical benchmark:

* **registration** — each client announces itself and receives a client
  index, from which it derives its slice of the insert key space
  (``insertstart``/``insertcount``);
* **barriers** — named rendezvous points so all clients start the load
  and the transaction phase together (skew between clients would distort
  aggregate throughput);
* **report aggregation** — clients post their run metrics; anyone can
  fetch the combined summary (total throughput, per-client rows).

Protocol (JSON bodies)::

    POST /register   {"client": "host-1"}       -> {"index": 0, "expected": 3}
    POST /barrier    {"name": "load-start", "client": "host-1"}
                                                -> {"released": false}
    GET  /barrier?name=load-start               -> {"released": true, "waiting": 2}
    POST /report     {"client": ..., "phase": ..., "operations": n,
                      "run_time_ms": t, "throughput": x, ...}
                                                -> {"received": 3}
    POST /heartbeat  {"client": "host-1"}       -> {"ok": true}
    GET  /health                                -> {"status": "ok", ...}
    GET  /summary                               -> {"clients": [...],
                                                    "total_throughput": x,
                                                    "total_operations": n}

Barriers release once ``expected`` distinct clients have arrived — where
clients that have been **marked dead** count as arrived, so one crashed
worker cannot hang every survivor at the next rendezvous.  Death is
declared by whoever supervises the clients (the scale-out engine watches
its child processes; a remote deployment can watch ``/health`` heartbeat
ages) and recorded via :meth:`CoordinationState.mark_dead`.  Clients poll
until released, which keeps the server stateless-simple (no hanging
connections).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from collections import defaultdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["CoordinationState", "CoordinationServer"]


class CoordinationState:
    """Thread-safe coordination bookkeeping (separable from HTTP)."""

    def __init__(self, expected_clients: int):
        if expected_clients < 1:
            raise ValueError("expected_clients must be >= 1")
        self.expected_clients = expected_clients
        self._lock = threading.Lock()
        self._clients: dict[str, int] = {}
        self._barriers: dict[str, set[str]] = defaultdict(set)
        self._reports: list[dict] = []
        self._heartbeats: dict[str, float] = {}
        self._dead: set[str] = set()

    # -- registration -------------------------------------------------------------

    def register(self, client: str) -> int:
        """Idempotently register ``client``; returns its stable index."""
        with self._lock:
            if client not in self._clients:
                if len(self._clients) >= self.expected_clients:
                    raise ValueError(
                        f"already have {self.expected_clients} clients; "
                        f"{client!r} is one too many"
                    )
                self._clients[client] = len(self._clients)
            return self._clients[client]

    def registered_clients(self) -> list[str]:
        with self._lock:
            return sorted(self._clients, key=self._clients.__getitem__)

    def client_index(self, client: str) -> int | None:
        """The stable index ``client`` registered under, or None."""
        with self._lock:
            return self._clients.get(client)

    # -- liveness ------------------------------------------------------------------

    def heartbeat(self, client: str) -> None:
        """Record a liveness beat from ``client`` (any name accepted)."""
        with self._lock:
            self._heartbeats[client] = time.monotonic()

    def heartbeat_ages(self) -> dict[str, float]:
        """Seconds since each client's last heartbeat."""
        now = time.monotonic()
        with self._lock:
            return {client: now - at for client, at in self._heartbeats.items()}

    def mark_dead(self, client: str) -> None:
        """Declare ``client`` dead: it counts as arrived at every barrier.

        Accepts any name — a worker that died before registering still
        has to stop blocking the survivors' rendezvous.
        """
        with self._lock:
            self._dead.add(client)

    def dead_clients(self) -> list[str]:
        with self._lock:
            return sorted(self._dead)

    # -- barriers ------------------------------------------------------------------

    def _released_locked(self, barrier: str) -> bool:
        arrived = self._barriers.get(barrier, set())
        return len(arrived | self._dead) >= self.expected_clients

    def arrive(self, barrier: str, client: str) -> bool:
        """Mark ``client`` as arrived; True when the barrier is released."""
        with self._lock:
            if client not in self._clients:
                raise KeyError(f"client {client!r} is not registered")
            self._barriers[barrier].add(client)
            return self._released_locked(barrier)

    def barrier_status(self, barrier: str) -> tuple[bool, int]:
        """(released, clients waiting) for ``barrier``."""
        with self._lock:
            arrived = len(self._barriers.get(barrier, ()))
            return self._released_locked(barrier), arrived

    # -- reports --------------------------------------------------------------------

    def submit_report(self, report: dict) -> int:
        """Store one client's phase report; returns reports received."""
        with self._lock:
            self._reports.append(dict(report))
            return len(self._reports)

    def summary(self) -> dict:
        """Aggregate of everything reported so far."""
        with self._lock:
            reports = [dict(report) for report in self._reports]
        total_operations = sum(int(r.get("operations", 0)) for r in reports)
        total_throughput = sum(float(r.get("throughput", 0.0)) for r in reports)
        failed = sum(int(r.get("failed_operations", 0)) for r in reports)
        anomaly_scores = [
            float(r["anomaly_score"])
            for r in reports
            if r.get("anomaly_score") is not None
        ]
        return {
            "clients": reports,
            "reports": len(reports),
            "total_operations": total_operations,
            "total_throughput": total_throughput,
            "total_failed_operations": failed,
            "max_anomaly_score": max(anomaly_scores) if anomaly_scores else None,
            "dead_clients": self.dead_clients(),
        }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "ReproCoordinator/1.0"

    @property
    def _state(self) -> CoordinationState:
        return self.server.coordination_state  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict | None:
        length = int(self.headers.get("Content-Length", "0"))
        if length == 0:
            return None
        try:
            document = json.loads(self.rfile.read(length))
        except json.JSONDecodeError:
            return None
        return document if isinstance(document, dict) else None

    def do_POST(self) -> None:  # noqa: N802
        parsed = urllib.parse.urlparse(self.path)
        body = self._body()
        if body is None:
            self._send(400, {"error": "JSON object body required"})
            return
        try:
            if parsed.path == "/register":
                index = self._state.register(str(body["client"]))
                self._send(
                    200, {"index": index, "expected": self._state.expected_clients}
                )
            elif parsed.path == "/barrier":
                released = self._state.arrive(str(body["name"]), str(body["client"]))
                self._send(200, {"released": released})
            elif parsed.path == "/report":
                received = self._state.submit_report(body)
                self._send(200, {"received": received})
            elif parsed.path == "/heartbeat":
                self._state.heartbeat(str(body["client"]))
                self._send(200, {"ok": True})
            else:
                self._send(404, {"error": "unknown path"})
        except (KeyError, ValueError) as exc:
            self._send(400, {"error": str(exc)})

    def do_GET(self) -> None:  # noqa: N802
        parsed = urllib.parse.urlparse(self.path)
        if parsed.path == "/barrier":
            query = urllib.parse.parse_qs(parsed.query)
            name = query.get("name", [""])[0]
            released, waiting = self._state.barrier_status(name)
            self._send(200, {"released": released, "waiting": waiting})
        elif parsed.path == "/summary":
            self._send(200, self._state.summary())
        elif parsed.path == "/clients":
            self._send(200, {"clients": self._state.registered_clients()})
        elif parsed.path == "/health":
            ages = self._state.heartbeat_ages()
            self._send(
                200,
                {
                    "status": "ok",
                    "expected": self._state.expected_clients,
                    "registered": self._state.registered_clients(),
                    "dead": self._state.dead_clients(),
                    "heartbeat_ages_s": {
                        client: round(age, 3) for client, age in ages.items()
                    },
                },
            )
        else:
            self._send(404, {"error": "unknown path"})


class CoordinationServer:
    """Serves a :class:`CoordinationState` over HTTP on a background thread."""

    def __init__(self, expected_clients: int, host: str = "127.0.0.1", port: int = 0):
        self.state = CoordinationState(expected_clients)
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.coordination_state = self.state  # type: ignore[attr-defined]
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[0], self._server.server_address[1]

    def start(self) -> "CoordinationServer":
        if self._thread is not None:
            raise RuntimeError("coordinator already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="coordinator", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._thread.join(timeout=5)
        self._server.server_close()
        self._thread = None

    def __enter__(self) -> "CoordinationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
