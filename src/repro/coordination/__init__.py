"""Distributed-client coordination (the YCSB++ integration of §VII).

A coordination server plus client protocol that lets several independent
benchmark processes execute one logical benchmark: registration hands
each client its slice of the key space, named barriers align phase
starts, and reports aggregate into one combined summary.
"""

from .client import CoordinationError, CoordinatorClient
from .server import CoordinationServer, CoordinationState

__all__ = [
    "CoordinationError",
    "CoordinatorClient",
    "CoordinationServer",
    "CoordinationState",
]
