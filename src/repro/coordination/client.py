"""Client side of the benchmark coordination protocol."""

from __future__ import annotations

import http.client
import json
import time
import uuid

from ..core.client import BenchmarkResult

__all__ = ["CoordinatorClient", "CoordinationError"]


class CoordinationError(Exception):
    """The coordinator rejected a request or is unreachable."""


class CoordinatorClient:
    """Talks to a :class:`~repro.coordination.server.CoordinationServer`.

    Typical flow inside a benchmark client process::

        coordinator = CoordinatorClient(("host", 9999))
        index, expected = coordinator.register()
        # derive this client's keyspace slice from (index, expected)
        coordinator.wait_barrier("load-start")
        ... load ...
        coordinator.wait_barrier("run-start")
        result = client.run()
        coordinator.submit_result("run", result)
    """

    def __init__(
        self,
        address: tuple[str, int],
        client_id: str | None = None,
        timeout_s: float = 10.0,
        poll_interval_s: float = 0.05,
        sleep=time.sleep,
    ):
        self._host, self._port = address
        self.client_id = client_id or f"client-{uuid.uuid4().hex[:8]}"
        self._timeout_s = timeout_s
        self._poll_interval_s = poll_interval_s
        self._sleep = sleep

    # -- transport ------------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self._timeout_s
        )
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            document = json.loads(response.read() or b"{}")
            if response.status != 200:
                raise CoordinationError(
                    f"{method} {path} -> HTTP {response.status}: "
                    f"{document.get('error', 'unknown error')}"
                )
            return document
        except (http.client.HTTPException, ConnectionError, OSError) as exc:
            raise CoordinationError(
                f"coordinator {self._host}:{self._port} unreachable: {exc}"
            ) from exc
        finally:
            connection.close()

    # -- protocol --------------------------------------------------------------------

    def register(self) -> tuple[int, int]:
        """Announce this client; returns (client index, expected clients)."""
        document = self._request("POST", "/register", {"client": self.client_id})
        return int(document["index"]), int(document["expected"])

    def wait_barrier(self, name: str, timeout_s: float = 120.0) -> None:
        """Arrive at ``name`` and block (polling) until everyone has."""
        document = self._request(
            "POST", "/barrier", {"name": name, "client": self.client_id}
        )
        if document.get("released"):
            return
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            status = self._request("GET", f"/barrier?name={name}")
            if status.get("released"):
                return
            self._sleep(self._poll_interval_s)
        raise CoordinationError(
            f"barrier {name!r} did not release within {timeout_s:.0f}s"
        )

    def heartbeat(self) -> None:
        """Tell the coordinator this client is still alive."""
        self._request("POST", "/heartbeat", {"client": self.client_id})

    def submit_result(self, phase: str, result: BenchmarkResult) -> int:
        """Report a finished phase; returns how many reports the
        coordinator now holds."""
        report = {
            "client": self.client_id,
            "phase": phase,
            "operations": result.operations,
            "failed_operations": result.failed_operations,
            "run_time_ms": result.run_time_ms,
            "throughput": result.throughput,
            "anomaly_score": result.anomaly_score,
            "validation_passed": (
                result.validation.passed if result.validation else None
            ),
        }
        document = self._request("POST", "/report", report)
        return int(document["received"])

    def summary(self) -> dict:
        """The aggregate of all reports submitted so far."""
        return self._request("GET", "/summary")

    @staticmethod
    def keyspace_slice(index: int, expected: int, record_count: int) -> tuple[int, int]:
        """(insertstart, insertcount) for client ``index`` of ``expected``.

        Contiguous, exhaustive, near-even partition of ``record_count``
        keys — the same scheme YCSB uses across distributed loaders.
        """
        if not 0 <= index < expected:
            raise ValueError(f"index {index} out of range for {expected} clients")
        base = record_count // expected
        remainder = record_count % expected
        start = index * base + min(index, remainder)
        count = base + (1 if index < remainder else 0)
        return start, count
