"""Tier 6 consistency machinery: anomaly scores, dependency graphs,
staleness probes."""

from .anomaly import AnomalyReport, InvariantCheck, simple_anomaly_score
from .depgraph import Dependency, ExecutionRecorder, SerializationGraph
from .recording import RecordingDB
from .staleness import StalenessProbe, StalenessSample

__all__ = [
    "AnomalyReport",
    "InvariantCheck",
    "simple_anomaly_score",
    "Dependency",
    "ExecutionRecorder",
    "SerializationGraph",
    "RecordingDB",
    "StalenessProbe",
    "StalenessSample",
]
