"""Anomaly quantification (Tier 6 metrics).

The paper's §IV-C.3 defines the *simple anomaly score*

    gamma = |S_initial - S_final| / n

— drift in an application invariant per executed operation.  This module
provides that computation as a reusable function plus a small accumulator
for workloads that track several invariants at once.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["simple_anomaly_score", "InvariantCheck", "AnomalyReport"]


def simple_anomaly_score(initial_sum: float, final_sum: float, operations: int) -> float:
    """The paper's gamma: ``|S_initial - S_final| / n``.

    ``operations`` below 1 is clamped to 1 so an empty run scores the raw
    drift rather than dividing by zero.
    """
    return abs(initial_sum - final_sum) / max(1, operations)


@dataclass(frozen=True, slots=True)
class InvariantCheck:
    """One named invariant comparison."""

    name: str
    expected: float
    observed: float
    operations: int

    @property
    def drift(self) -> float:
        return abs(self.expected - self.observed)

    @property
    def score(self) -> float:
        return simple_anomaly_score(self.expected, self.observed, self.operations)

    @property
    def consistent(self) -> bool:
        return self.expected == self.observed


@dataclass
class AnomalyReport:
    """A collection of invariant checks with an aggregate verdict."""

    checks: list[InvariantCheck]

    @property
    def passed(self) -> bool:
        return all(check.consistent for check in self.checks)

    @property
    def total_score(self) -> float:
        return sum(check.score for check in self.checks)

    def worst(self) -> InvariantCheck | None:
        """The check with the highest anomaly score, if any."""
        if not self.checks:
            return None
        return max(self.checks, key=lambda check: check.score)
