"""Serialization-graph consistency checking (Tier 6 extension).

The paper (§VI) contrasts its invariant-drift metric with the approach of
Zellag & Kemme: capture the execution trace and detect non-serializable
executions as **cycles in the transaction dependency graph**.  This module
implements that second approach so the two can corroborate each other in
tests: a CEW run whose anomaly score is zero under the transactional
binding also produces an acyclic graph, while a hand-crafted lost update
produces the classic WW/RW cycle.

Dependency edges between committed transactions, per item version order:

* **WR** (read dependency): T1 installed the version T2 read -> T1 -> T2
* **WW** (write dependency): T2 installed the version directly following
  T1's -> T1 -> T2
* **RW** (anti-dependency): T1 read a version and T2 installed the next
  one -> T1 -> T2

An execution is conflict-serializable iff the graph is acyclic.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Dependency", "SerializationGraph", "ExecutionRecorder"]


@dataclass(frozen=True, slots=True)
class Dependency:
    """One edge of the serialization graph."""

    source: str
    target: str
    kind: str  # "WR" | "WW" | "RW"
    item: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source} -{self.kind}[{self.item}]-> {self.target}"


@dataclass
class _ItemHistory:
    """Version history of one item: who wrote each version, who read it."""

    # writers[i] is the transaction that installed version i (version 0 is
    # the initial load, attributed to the pseudo-transaction "<initial>").
    writers: list[str] = field(default_factory=lambda: ["<initial>"])
    readers: dict[int, set[str]] = field(default_factory=lambda: defaultdict(set))


class SerializationGraph:
    """Builds the dependency graph from recorded reads and writes."""

    def __init__(self) -> None:
        self._items: dict[str, _ItemHistory] = defaultdict(_ItemHistory)
        self._transactions: set[str] = set()

    # -- recording ----------------------------------------------------------------

    def record_read(self, txid: str, item: str, version: int) -> None:
        """``txid`` read version ``version`` of ``item`` (0 = initial)."""
        if version < 0:
            raise ValueError(f"version must be >= 0, got {version}")
        self._transactions.add(txid)
        self._items[item].readers[version].add(txid)

    def record_write(self, txid: str, item: str) -> int:
        """``txid`` installed the next version of ``item``; returns its index."""
        self._transactions.add(txid)
        history = self._items[item]
        history.writers.append(txid)
        return len(history.writers) - 1

    @property
    def transactions(self) -> set[str]:
        return set(self._transactions)

    # -- analysis -------------------------------------------------------------------

    def dependencies(self) -> list[Dependency]:
        """All WR, WW and RW edges (self-edges are skipped)."""
        edges: list[Dependency] = []

        def add(source: str, target: str, kind: str, item: str) -> None:
            if source != target and source != "<initial>":
                edges.append(Dependency(source, target, kind, item))

        for item, history in self._items.items():
            for version, writer in enumerate(history.writers):
                for reader in history.readers.get(version, ()):
                    add(writer, reader, "WR", item)
                if version + 1 < len(history.writers):
                    next_writer = history.writers[version + 1]
                    add(writer, next_writer, "WW", item)
                    for reader in history.readers.get(version, ()):
                        add(reader, next_writer, "RW", item)
        return edges

    def find_cycles(self) -> list[list[str]]:
        """Strongly connected components with more than one transaction.

        Tarjan's algorithm, iterative to stay clear of recursion limits on
        long histories.  Each returned component is a set of transactions
        that participate in at least one dependency cycle.
        """
        adjacency: dict[str, set[str]] = defaultdict(set)
        for edge in self.dependencies():
            adjacency[edge.source].add(edge.target)
        index_of: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        components: list[list[str]] = []

        for root in list(adjacency):
            if root in index_of:
                continue
            work = [(root, iter(adjacency[root]))]
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index_of:
                        index_of[child] = lowlink[child] = counter
                        counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(adjacency[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index_of[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index_of[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))
        return components

    @property
    def is_serializable(self) -> bool:
        """True when the dependency graph is acyclic."""
        return not self.find_cycles()


class ExecutionRecorder:
    """Thread-safe convenience front end for live recording.

    Client code brackets work with :meth:`begin`/:meth:`commit` and calls
    :meth:`on_read`/:meth:`on_write` in between; aborted transactions are
    discarded wholesale (they cannot create dependencies).
    """

    def __init__(self) -> None:
        self._graph = SerializationGraph()
        self._lock = threading.Lock()
        self._pending: dict[str, list[tuple[str, str, int]]] = {}
        self._current_version: dict[str, int] = defaultdict(int)

    def begin(self, txid: str) -> None:
        with self._lock:
            if txid in self._pending:
                raise ValueError(f"transaction {txid!r} already recording")
            self._pending[txid] = []

    def on_read(self, txid: str, item: str) -> None:
        """Record that ``txid`` read the currently committed version."""
        with self._lock:
            self._pending[txid].append(("read", item, self._current_version[item]))

    def on_write(self, txid: str, item: str) -> None:
        """Record a write intent; the version is assigned at commit."""
        with self._lock:
            self._pending[txid].append(("write", item, -1))

    def abort(self, txid: str) -> None:
        with self._lock:
            self._pending.pop(txid, None)

    def commit(self, txid: str) -> None:
        """Publish ``txid``'s reads/writes into the graph, in commit order."""
        with self._lock:
            operations = self._pending.pop(txid, [])
            for kind, item, version in operations:
                if kind == "read":
                    self._graph.record_read(txid, item, version)
                else:
                    new_version = self._graph.record_write(txid, item)
                    self._current_version[item] = new_version

    @property
    def graph(self) -> SerializationGraph:
        return self._graph
