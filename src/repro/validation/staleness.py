"""Staleness probing for weakly consistent stores.

The paper's related work (§VI) cites Wada et al.: measure the probability
that a read returns a stale value as a function of the time elapsed since
the latest write.  This prober implements that measurement against any
:class:`~repro.kvstore.base.KeyValueStore` — in this repository it is
exercised against :class:`~repro.kvstore.replicated.ReplicatedKVStore`,
whose replica reads lag the primary by a configured delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kvstore.base import KeyValueStore
from ..sim.clock import Clock, get_clock

__all__ = ["StalenessSample", "StalenessProbe"]

_PROBE_FIELD = "probe_value"


@dataclass(frozen=True, slots=True)
class StalenessSample:
    """One write-wait-read observation."""

    elapsed_s: float
    stale: bool


class StalenessProbe:
    """Measures stale-read probability vs time-since-write.

    For each sample: write a fresh marker value, wait ``delay_s``, read it
    back, and record whether the read returned the just-written value.

    Timing is injectable end-to-end: pass a :class:`~repro.sim.clock.Clock`
    (the ambient clock by default, so a :class:`~repro.sim.scheduler.SimClock`
    run measures in virtual time), or — for simple tests — just a ``sleep``
    callable.  With a clock, ``elapsed_s`` is the *measured* write-to-read
    gap (sleep plus store service time); with a bare ``sleep`` callable it
    falls back to the requested delay, since there is nothing to measure
    against.
    """

    def __init__(
        self,
        store: KeyValueStore,
        key: str = "~staleness-probe",
        sleep=None,
        clock: Clock | None = None,
    ):
        self._store = store
        self._key = key
        self._clock = clock
        self._sleep = sleep
        self._sequence = 0

    def _timing(self):
        clock = self._clock if self._clock is not None else get_clock()
        if self._sleep is not None:
            measure = clock.monotonic if self._clock is not None else None
            return self._sleep, measure
        return clock.sleep, clock.monotonic

    def sample(self, delay_s: float) -> StalenessSample:
        """One observation at the given write-to-read delay."""
        sleep, measure = self._timing()
        self._sequence += 1
        marker = str(self._sequence)
        started = measure() if measure is not None else None
        self._store.put(self._key, {_PROBE_FIELD: marker})
        if delay_s > 0:
            sleep(delay_s)
        observed = self._store.get(self._key)
        stale = observed is None or observed.get(_PROBE_FIELD) != marker
        elapsed_s = measure() - started if started is not None else delay_s
        return StalenessSample(elapsed_s=elapsed_s, stale=stale)

    def stale_probability(self, delay_s: float, samples: int = 50) -> float:
        """Fraction of ``samples`` reads that were stale at ``delay_s``."""
        if samples < 1:
            raise ValueError("samples must be >= 1")
        stale_count = sum(1 for _ in range(samples) if self.sample(delay_s).stale)
        return stale_count / samples

    def curve(self, delays_s: list[float], samples: int = 50) -> list[tuple[float, float]]:
        """(delay, stale probability) for each requested delay."""
        return [(delay, self.stale_probability(delay, samples)) for delay in delays_s]
