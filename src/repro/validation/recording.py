"""Recording DB wrapper: feeds the serialization graph from live runs.

Wraps any DB binding and reports every read/write to an
:class:`~repro.validation.depgraph.ExecutionRecorder`, bracketing them
with the YCSB+T transaction boundaries the client already issues.  After
a run, ``recorder.graph.find_cycles()`` detects non-serializable
executions — the Zellag & Kemme approach the paper contrasts with its
anomaly score (§VI), usable here to corroborate it: a CEW run that loses
money also shows dependency cycles.

Caveat: for *non-transactional* bindings the recorder serialises its own
bookkeeping, but the underlying operations still race — version
attribution is therefore best-effort exactly when anomalies occur, which
is fine: cycles only ever get *under*-reported, never invented, because
each recorded read observes the recorder's last committed version.
"""

from __future__ import annotations

import itertools
import threading
from collections.abc import Mapping

from ..core.db import DB
from ..core.status import Status
from .depgraph import ExecutionRecorder

__all__ = ["RecordingDB"]


class RecordingDB(DB):
    """Wraps ``inner`` and logs data accesses into ``recorder``.

    Each wrapper instance is used by one client thread (matching how the
    client builds one DB per thread); a shared ``recorder`` merges all
    threads into one graph.  Operations outside start/commit are recorded
    as single-operation transactions, mirroring auto-commit.
    """

    _ids = itertools.count(1)
    _ids_lock = threading.Lock()

    def __init__(self, inner: DB, recorder: ExecutionRecorder):
        super().__init__(inner.properties)
        self._inner = inner
        self._recorder = recorder
        self._txid: str | None = None

    def _next_txid(self) -> str:
        with self._ids_lock:
            return f"rec-{next(self._ids)}"

    def _item(self, table: str, key: str) -> str:
        return f"{table}:{key}" if table else key

    # -- transaction bracketing ---------------------------------------------------

    def start(self) -> Status:
        result = self._inner.start()
        if result.ok and self._txid is None:
            self._txid = self._next_txid()
            self._recorder.begin(self._txid)
        return result

    def commit(self) -> Status:
        result = self._inner.commit()
        if self._txid is not None:
            if result.ok:
                self._recorder.commit(self._txid)
            else:
                self._recorder.abort(self._txid)
            self._txid = None
        return result

    def abort(self) -> Status:
        result = self._inner.abort()
        if self._txid is not None:
            self._recorder.abort(self._txid)
            self._txid = None
        return result

    def _with_auto_txn(self, record_ops, call):
        """Run ``call``; record ``record_ops`` under the open or an
        auto-commit transaction depending on the outcome."""
        auto = self._txid is None
        txid = self._txid or self._next_txid()
        if auto:
            self._recorder.begin(txid)
        result = call()
        ok = result[0].ok if isinstance(result, tuple) else result.ok
        if ok:
            for kind, item in record_ops:
                if kind == "read":
                    self._recorder.on_read(txid, item)
                else:
                    self._recorder.on_write(txid, item)
        if auto:
            if ok:
                self._recorder.commit(txid)
            else:
                self._recorder.abort(txid)
        return result

    # -- data operations --------------------------------------------------------------

    def read(self, table: str, key: str, fields: set[str] | None = None):
        item = self._item(table, key)
        return self._with_auto_txn(
            [("read", item)], lambda: self._inner.read(table, key, fields)
        )

    def scan(self, table: str, start_key: str, record_count: int, fields=None):
        # Range reads are not attributed item-by-item (predicate reads are
        # out of scope for the conflict graph); pass through unrecorded.
        return self._inner.scan(table, start_key, record_count, fields)

    def update(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        item = self._item(table, key)
        return self._with_auto_txn(
            [("read", item), ("write", item)],
            lambda: self._inner.update(table, key, values),
        )

    def insert(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        item = self._item(table, key)
        return self._with_auto_txn(
            [("write", item)], lambda: self._inner.insert(table, key, values)
        )

    def delete(self, table: str, key: str) -> Status:
        item = self._item(table, key)
        return self._with_auto_txn(
            [("write", item)], lambda: self._inner.delete(table, key)
        )

    def init(self) -> None:
        self._inner.init()

    def cleanup(self) -> None:
        if self._txid is not None:
            self._recorder.abort(self._txid)
            self._txid = None
        self._inner.cleanup()
