"""Serialise, ship, and merge per-worker benchmark results.

Worker processes cannot send live objects to the parent, so a
:class:`~repro.core.client.BenchmarkResult` crosses the process boundary
as a JSON-safe dict (:func:`serialize_result` / :func:`deserialize_result`)
and the parent folds the per-worker results into one
(:func:`merge_results`).

Merge semantics:

* ``operations`` / ``failed_operations`` / ``thread_count`` — summed;
* ``run_time_ms`` — the **maximum**, because the phases run concurrently
  from a shared coordination barrier (summing would divide throughput by
  the worker count);
* ``measurements`` — containers merged pairwise; HDR histograms of equal
  precision merge losslessly (elementwise count addition), so merged
  percentiles are identical to a single combined run's;
* ``throughput_series`` — per-window counts added, aligned by index
  (every worker's window *i* starts at the same barrier release);
* ``validation`` — dropped (a per-slice validation of a shared table is
  not meaningful summed; the engine re-validates globally instead).
"""

from __future__ import annotations

from ..core.client import BenchmarkResult
from ..core.workload import ValidationResult
from ..measurements.registry import Measurements
from ..measurements.timeseries import ThroughputTimeSeries

__all__ = ["serialize_result", "deserialize_result", "merge_results"]


def serialize_result(result: BenchmarkResult) -> dict:
    """JSON-safe snapshot of a finished phase (loses live status snapshots)."""
    validation = None
    if result.validation is not None:
        validation = {
            "passed": result.validation.passed,
            "fields": [[str(name), value] for name, value in result.validation.fields],
            "anomaly_score": result.validation.anomaly_score,
        }
    series = None
    if result.throughput_series is not None:
        series = {
            "window_s": result.throughput_series.window_s,
            "counts": result.throughput_series.window_counts(),
        }
    return {
        "phase": result.phase,
        "operations": result.operations,
        "failed_operations": result.failed_operations,
        "run_time_ms": result.run_time_ms,
        "thread_count": result.thread_count,
        "errors": list(result.errors),
        "measurements": result.measurements.to_dict(),
        "validation": validation,
        "throughput_series": series,
    }


def deserialize_result(data: dict) -> BenchmarkResult:
    validation = None
    if data["validation"] is not None:
        validation = ValidationResult(
            passed=data["validation"]["passed"],
            fields=[(name, value) for name, value in data["validation"]["fields"]],
            anomaly_score=data["validation"]["anomaly_score"],
        )
    series = None
    if data["throughput_series"] is not None:
        series = ThroughputTimeSeries.from_window_counts(
            data["throughput_series"]["window_s"],
            data["throughput_series"]["counts"],
        )
    return BenchmarkResult(
        phase=data["phase"],
        operations=data["operations"],
        failed_operations=data["failed_operations"],
        run_time_ms=data["run_time_ms"],
        measurements=Measurements.from_dict(data["measurements"]),
        validation=validation,
        thread_count=data["thread_count"],
        errors=list(data["errors"]),
        throughput_series=series,
    )


def merge_results(results: list[BenchmarkResult]) -> BenchmarkResult:
    """Fold per-worker results of one concurrent phase into a single report."""
    if not results:
        raise ValueError("cannot merge zero results")
    phases = {result.phase for result in results}
    if len(phases) != 1:
        raise ValueError(f"cannot merge results from different phases: {sorted(phases)}")

    merged_measurements = Measurements.from_dict(results[0].measurements.to_dict())
    for result in results[1:]:
        merged_measurements.merge_from(result.measurements)

    merged_series: ThroughputTimeSeries | None = None
    for result in results:
        if result.throughput_series is None:
            continue
        if merged_series is None:
            merged_series = ThroughputTimeSeries.from_window_counts(
                result.throughput_series.window_s,
                result.throughput_series.window_counts(),
            )
        else:
            merged_series.merge_from(result.throughput_series)

    errors: list[str] = []
    for index, result in enumerate(results):
        errors.extend(f"worker {index}: {error}" for error in result.errors)

    return BenchmarkResult(
        phase=results[0].phase,
        operations=sum(result.operations for result in results),
        failed_operations=sum(result.failed_operations for result in results),
        run_time_ms=max(result.run_time_ms for result in results),
        measurements=merged_measurements,
        validation=None,
        thread_count=sum(result.thread_count for result in results),
        errors=errors,
        throughput_series=merged_series,
    )
