"""The multi-process scale-out engine.

Spawns N worker processes (each the ordinary single-process client),
wires them to one coordination server for barrier-synchronised phase
starts and keyspace sharding, optionally serves the backing store over
HTTP from the parent, and merges the per-worker results into one report.

Process model::

    parent ──┬── KVStoreHTTPServer (embedded store, optional)
             ├── CoordinationServer (register / barriers / reports)
             ├── worker 0 ──┐
             ├── worker 1 ──┼── HttpKVStore ──> the one shared store
             └── worker N-1 ┘

Workers are started with the ``spawn`` method: the parent runs HTTP
server threads, and forking a multi-threaded CPython process is a
deadlock lottery.  Results cross back over a multiprocessing queue as
JSON-safe dicts (see :mod:`repro.scaleout.merge`).

After the run phase the parent re-validates **globally** on the shared
store — per-worker validations race each other mid-run and are dropped
by the merge; the parent's validation runs after every worker has
finished, so it is the authoritative closed-economy check.

Worker death: the engine polls the result queue with a short timeout and
checks every child process between polls.  A worker that exits without
delivering all its phase results is declared dead — it is marked dead at
the coordinator (so the survivors' barriers release instead of hanging),
its keyspace slice is recorded as lost, and per ``spec.on_worker_death``
the run either completes **degraded** (merged report from the survivors,
``degraded=True``, global validation still run — on a raw binding it
shows exactly what the death cost) or **fails fast** with
:class:`WorkerDeathError` after terminating the survivors.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field

from ..coordination.client import CoordinatorClient
from ..coordination.server import CoordinationServer
from ..core.client import BenchmarkResult
from ..core.db import MeasuredDB, create_db
from ..core.properties import Properties
from ..core.workload import ValidationResult
from ..http.server import KVStoreHTTPServer
from ..kvstore.base import KeyValueStore
from ..kvstore.memory import InMemoryKVStore
from ..measurements.registry import Measurements
from .merge import deserialize_result, merge_results
from .worker import worker_main

__all__ = ["ScaleoutSpec", "ScaleoutResult", "WorkerDeathError", "run_scaleout"]


class WorkerDeathError(RuntimeError):
    """A worker died and ``on_worker_death="fail_fast"`` was requested."""

    def __init__(self, dead_workers: list[str]):
        super().__init__(f"worker(s) died mid-run: {', '.join(dead_workers)}")
        self.dead_workers = list(dead_workers)


@dataclass
class ScaleoutSpec:
    """What to run and how to spread it.

    Attributes:
        processes: worker process count (each runs ``threadcount``
            threads of its own).
        db: DB binding alias the *workers* use (``raw_http``,
            ``txn_http``, or a dotted class path).
        properties: benchmark properties passed to every worker.
            ``recordcount`` is global (sharded across workers);
            ``operationcount`` is **per worker**.
        phases: phase names in order, subset of ``("load", "run")``.
        store_address: ``(host, port)`` of an external HTTP store; when
            None the engine serves ``store`` (or a fresh in-memory store)
            itself.
        timeout_s: overall ceiling on waiting for worker results.
        on_worker_death: ``"degraded"`` completes the run on the
            survivors and flags the merged result; ``"fail_fast"``
            terminates everything and raises :class:`WorkerDeathError`.
        poll_interval_s: result-queue poll granularity — also how often
            worker liveness is checked.
    """

    processes: int
    db: str = "raw_http"
    properties: dict = field(default_factory=dict)
    phases: tuple[str, ...] = ("load", "run")
    store_address: tuple[str, int] | None = None
    timeout_s: float = 120.0
    on_worker_death: str = "degraded"
    poll_interval_s: float = 0.25


@dataclass
class ScaleoutResult:
    """Merged view of one scale-out run."""

    load: BenchmarkResult | None
    run: BenchmarkResult | None
    #: phase -> per-worker results, in worker order where available.
    per_worker: dict[str, list[BenchmarkResult]]
    #: the coordination server's aggregate of submitted reports.
    coordinator_summary: dict
    #: authoritative post-run validation on the shared store (CEW: the
    #: global anomaly score), None when validation was not applicable.
    validation: ValidationResult | None
    worker_errors: list[str]
    #: True when at least one worker died before delivering its results.
    degraded: bool = False
    #: names of workers that died, in detection order.
    dead_workers: list[str] = field(default_factory=list)
    #: keyspace slices the dead workers owned: ``{"worker": name,
    #: "insertstart": s, "insertcount": n}``; start/count are None for a
    #: worker that died before registering (it owned no slice yet).
    lost_shards: list[dict] = field(default_factory=list)

    @property
    def anomaly_score(self) -> float | None:
        return self.validation.anomaly_score if self.validation else None


def _global_validation(
    spec: ScaleoutSpec, address: tuple[str, int], total_operations: int
) -> ValidationResult | None:
    """Validate the shared store after all workers have finished.

    Rebuilds the workload in the parent (same properties, no keyspace
    slice) and runs its validation stage against the store over HTTP.
    The anomaly-score denominator is the *total* operation count every
    worker executed, matching the paper's per-operation drift definition.
    """
    from ..core.cli import _build_workload

    properties = Properties()
    for key, value in spec.properties.items():
        properties.set(key, value)
    properties.set("http.host", address[0])
    properties.set("http.port", address[1])
    workload = _build_workload(properties)
    workload.init(properties, Measurements())
    operations_lock = getattr(workload, "_operations_lock", None)
    if operations_lock is not None:
        with operations_lock:
            workload._operations_executed = total_operations
    db = MeasuredDB(create_db(spec.db, properties), Measurements())
    db.init()
    try:
        return workload.validate(db)
    finally:
        db.cleanup()
        workload.cleanup()


def run_scaleout(spec: ScaleoutSpec, store: KeyValueStore | None = None) -> ScaleoutResult:
    """Run a benchmark across ``spec.processes`` real worker processes.

    ``store`` backs the embedded HTTP server when ``spec.store_address``
    is None (default: a fresh :class:`~repro.kvstore.memory.
    InMemoryKVStore`).  Returns the merged per-phase results plus the
    parent's authoritative global validation.
    """
    if spec.processes < 1:
        raise ValueError("need at least one worker process")
    unknown = [phase for phase in spec.phases if phase not in ("load", "run")]
    if unknown:
        raise ValueError(f"unknown phases {unknown}; expected load/run")
    if spec.on_worker_death not in ("degraded", "fail_fast"):
        raise ValueError(
            f"on_worker_death must be 'degraded' or 'fail_fast', "
            f"got {spec.on_worker_death!r}"
        )

    properties = dict(spec.properties)
    record_count = int(properties.get("recordcount", 1000))
    total_cash = properties.get("totalcash")
    if total_cash is not None and int(total_cash) % record_count != 0:
        # CEW spreads totalcash % recordcount extra dollars over the
        # first accounts *of each keyspace slice*; with several slices
        # the loaded sum would exceed totalcash and every validation
        # would flag a phantom anomaly.
        raise ValueError(
            "totalcash must be divisible by recordcount for multi-process "
            f"runs ({total_cash} % {record_count} != 0)"
        )

    server: KVStoreHTTPServer | None = None
    if spec.store_address is None:
        server = KVStoreHTTPServer(store if store is not None else InMemoryKVStore())
        server.start()
        address = server.address
    else:
        address = spec.store_address
    properties.setdefault("http.host", address[0])
    properties.setdefault("http.port", address[1])

    coordinator = CoordinationServer(expected_clients=spec.processes)
    coordinator.start()

    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    workers = []
    try:
        for index in range(spec.processes):
            worker_spec = {
                "worker_id": f"worker-{index}",
                "coordinator": list(coordinator.address),
                "db": spec.db,
                "phases": list(spec.phases),
                "properties": properties,
            }
            process = context.Process(
                target=worker_main, args=(worker_spec, queue), name=worker_spec["worker_id"]
            )
            process.start()
            workers.append(process)

        remaining = {process.name: len(spec.phases) for process in workers}
        by_phase: dict[str, list[BenchmarkResult]] = {phase: [] for phase in spec.phases}
        errors: list[str] = []
        dead_workers: list[str] = []

        def handle(message: dict) -> None:
            name = message["worker"]
            if "error" in message:
                errors.append(f"{name}: {message['error']}")
                # A failed worker sends exactly one message regardless of
                # the remaining phases — stop expecting the rest of its.
                remaining[name] = 0
            else:
                by_phase[message["phase"]].append(
                    deserialize_result(message["result"])
                )
                remaining[name] = max(0, remaining.get(name, 0) - 1)

        deadline = time.monotonic() + spec.timeout_s
        while sum(remaining.values()) > 0:
            if time.monotonic() > deadline:
                waiting = sorted(name for name, left in remaining.items() if left)
                errors.append(
                    f"timed out after {spec.timeout_s:.0f}s waiting for "
                    f"results from: {', '.join(waiting)}"
                )
                break
            try:
                handle(queue.get(timeout=spec.poll_interval_s))
                continue
            except queue_module.Empty:
                pass
            except Exception as exc:  # broken pipe on dying workers
                errors.append(f"result queue failed: {exc}")
                break
            # Nothing arrived this interval — check worker liveness.
            for process in workers:
                if remaining.get(process.name, 0) == 0 or process.is_alive():
                    continue
                # The process exited.  Its final messages may still sit in
                # the queue's pipe; drain before declaring anything lost.
                while True:
                    try:
                        handle(queue.get(timeout=0.2))
                    except queue_module.Empty:
                        break
                if remaining.get(process.name, 0) == 0:
                    continue
                # Dead for real: it owes results it can never deliver.
                dead_workers.append(process.name)
                remaining[process.name] = 0
                # Count it as arrived at every barrier so the survivors'
                # next rendezvous releases instead of hanging.
                coordinator.state.mark_dead(process.name)
                errors.append(
                    f"{process.name}: died with exit code {process.exitcode} "
                    f"before delivering all results"
                )
                if spec.on_worker_death == "fail_fast":
                    raise WorkerDeathError(dead_workers)

        for process in workers:
            process.join(timeout=spec.timeout_s)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
                errors.append(f"{process.name}: terminated after timeout")

        lost_shards: list[dict] = []
        for name in dead_workers:
            index = coordinator.state.client_index(name)
            if index is None:  # died before registering: owned no slice yet
                lost_shards.append(
                    {"worker": name, "insertstart": None, "insertcount": None}
                )
            else:
                start, count = CoordinatorClient.keyspace_slice(
                    index, spec.processes, record_count
                )
                lost_shards.append(
                    {"worker": name, "insertstart": start, "insertcount": count}
                )

        merged: dict[str, BenchmarkResult | None] = {"load": None, "run": None}
        for phase, results in by_phase.items():
            if results:
                merged[phase] = merge_results(results)

        validation: ValidationResult | None = None
        if "run" in spec.phases and merged["run"] is not None:
            # Run even in degraded mode: on a transactional binding the
            # store should still validate (a dead worker aborts, never
            # half-commits); on a raw binding the validation quantifies
            # exactly what the death cost.  The denominator undercounts
            # by whatever the dead worker executed before dying — those
            # operations were never reported.
            total_operations = merged["run"].operations
            try:
                validation = _global_validation(spec, address, total_operations)
            except Exception as exc:  # noqa: BLE001 - surfaced, not fatal
                errors.append(f"global validation failed: {type(exc).__name__}: {exc}")

        summary = coordinator.state.summary()
    finally:
        for process in workers:
            if process.is_alive():
                process.terminate()
        coordinator.stop()
        if server is not None:
            server.stop()

    return ScaleoutResult(
        load=merged["load"],
        run=merged["run"],
        per_worker=by_phase,
        coordinator_summary=summary,
        validation=validation,
        worker_errors=errors,
        degraded=bool(dead_workers),
        dead_workers=dead_workers,
        lost_shards=lost_shards,
    )
