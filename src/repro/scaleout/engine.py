"""The multi-process scale-out engine.

Spawns N worker processes (each the ordinary single-process client),
wires them to one coordination server for barrier-synchronised phase
starts and keyspace sharding, optionally serves the backing store over
HTTP from the parent, and merges the per-worker results into one report.

Process model::

    parent ──┬── KVStoreHTTPServer (embedded store, optional)
             ├── CoordinationServer (register / barriers / reports)
             ├── worker 0 ──┐
             ├── worker 1 ──┼── HttpKVStore ──> the one shared store
             └── worker N-1 ┘

Workers are started with the ``spawn`` method: the parent runs HTTP
server threads, and forking a multi-threaded CPython process is a
deadlock lottery.  Results cross back over a multiprocessing queue as
JSON-safe dicts (see :mod:`repro.scaleout.merge`).

After the run phase the parent re-validates **globally** on the shared
store — per-worker validations race each other mid-run and are dropped
by the merge; the parent's validation runs after every worker has
finished, so it is the authoritative closed-economy check.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

from ..coordination.server import CoordinationServer
from ..core.client import BenchmarkResult
from ..core.db import MeasuredDB, create_db
from ..core.properties import Properties
from ..core.workload import ValidationResult
from ..http.server import KVStoreHTTPServer
from ..kvstore.base import KeyValueStore
from ..kvstore.memory import InMemoryKVStore
from ..measurements.registry import Measurements
from .merge import deserialize_result, merge_results
from .worker import worker_main

__all__ = ["ScaleoutSpec", "ScaleoutResult", "run_scaleout"]


@dataclass
class ScaleoutSpec:
    """What to run and how to spread it.

    Attributes:
        processes: worker process count (each runs ``threadcount``
            threads of its own).
        db: DB binding alias the *workers* use (``raw_http``,
            ``txn_http``, or a dotted class path).
        properties: benchmark properties passed to every worker.
            ``recordcount`` is global (sharded across workers);
            ``operationcount`` is **per worker**.
        phases: phase names in order, subset of ``("load", "run")``.
        store_address: ``(host, port)`` of an external HTTP store; when
            None the engine serves ``store`` (or a fresh in-memory store)
            itself.
        timeout_s: per-phase ceiling on waiting for worker results.
    """

    processes: int
    db: str = "raw_http"
    properties: dict = field(default_factory=dict)
    phases: tuple[str, ...] = ("load", "run")
    store_address: tuple[str, int] | None = None
    timeout_s: float = 120.0


@dataclass
class ScaleoutResult:
    """Merged view of one scale-out run."""

    load: BenchmarkResult | None
    run: BenchmarkResult | None
    #: phase -> per-worker results, in worker order where available.
    per_worker: dict[str, list[BenchmarkResult]]
    #: the coordination server's aggregate of submitted reports.
    coordinator_summary: dict
    #: authoritative post-run validation on the shared store (CEW: the
    #: global anomaly score), None when validation was not applicable.
    validation: ValidationResult | None
    worker_errors: list[str]

    @property
    def anomaly_score(self) -> float | None:
        return self.validation.anomaly_score if self.validation else None


def _global_validation(
    spec: ScaleoutSpec, address: tuple[str, int], total_operations: int
) -> ValidationResult | None:
    """Validate the shared store after all workers have finished.

    Rebuilds the workload in the parent (same properties, no keyspace
    slice) and runs its validation stage against the store over HTTP.
    The anomaly-score denominator is the *total* operation count every
    worker executed, matching the paper's per-operation drift definition.
    """
    from ..core.cli import _build_workload

    properties = Properties()
    for key, value in spec.properties.items():
        properties.set(key, value)
    properties.set("http.host", address[0])
    properties.set("http.port", address[1])
    workload = _build_workload(properties)
    workload.init(properties, Measurements())
    operations_lock = getattr(workload, "_operations_lock", None)
    if operations_lock is not None:
        with operations_lock:
            workload._operations_executed = total_operations
    db = MeasuredDB(create_db(spec.db, properties), Measurements())
    db.init()
    try:
        return workload.validate(db)
    finally:
        db.cleanup()
        workload.cleanup()


def run_scaleout(spec: ScaleoutSpec, store: KeyValueStore | None = None) -> ScaleoutResult:
    """Run a benchmark across ``spec.processes`` real worker processes.

    ``store`` backs the embedded HTTP server when ``spec.store_address``
    is None (default: a fresh :class:`~repro.kvstore.memory.
    InMemoryKVStore`).  Returns the merged per-phase results plus the
    parent's authoritative global validation.
    """
    if spec.processes < 1:
        raise ValueError("need at least one worker process")
    unknown = [phase for phase in spec.phases if phase not in ("load", "run")]
    if unknown:
        raise ValueError(f"unknown phases {unknown}; expected load/run")

    properties = dict(spec.properties)
    record_count = int(properties.get("recordcount", 1000))
    total_cash = properties.get("totalcash")
    if total_cash is not None and int(total_cash) % record_count != 0:
        # CEW spreads totalcash % recordcount extra dollars over the
        # first accounts *of each keyspace slice*; with several slices
        # the loaded sum would exceed totalcash and every validation
        # would flag a phantom anomaly.
        raise ValueError(
            "totalcash must be divisible by recordcount for multi-process "
            f"runs ({total_cash} % {record_count} != 0)"
        )

    server: KVStoreHTTPServer | None = None
    if spec.store_address is None:
        server = KVStoreHTTPServer(store if store is not None else InMemoryKVStore())
        server.start()
        address = server.address
    else:
        address = spec.store_address
    properties.setdefault("http.host", address[0])
    properties.setdefault("http.port", address[1])

    coordinator = CoordinationServer(expected_clients=spec.processes)
    coordinator.start()

    context = multiprocessing.get_context("spawn")
    queue = context.Queue()
    workers = []
    try:
        for index in range(spec.processes):
            worker_spec = {
                "worker_id": f"worker-{index}",
                "coordinator": list(coordinator.address),
                "db": spec.db,
                "phases": list(spec.phases),
                "properties": properties,
            }
            process = context.Process(
                target=worker_main, args=(worker_spec, queue), name=worker_spec["worker_id"]
            )
            process.start()
            workers.append(process)

        expected_messages = spec.processes * len(spec.phases)
        by_phase: dict[str, list[BenchmarkResult]] = {phase: [] for phase in spec.phases}
        errors: list[str] = []
        received = 0
        while received < expected_messages:
            try:
                message = queue.get(timeout=spec.timeout_s)
            except Exception as exc:  # queue.Empty, broken pipe on dead workers
                errors.append(f"timed out waiting for worker results: {exc}")
                break
            received += 1
            if "error" in message:
                errors.append(f"{message['worker']}: {message['error']}")
                # A dead worker sends exactly one message regardless of
                # the remaining phases — stop expecting the rest of its.
                expected_messages -= len(spec.phases) - 1
                continue
            by_phase[message["phase"]].append(deserialize_result(message["result"]))

        for process in workers:
            process.join(timeout=spec.timeout_s)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
                errors.append(f"{process.name}: terminated after timeout")

        merged: dict[str, BenchmarkResult | None] = {"load": None, "run": None}
        for phase, results in by_phase.items():
            if results:
                merged[phase] = merge_results(results)

        validation: ValidationResult | None = None
        if "run" in spec.phases and merged["run"] is not None and not errors:
            total_operations = merged["run"].operations
            try:
                validation = _global_validation(spec, address, total_operations)
            except Exception as exc:  # noqa: BLE001 - surfaced, not fatal
                errors.append(f"global validation failed: {type(exc).__name__}: {exc}")

        summary = coordinator.state.summary()
    finally:
        for process in workers:
            if process.is_alive():
                process.terminate()
        coordinator.stop()
        if server is not None:
            server.stop()

    return ScaleoutResult(
        load=merged["load"],
        run=merged["run"],
        per_worker=by_phase,
        coordinator_summary=summary,
        validation=validation,
        worker_errors=errors,
    )
