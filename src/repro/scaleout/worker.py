"""Worker-process entry point for the scale-out engine.

:func:`worker_main` is what every spawned process runs: register with
the coordinator, take a keyspace slice, rendezvous at the phase barriers,
run the ordinary :class:`~repro.core.client.Client` phases, and ship each
serialised :class:`~repro.core.client.BenchmarkResult` back to the parent
through a multiprocessing queue.

The function must stay module-level and import-clean: the engine uses the
``spawn`` start method (fork is unsafe with the parent's HTTP server
threads), so the child re-imports this module to find its target.
"""

from __future__ import annotations

import traceback

from ..coordination.client import CoordinatorClient
from ..core.cli import _build_workload
from ..core.db import create_db
from ..core.properties import Properties
from ..measurements.registry import Measurements
from .merge import serialize_result

__all__ = ["worker_main"]


def worker_main(spec: dict, queue) -> None:
    """Run one worker's share of the benchmark.

    ``spec`` is a plain dict (it crosses the process boundary):

    * ``worker_id`` — this worker's stable name;
    * ``coordinator`` — ``[host, port]`` of the coordination server;
    * ``db`` — binding alias or dotted class path (e.g. ``raw_http``);
    * ``phases`` — subset of ``("load", "run")``, in order;
    * ``properties`` — benchmark properties; ``operationcount`` is
      per-worker, ``recordcount`` is global (sliced by worker index).

    One message per phase is put on ``queue``:
    ``{"worker": id, "phase": name, "result": <serialised result>}``, or a
    single ``{"worker": id, "error": traceback}`` if the worker dies.
    """
    worker_id = spec["worker_id"]
    try:
        properties = Properties()
        for key, value in spec["properties"].items():
            properties.set(key, value)

        host, port = spec["coordinator"]
        coordinator = CoordinatorClient((host, port), client_id=worker_id)
        index, expected = coordinator.register()
        start, count = CoordinatorClient.keyspace_slice(
            index, expected, properties.get_int("recordcount", 1000)
        )
        # Each worker loads its own contiguous slice; the transaction
        # phase runs over the whole keyspace.
        properties.set("insertstart", start)
        properties.set("insertcount", count)

        measurements = Measurements.from_properties(properties)
        workload = _build_workload(properties)
        workload.init(properties, measurements)

        def db_factory():
            return create_db(spec["db"], properties)

        from ..core.client import Client

        client = Client(workload, db_factory, properties, measurements)
        try:
            for phase in spec["phases"]:
                coordinator.wait_barrier(f"{phase}-start")
                result = client.load() if phase == "load" else client.run()
                coordinator.submit_result(phase, result)
                queue.put(
                    {
                        "worker": worker_id,
                        "phase": phase,
                        "result": serialize_result(result),
                    }
                )
        finally:
            workload.cleanup()
    except BaseException:  # noqa: BLE001 - the parent needs the traceback
        queue.put({"worker": worker_id, "error": traceback.format_exc()})
