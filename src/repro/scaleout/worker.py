"""Worker-process entry point for the scale-out engine.

:func:`worker_main` is what every spawned process runs: register with
the coordinator, take a keyspace slice, rendezvous at the phase barriers,
run the ordinary :class:`~repro.core.client.Client` phases, and ship each
serialised :class:`~repro.core.client.BenchmarkResult` back to the parent
through a multiprocessing queue.

Liveness: once registered, the worker beats a heartbeat to the
coordinator (``POST /heartbeat``) from a daemon thread, so a remote
supervisor can spot a wedged worker from heartbeat age alone.  The local
engine additionally watches the child process itself.

Crash injection: the worker arms a :class:`~repro.recovery.crashpoints.
CrashInjector` of its own when the properties name it —

* ``crash.worker`` — the ``worker_id`` that should die;
* ``crash.worker_hits`` — comma-separated 1-based ``worker.mid_run`` hit
  numbers (default ``50``), counted over that worker's DB writes.

The injector global does not cross the ``spawn`` boundary, so the parent
cannot arm a child directly; properties are the channel.  When the
scheduled hit fires the worker dies by ``os._exit`` — no queue message,
no cleanup, heartbeats stop — exactly the failure the engine's
worker-death tolerance has to absorb.

The function must stay module-level and import-clean: the engine uses the
``spawn`` start method (fork is unsafe with the parent's HTTP server
threads), so the child re-imports this module to find its target.
"""

from __future__ import annotations

import os
import threading
import traceback

from ..coordination.client import CoordinationError, CoordinatorClient
from ..core.cli import _build_workload
from ..core.db import DB, create_db
from ..core.properties import Properties
from ..measurements.registry import Measurements
from ..recovery.crashpoints import (
    CrashError,
    CrashInjector,
    crashpoint,
    set_crash_injector,
)
from .merge import serialize_result

__all__ = ["worker_main", "WORKER_CRASH_EXIT_CODE"]

#: Exit status of a worker killed by its armed ``worker.mid_run``
#: crashpoint — distinguishable from a genuine uncaught failure.
WORKER_CRASH_EXIT_CODE = 23


class _CrashpointDB(DB):
    """DB proxy firing ``worker.mid_run`` before every write operation.

    The scale-out workers talk to the store over HTTP bindings, which the
    in-process :class:`~repro.recovery.store.CrashpointStore` wrapper
    never sees; this proxy puts the same crashpoint at the binding layer
    instead, so a worker process can be killed mid-operation sequence.

    When the scheduled hit fires the proxy ``os._exit``\\ s the whole
    process right here: the benchmark client's worker threads treat a
    :class:`CrashError` as an in-process simulated crash and carry on,
    but a scale-out worker has to die for real — whichever thread trips
    the crashpoint takes the process with it, mid-whatever-it-was-doing.
    """

    def __init__(self, inner: DB):
        super().__init__(inner.properties)
        self._inner = inner

    @staticmethod
    def _hit() -> None:
        try:
            crashpoint("worker.mid_run")
        except CrashError:
            os._exit(WORKER_CRASH_EXIT_CODE)

    def init(self) -> None:
        self._inner.init()

    def cleanup(self) -> None:
        self._inner.cleanup()

    def counters(self) -> dict[str, int]:
        return self._inner.counters()

    def read(self, table, key, fields=None):
        return self._inner.read(table, key, fields)

    def scan(self, table, start_key, record_count, fields=None):
        return self._inner.scan(table, start_key, record_count, fields)

    def update(self, table, key, values):
        self._hit()
        return self._inner.update(table, key, values)

    def insert(self, table, key, values):
        self._hit()
        return self._inner.insert(table, key, values)

    def delete(self, table, key):
        self._hit()
        return self._inner.delete(table, key)

    def batch_insert(self, table, records):
        self._hit()
        return self._inner.batch_insert(table, records)

    def start(self):
        return self._inner.start()

    def commit(self):
        self._hit()
        return self._inner.commit()

    def abort(self):
        return self._inner.abort()


def _arm_crash(worker_id: str, properties: Properties) -> bool:
    """Install this worker's crash injector when the properties name it."""
    if properties.get_str("crash.worker", "") != worker_id:
        return False
    hits = [
        int(hit)
        for hit in properties.get_str("crash.worker_hits", "50").split(",")
        if hit.strip()
    ]
    set_crash_injector(CrashInjector({"worker.mid_run": hits}))
    return True


def _start_heartbeat(
    coordinator: CoordinatorClient, interval_s: float
) -> threading.Event:
    """Beat liveness to the coordinator until the returned event is set."""
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(interval_s):
            try:
                coordinator.heartbeat()
            except CoordinationError:
                pass  # the parent owns the coordinator; it knows if it died

    threading.Thread(target=beat, name="worker-heartbeat", daemon=True).start()
    return stop


def worker_main(spec: dict, queue) -> None:
    """Run one worker's share of the benchmark.

    ``spec`` is a plain dict (it crosses the process boundary):

    * ``worker_id`` — this worker's stable name;
    * ``coordinator`` — ``[host, port]`` of the coordination server;
    * ``db`` — binding alias or dotted class path (e.g. ``raw_http``);
    * ``phases`` — subset of ``("load", "run")``, in order;
    * ``properties`` — benchmark properties; ``operationcount`` is
      per-worker, ``recordcount`` is global (sliced by worker index).

    One message per phase is put on ``queue``:
    ``{"worker": id, "phase": name, "result": <serialised result>}``, or a
    single ``{"worker": id, "error": traceback}`` if the worker fails.  A
    worker whose armed crashpoint fires sends **nothing** and exits with
    :data:`WORKER_CRASH_EXIT_CODE` — a crash, not a failure report.
    """
    worker_id = spec["worker_id"]
    try:
        properties = Properties()
        for key, value in spec["properties"].items():
            properties.set(key, value)

        host, port = spec["coordinator"]
        coordinator = CoordinatorClient((host, port), client_id=worker_id)
        index, expected = coordinator.register()
        heartbeat_stop = _start_heartbeat(
            coordinator, properties.get_float("scaleout.heartbeat_interval_s", 0.2)
        )
        start, count = CoordinatorClient.keyspace_slice(
            index, expected, properties.get_int("recordcount", 1000)
        )
        # Each worker loads its own contiguous slice; the transaction
        # phase runs over the whole keyspace.
        properties.set("insertstart", start)
        properties.set("insertcount", count)

        armed = _arm_crash(worker_id, properties)

        measurements = Measurements.from_properties(properties)
        workload = _build_workload(properties)
        workload.init(properties, measurements)

        def db_factory():
            db = create_db(spec["db"], properties)
            return _CrashpointDB(db) if armed else db

        from ..core.client import Client

        client = Client(workload, db_factory, properties, measurements)
        try:
            for phase in spec["phases"]:
                coordinator.wait_barrier(f"{phase}-start")
                result = client.load() if phase == "load" else client.run()
                coordinator.submit_result(phase, result)
                queue.put(
                    {
                        "worker": worker_id,
                        "phase": phase,
                        "result": serialize_result(result),
                    }
                )
        finally:
            heartbeat_stop.set()
            workload.cleanup()
    except CrashError:
        # The armed crashpoint fired: die like a killed process — no
        # message, no cleanup, no flushing.  The engine must cope.
        os._exit(WORKER_CRASH_EXIT_CODE)
    except BaseException:  # noqa: BLE001 - the parent needs the traceback
        queue.put({"worker": worker_id, "error": traceback.format_exc()})
