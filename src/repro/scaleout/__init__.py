"""Multi-process scale-out: N worker processes, one merged report.

The paper's Fig. 2 scales client *threads*; past ~8 threads a single
CPython process measures the GIL, not the store.  This package spawns
real worker processes — each running the ordinary :class:`~repro.core.
client.Client` against :class:`~repro.http.client.HttpKVStore` —
synchronised through the existing coordination barriers, with the
keyspace sharded per worker index, and merges the per-worker
:class:`~repro.core.client.BenchmarkResult`s (HDR histograms included,
losslessly) into one report.
"""

from .engine import ScaleoutResult, ScaleoutSpec, WorkerDeathError, run_scaleout
from .merge import deserialize_result, merge_results, serialize_result

__all__ = [
    "ScaleoutSpec",
    "ScaleoutResult",
    "WorkerDeathError",
    "run_scaleout",
    "serialize_result",
    "deserialize_result",
    "merge_results",
]
