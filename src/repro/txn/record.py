"""Multi-version record codec.

The client-coordinated transaction layer stores everything it needs inside
ordinary key-value records, so that *any* :class:`~repro.kvstore.base.
KeyValueStore` can host transactional data with no server-side support —
the core idea of the authors' library [28].

A transactional record value is a single KV field ``_tx`` holding JSON:

.. code-block:: json

    {
      "versions": [
        {"ts": 17023, "fields": {"field0": "..."}, "deleted": false},
        {"ts": 16011, "fields": {"field0": "..."}, "deleted": false}
      ],
      "lock": {"txid": "c1-42", "primary": "store0:user55", "lease": 1234567}
    }

``versions`` is newest-first and trimmed to ``max_versions``.  ``lock`` is
present only while a transaction is committing the record; it names the
transaction, its *primary* key (where the commit decision lives) and a
lease expiry in oracle-free wall time, which is how crashed clients are
detected and recovered.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..kvstore.base import Fields

__all__ = ["Version", "LockInfo", "TxRecord", "TX_FIELD"]

#: The KV field under which the transactional record body is stored.
TX_FIELD = "_tx"


@dataclass(frozen=True, slots=True)
class Version:
    """One committed version of a record.

    ``txid`` attributes the version to the transaction that wrote it;
    the Percolator-style coordinator uses it to discover a crashed
    transaction's commit timestamp from its primary record, and the
    serialization-graph validator uses it to reconstruct who-wrote-what.
    """

    timestamp: int
    fields: Fields
    deleted: bool = False
    txid: str | None = None

    def to_dict(self) -> dict:
        document: dict = {"ts": self.timestamp, "fields": self.fields, "deleted": self.deleted}
        if self.txid is not None:
            document["txid"] = self.txid
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "Version":
        return cls(
            timestamp=int(document["ts"]),
            fields=dict(document.get("fields") or {}),
            deleted=bool(document.get("deleted", False)),
            txid=document.get("txid"),
        )


@dataclass(frozen=True, slots=True)
class LockInfo:
    """A write lock installed by a committing transaction.

    The lock carries the *staged* write intent so that any other client
    that finds a committed transaction-status record can roll this key
    forward without contacting the (possibly crashed) writer:
    ``staged`` holds the new field values, or None when the intent is a
    delete (``is_delete``).
    """

    txid: str
    primary: str
    lease_expiry_us: int
    staged: Fields | None = None
    is_delete: bool = False

    def to_dict(self) -> dict:
        return {
            "txid": self.txid,
            "primary": self.primary,
            "lease": self.lease_expiry_us,
            "staged": self.staged,
            "delete": self.is_delete,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "LockInfo":
        staged = document.get("staged")
        return cls(
            txid=str(document["txid"]),
            primary=str(document["primary"]),
            lease_expiry_us=int(document["lease"]),
            staged=dict(staged) if staged is not None else None,
            is_delete=bool(document.get("delete", False)),
        )


@dataclass
class TxRecord:
    """The decoded transactional state of one key.

    ``truncated_before`` is the commit timestamp of the newest version
    that has been trimmed away by version GC.  A snapshot older than this
    watermark cannot distinguish "key did not exist yet" from "its
    version was garbage-collected", so readers must fail such reads with
    a *snapshot too old* conflict instead of returning nothing.
    """

    versions: list[Version] = field(default_factory=list)  # newest first
    lock: LockInfo | None = None
    truncated_before: int = 0

    #: committed versions retained per record; older ones are trimmed.
    MAX_VERSIONS = 8

    # -- queries ---------------------------------------------------------------

    def latest(self) -> Version | None:
        """Newest committed version (possibly a delete marker)."""
        return self.versions[0] if self.versions else None

    def visible_at(self, timestamp: int) -> Version | None:
        """Newest version with commit timestamp <= ``timestamp``.

        This is the snapshot-read rule: a transaction started at ``ts``
        never sees versions committed after it.
        """
        for version in self.versions:
            if version.timestamp <= timestamp:
                return version
        return None

    def snapshot_too_old(self, timestamp: int) -> bool:
        """True when a read at ``timestamp`` is unanswerable because the
        version it would have seen may have been garbage-collected.

        Once any trimming has happened, every retained version is newer
        than every trimmed one — so if no retained version is visible at
        ``timestamp``, a trimmed version might have been, and the read
        must fail rather than report the key absent.
        """
        return self.truncated_before > 0 and self.visible_at(timestamp) is None

    def newest_commit_timestamp(self) -> int:
        """Commit timestamp of the newest version (0 when empty)."""
        latest = self.latest()
        return latest.timestamp if latest is not None else 0

    def is_locked(self) -> bool:
        return self.lock is not None

    # -- mutation --------------------------------------------------------------

    def apply_commit(self, timestamp: int, fields: Fields | None, txid: str | None = None) -> None:
        """Install a committed version (``fields=None`` is a delete) and
        release the lock.  Versions stay newest-first and trimmed."""
        version = Version(timestamp, dict(fields or {}), deleted=fields is None, txid=txid)
        self.versions.insert(0, version)
        self.versions.sort(key=lambda v: -v.timestamp)
        trimmed = self.versions[self.MAX_VERSIONS :]
        if trimmed:
            self.truncated_before = max(self.truncated_before, trimmed[0].timestamp)
        del self.versions[self.MAX_VERSIONS :]
        self.lock = None

    # -- codec -------------------------------------------------------------------

    def encode(self) -> Fields:
        document: dict = {"versions": [version.to_dict() for version in self.versions]}
        if self.lock is not None:
            document["lock"] = self.lock.to_dict()
        if self.truncated_before:
            document["trunc"] = self.truncated_before
        return {TX_FIELD: json.dumps(document, separators=(",", ":"))}

    @classmethod
    def decode(cls, value: Fields | None) -> "TxRecord":
        """Decode a KV value; a missing value decodes to an empty record.

        Raises:
            ValueError: when the value exists but is not a transactional
                record — mixing transactional and raw access to the same
                keys is a configuration error worth failing loudly on.
        """
        if value is None:
            return cls()
        body = value.get(TX_FIELD)
        if body is None:
            raise ValueError(
                "value is not a transactional record (missing _tx field); "
                "was this key written outside the transaction layer?"
            )
        document = json.loads(body)
        versions = [Version.from_dict(item) for item in document.get("versions", [])]
        versions.sort(key=lambda v: -v.timestamp)
        lock_doc = document.get("lock")
        lock = LockInfo.from_dict(lock_doc) if lock_doc else None
        return cls(
            versions=versions,
            lock=lock,
            truncated_before=int(document.get("trunc", 0)),
        )
