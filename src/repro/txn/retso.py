"""ReTSO-style transaction coordinator (baseline).

Implements the lock-free commit design of Junqueira et al. (DSN-W '11) as
the paper summarises it: a central **transaction status oracle (TSO)**
observes every commit, detects write-write conflicts against recently
committed transactions, and assigns commit timestamps; clients never take
locks on data records.  Reads are snapshot reads; writes are buffered and
applied only after the TSO has ruled the transaction committed.

The TSO keeps the last commit timestamp of each recently written key in a
bounded table.  When the table must evict, it tracks a *low-water mark*;
any transaction older than the mark is aborted conservatively — the same
safety valve the real system derives from its BookKeeper-backed state.

Both the timestamp service and the commit ruling live in the same central
object, so every ``begin`` and every ``commit`` costs one simulated RPC —
"the need to have a TSO and a TO for transaction commitment is a
bottleneck over a long-haul network" is directly measurable by raising
``rpc_delay_s`` (the coordinator-ablation benchmark does exactly that).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Mapping

from ..kvstore.base import Fields, KeyValueStore
from ..sim.clock import ambient_sleep
from .base import Transaction, TransactionManager, TxState
from .errors import TransactionConflict
from .manager import TSR_PREFIX, TxnStats
from .record import TxRecord

__all__ = ["TransactionStatusOracle", "RetsoLikeManager", "RetsoTransaction"]

_Address = tuple[str, str]


class TransactionStatusOracle:
    """Central conflict detector and timestamp authority.

    Args:
        max_tracked_keys: size of the recent-writes table; evictions move
            the low-water mark forward.
        rpc_delay_s: simulated network round trip per request.
    """

    def __init__(self, max_tracked_keys: int = 100_000, rpc_delay_s: float = 0.0, sleep=ambient_sleep):
        if max_tracked_keys < 1:
            raise ValueError("max_tracked_keys must be >= 1")
        self._lock = threading.Lock()
        self._timestamp = 0
        self._last_commit: OrderedDict[_Address, int] = OrderedDict()
        self._max_tracked = max_tracked_keys
        self._low_water_mark = 0
        self._rpc_delay_s = rpc_delay_s
        self._sleep = sleep
        self.requests = 0
        self.commits = 0
        self.aborts = 0

    def _pay_rpc(self) -> None:
        if self._rpc_delay_s > 0:
            self._sleep(self._rpc_delay_s)

    def begin(self) -> int:
        """Issue a start timestamp (one RPC)."""
        self._pay_rpc()
        with self._lock:
            self.requests += 1
            self._timestamp += 1
            return self._timestamp

    def last_commit_for(self, address: _Address) -> int:
        """Commit timestamp of the newest committed write to ``address``.

        Readers use this to detect the committed-but-not-yet-applied
        window: if the TSO says a commit <= their snapshot exists but the
        store does not show it yet, they must wait for the writer's apply
        phase.  Modelled as a local lookup (no RPC): ReTSO streams commit
        metadata to clients asynchronously, so the hot path is cached
        client-side.  Returns 0 for unknown (possibly evicted) keys.
        """
        with self._lock:
            return self._last_commit.get(address, 0)

    def try_commit(self, start_timestamp: int, write_set: list[_Address]) -> int | None:
        """Rule on a commit request (one RPC).

        Returns the commit timestamp, or None when a conflicting commit
        happened after ``start_timestamp`` (or the transaction predates
        the low-water mark and cannot be safely validated).
        """
        self._pay_rpc()
        with self._lock:
            self.requests += 1
            if start_timestamp < self._low_water_mark:
                self.aborts += 1
                return None
            for address in write_set:
                last = self._last_commit.get(address)
                if last is not None and last > start_timestamp:
                    self.aborts += 1
                    return None
            self._timestamp += 1
            commit_ts = self._timestamp
            for address in write_set:
                self._last_commit[address] = commit_ts
                self._last_commit.move_to_end(address)
            while len(self._last_commit) > self._max_tracked:
                _, evicted_ts = self._last_commit.popitem(last=False)
                if evicted_ts > self._low_water_mark:
                    self._low_water_mark = evicted_ts
            self.commits += 1
            return commit_ts


class RetsoLikeManager(TransactionManager):
    """Lock-free optimistic coordinator backed by a central TSO."""

    def __init__(
        self,
        stores: Mapping[str, KeyValueStore] | KeyValueStore,
        default_store: str | None = None,
        oracle: TransactionStatusOracle | None = None,
        apply_wait_retries: int = 200,
        apply_wait_s: float = 0.0005,
        sleep=ambient_sleep,
    ):
        if isinstance(stores, KeyValueStore):
            stores = {"default": stores}
        super().__init__(stores, default_store)
        self.oracle = oracle or TransactionStatusOracle()
        self.stats = TxnStats()
        self.apply_wait_retries = apply_wait_retries
        self.apply_wait_s = apply_wait_s
        self._sleep = sleep

    def begin(self) -> "RetsoTransaction":
        start_ts = self.oracle.begin()
        self.stats.bump("begun")
        return RetsoTransaction(self, f"rt-{start_ts}", start_ts)


class RetsoTransaction(Transaction):
    """Optimistic snapshot transaction; validation happens at the TSO."""

    def __init__(self, manager: RetsoLikeManager, txid: str, start_timestamp: int):
        super().__init__(txid, start_timestamp)
        self._manager = manager
        self._writes: dict[_Address, Fields | None] = {}

    def _address(self, key: str, store: str | None) -> _Address:
        name = store or self._manager.default_store_name
        if key.startswith(TSR_PREFIX):
            raise ValueError(f"keys may not start with the reserved prefix {TSR_PREFIX!r}")
        self._manager.store(name)
        return (name, key)

    # -- data operations --------------------------------------------------------------

    def read(self, key: str, store: str | None = None) -> Fields | None:
        self._require_active()
        address = self._address(key, store)
        if address in self._writes:
            staged = self._writes[address]
            return dict(staged) if staged is not None else None
        manager = self._manager
        backing = manager.store(address[0])
        # A commit the TSO approved at ts <= our snapshot may not have been
        # applied to the store yet; wait for the writer's apply phase so
        # snapshot reads never miss committed data (lock-free reads still —
        # the wait is against commit *metadata*, not a data lock).
        for _ in range(manager.apply_wait_retries):
            value = backing.get(address[1])
            record = TxRecord.decode(value) if value is not None else TxRecord()
            if record.snapshot_too_old(self.start_timestamp):
                manager.stats.bump("conflicts")
                raise TransactionConflict(
                    f"{self.txid}: snapshot too old for {key!r} (versions trimmed)"
                )
            version = record.visible_at(self.start_timestamp)
            visible_ts = version.timestamp if version is not None else 0
            expected_ts = manager.oracle.last_commit_for(address)
            if expected_ts <= self.start_timestamp and expected_ts > visible_ts:
                manager.stats.bump("read_waits")
                manager._sleep(manager.apply_wait_s)
                continue
            if version is None or version.deleted:
                return None
            return dict(version.fields)
        manager.stats.bump("conflicts")
        raise TransactionConflict(
            f"{self.txid}: committed write to {key!r} not applied within the wait budget"
        )

    def scan(
        self, start_key: str, record_count: int, store: str | None = None
    ) -> list[tuple[str, Fields]]:
        self._require_active()
        backing = self._manager.store(store or self._manager.default_store_name)
        results: list[tuple[str, Fields]] = []
        for key, value in backing.scan(start_key, record_count * 2 + 16):
            if key.startswith(TSR_PREFIX):
                continue
            record = TxRecord.decode(value)
            version = record.visible_at(self.start_timestamp)
            if version is None or version.deleted:
                continue
            results.append((key, dict(version.fields)))
            if len(results) >= record_count:
                break
        return results

    def write(self, key: str, fields: Mapping[str, str], store: str | None = None) -> None:
        self._require_active()
        self._writes[self._address(key, store)] = dict(fields)

    def delete(self, key: str, store: str | None = None) -> None:
        self._require_active()
        self._writes[self._address(key, store)] = None

    # -- outcome ------------------------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        manager = self._manager
        if not self._writes:
            self.state = TxState.COMMITTED
            manager.stats.bump("committed")
            return
        commit_ts = manager.oracle.try_commit(self.start_timestamp, sorted(self._writes))
        if commit_ts is None:
            self.state = TxState.ABORTED
            manager.stats.bump("aborted")
            manager.stats.bump("conflicts")
            raise TransactionConflict(f"{self.txid}: TSO detected a conflicting commit")
        for address, staged in sorted(self._writes.items()):
            store = manager.store(address[0])
            while True:
                versioned = store.get_with_meta(address[1])
                record = TxRecord() if versioned is None else TxRecord.decode(versioned.value)
                record.apply_commit(commit_ts, staged, txid=self.txid)
                expected = versioned.version if versioned is not None else None
                if store.put_if_version(address[1], record.encode(), expected) is not None:
                    break
        self.state = TxState.COMMITTED
        manager.stats.bump("committed")

    def abort(self) -> None:
        if self.state is not TxState.ACTIVE:
            return
        self._writes.clear()
        self.state = TxState.ABORTED
        self._manager.stats.bump("aborted")
