"""Multi-item transactions over plain key-value stores.

Three coordination designs behind one API (:class:`TransactionManager` /
:class:`Transaction`):

* :class:`ClientTransactionManager` — the paper authors' client-coordinated
  library: no central services, ordered locking, lease-based recovery.
* :class:`PercolatorLikeManager` — central timestamp oracle, primary-lock
  two-phase commit (Peng & Dabek).
* :class:`RetsoLikeManager` — central transaction status oracle, lock-free
  optimistic commit (Junqueira et al.).
"""

from .base import Transaction, TransactionManager, TxState
from .clock import HybridClock, LocalClock, TimestampOracle, TimestampSource
from .errors import (
    TransactionAborted,
    TransactionConflict,
    TransactionError,
    TransactionStateError,
    TransactionTimeout,
)
from .manager import TSR_PREFIX, ClientTransaction, ClientTransactionManager, TxnStats
from .percolator import PercolatorLikeManager, PercolatorTransaction
from .record import TX_FIELD, LockInfo, TxRecord, Version
from .retso import RetsoLikeManager, RetsoTransaction, TransactionStatusOracle

__all__ = [
    "Transaction",
    "TransactionManager",
    "TxState",
    "HybridClock",
    "LocalClock",
    "TimestampOracle",
    "TimestampSource",
    "TransactionAborted",
    "TransactionConflict",
    "TransactionError",
    "TransactionStateError",
    "TransactionTimeout",
    "TSR_PREFIX",
    "ClientTransaction",
    "ClientTransactionManager",
    "TxnStats",
    "PercolatorLikeManager",
    "PercolatorTransaction",
    "TX_FIELD",
    "LockInfo",
    "TxRecord",
    "Version",
    "RetsoLikeManager",
    "RetsoTransaction",
    "TransactionStatusOracle",
]
