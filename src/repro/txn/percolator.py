"""Percolator-style transaction coordinator (baseline).

Implements the design of Peng & Dabek (OSDI '10) as the paper summarises
it in §II-B: snapshot isolation with **both** the start and the commit
timestamp fetched from a central :class:`~repro.txn.clock.TimestampOracle`
(one RPC each), a two-phase *prewrite/commit* locking protocol with a
designated **primary** lock as the commit point, and **no deadlock
avoidance** — locks are taken in write-order, conflicts are handled by
bounded waiting and lease-expiry cleanup, exactly the behaviour the paper
criticises for WAN deployments.

Differences from Percolator proper, and why they don't matter here:

* BigTable single-row transactions are modelled by the store's
  conditional writes (``put_if_version``); each record keeps its versions
  and lock in one KV value rather than in separate columns.
* The "write" column — Percolator's start→commit timestamp mapping used
  for roll-forward — is carried as the ``txid`` attribution on committed
  versions of the primary record.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..kvstore.base import Fields, KeyValueStore
from ..recovery.crashpoints import crashpoint
from ..sim.clock import ambient_now_us, ambient_sleep
from .base import Transaction, TransactionManager, TxState
from .clock import TimestampOracle
from .errors import TransactionConflict
from .manager import TSR_PREFIX, TxnStats
from .record import LockInfo, TxRecord

__all__ = ["PercolatorLikeManager", "PercolatorTransaction"]

_Address = tuple[str, str]


class PercolatorLikeManager(TransactionManager):
    """Central-oracle snapshot-isolation coordinator.

    Args:
        stores: named stores (Percolator assumed one homogeneous store;
            multiple are allowed here for benchmark symmetry).
        oracle: the central timestamp oracle; its ``rpc_delay_s`` models
            the WAN round trip the paper identifies as the bottleneck.
        lock_lease_ms: lease after which a lock's owner is presumed dead.
    """

    def __init__(
        self,
        stores: Mapping[str, KeyValueStore] | KeyValueStore,
        default_store: str | None = None,
        oracle: TimestampOracle | None = None,
        lock_lease_ms: float = 1000.0,
        lock_wait_retries: int = 50,
        lock_wait_s: float = 0.0005,
        sleep=ambient_sleep,
    ):
        if isinstance(stores, KeyValueStore):
            stores = {"default": stores}
        super().__init__(stores, default_store)
        self.oracle = oracle or TimestampOracle()
        self.lock_lease_ms = lock_lease_ms
        self.lock_wait_retries = lock_wait_retries
        self.lock_wait_s = lock_wait_s
        self.stats = TxnStats()
        self._sleep = sleep

    def counters(self) -> dict[str, int]:
        """Shared-run counters surfaced into benchmark reports."""
        return {
            "TXN-CONFLICTS": self.stats.conflicts,
            "TXN-RECOVERY-ABORTS": self.stats.recovery_aborts,
        }

    def begin(self) -> "PercolatorTransaction":
        start_ts = self.oracle.next_timestamp()
        self.stats.bump("begun")
        return PercolatorTransaction(self, f"pc-{start_ts}", start_ts)

    def _now_us(self) -> int:
        return ambient_now_us()

    def _lease_expiry(self) -> int:
        return self._now_us() + int(self.lock_lease_ms * 1000)

    # -- lock resolution --------------------------------------------------------

    def _primary_state(self, lock: LockInfo) -> tuple[str, int]:
        """What happened to the transaction owning ``lock``.

        Returns ``("committed", commit_ts)``, ``("aborted", 0)`` or
        ``("pending", 0)``, by inspecting the primary record:
        a committed version attributed to the txid means committed; a
        missing lock with no such version means rolled back; an expired
        primary lock is rolled back here (CAS) before reporting aborted.
        """
        store_name, _, primary_key = lock.primary.partition(":")
        store = self.store(store_name)
        versioned = store.get_with_meta(primary_key)
        if versioned is None:
            return ("aborted", 0)
        record = TxRecord.decode(versioned.value)
        for version in record.versions:
            if version.txid == lock.txid:
                return ("committed", version.timestamp)
        primary_lock = record.lock
        if primary_lock is None or primary_lock.txid != lock.txid:
            return ("aborted", 0)
        if primary_lock.lease_expiry_us < self._now_us():
            record.lock = None
            if store.put_if_version(primary_key, record.encode(), versioned.version) is not None:
                self.stats.bump("rollbacks_of_peers")
                return ("aborted", 0)
            return ("pending", 0)  # racing resolver; re-examine next round
        return ("pending", 0)

    def resolve_lock(self, store: KeyValueStore, key: str) -> bool:
        """Clear the lock on ``key`` if its owner has been decided.

        True → caller should re-read; False → owner pending, caller waits.
        """
        versioned = store.get_with_meta(key)
        if versioned is None:
            return True
        record = TxRecord.decode(versioned.value)
        lock = record.lock
        if lock is None:
            return True
        state, commit_ts = self._primary_state(lock)
        if state == "pending":
            return False
        if state == "committed":
            record.apply_commit(
                commit_ts, None if lock.is_delete else lock.staged, txid=lock.txid
            )
            self.stats.bump("rollforwards")
        else:
            record.lock = None
        store.put_if_version(key, record.encode(), versioned.version)
        return True


class PercolatorTransaction(Transaction):
    """Snapshot-isolated transaction using the prewrite/commit protocol."""

    def __init__(self, manager: PercolatorLikeManager, txid: str, start_timestamp: int):
        super().__init__(txid, start_timestamp)
        self._manager = manager
        self._writes: dict[_Address, Fields | None] = {}
        self._prewritten: list[_Address] = []

    def _address(self, key: str, store: str | None) -> _Address:
        name = store or self._manager.default_store_name
        if key.startswith(TSR_PREFIX):
            raise ValueError(f"keys may not start with the reserved prefix {TSR_PREFIX!r}")
        self._manager.store(name)
        return (name, key)

    def _load_resolved(self, address: _Address) -> TxRecord:
        manager = self._manager
        store = manager.store(address[0])
        for _ in range(manager.lock_wait_retries):
            versioned = store.get_with_meta(address[1])
            if versioned is None:
                return TxRecord()
            record = TxRecord.decode(versioned.value)
            lock = record.lock
            # Percolator readers only block on locks at or below their
            # snapshot; a lock from a later transaction cannot produce a
            # version visible to us.
            if lock is None or lock.txid == self.txid:
                return record
            if manager.resolve_lock(store, address[1]):
                continue
            manager.stats.bump("read_waits")
            manager._sleep(manager.lock_wait_s)
        raise TransactionConflict(
            f"{self.txid}: key {address[1]!r} stayed locked beyond the wait budget"
        )

    # -- data operations --------------------------------------------------------------

    def read(self, key: str, store: str | None = None) -> Fields | None:
        self._require_active()
        address = self._address(key, store)
        if address in self._writes:
            staged = self._writes[address]
            return dict(staged) if staged is not None else None
        record = self._load_resolved(address)
        if record.snapshot_too_old(self.start_timestamp):
            self._manager.stats.bump("conflicts")
            raise TransactionConflict(
                f"{self.txid}: snapshot too old for {key!r} (versions trimmed)"
            )
        version = record.visible_at(self.start_timestamp)
        if version is None or version.deleted:
            return None
        return dict(version.fields)

    def scan(
        self, start_key: str, record_count: int, store: str | None = None
    ) -> list[tuple[str, Fields]]:
        self._require_active()
        backing = self._manager.store(store or self._manager.default_store_name)
        results: list[tuple[str, Fields]] = []
        for key, value in backing.scan(start_key, record_count * 2 + 16):
            if key.startswith(TSR_PREFIX):
                continue
            record = TxRecord.decode(value)
            version = record.visible_at(self.start_timestamp)
            if version is None or version.deleted:
                continue
            results.append((key, dict(version.fields)))
            if len(results) >= record_count:
                break
        return results

    def write(self, key: str, fields: Mapping[str, str], store: str | None = None) -> None:
        self._require_active()
        self._writes[self._address(key, store)] = dict(fields)

    def delete(self, key: str, store: str | None = None) -> None:
        self._require_active()
        self._writes[self._address(key, store)] = None

    # -- prewrite / commit ---------------------------------------------------------------

    def _prewrite(self, address: _Address, primary: str) -> None:
        manager = self._manager
        store = manager.store(address[0])
        staged = self._writes[address]
        for _ in range(manager.lock_wait_retries):
            versioned = store.get_with_meta(address[1])
            record = TxRecord() if versioned is None else TxRecord.decode(versioned.value)
            if record.lock is not None and record.lock.txid != self.txid:
                if manager.resolve_lock(store, address[1]):
                    continue
                manager.stats.bump("read_waits")
                manager._sleep(manager.lock_wait_s)
                continue
            if record.newest_commit_timestamp() > self.start_timestamp:
                manager.stats.bump("conflicts")
                raise TransactionConflict(
                    f"{self.txid}: write-write conflict on {address[1]!r}"
                )
            record.lock = LockInfo(
                txid=self.txid,
                primary=primary,
                lease_expiry_us=manager._lease_expiry(),
                staged=staged,
                is_delete=staged is None,
            )
            expected = versioned.version if versioned is not None else None
            if store.put_if_version(address[1], record.encode(), expected) is not None:
                self._prewritten.append(address)
                manager.stats.bump("locks_acquired")
                return
        manager.stats.bump("conflicts")
        raise TransactionConflict(f"{self.txid}: could not prewrite {address[1]!r}")

    def _commit_record(self, address: _Address, commit_ts: int) -> bool:
        """Replace our lock on ``address`` with a committed version.

        Returns False when our lock is gone (a peer rolled us back) —
        only meaningful for the primary, where it is the commit verdict.
        """
        store = self._manager.store(address[0])
        while True:
            versioned = store.get_with_meta(address[1])
            if versioned is None:
                return False
            record = TxRecord.decode(versioned.value)
            if record.lock is None or record.lock.txid != self.txid:
                # Either rolled back (no version of ours) or already
                # rolled forward by a reader (version present).
                return any(version.txid == self.txid for version in record.versions)
            record.apply_commit(commit_ts, self._writes[address], txid=self.txid)
            if store.put_if_version(address[1], record.encode(), versioned.version) is not None:
                return True

    def commit(self) -> None:
        self._require_active()
        manager = self._manager
        if not self._writes:
            self.state = TxState.COMMITTED
            manager.stats.bump("committed")
            return
        # Percolator prewrites the primary first, then the rest in
        # write-order — there is no global lock ordering.
        ordered = list(self._writes)
        primary_address = ordered[0]
        primary = f"{primary_address[0]}:{primary_address[1]}"
        try:
            for address in ordered:
                self._prewrite(address, primary)
        except TransactionConflict:
            self._rollback()
            self.state = TxState.ABORTED
            manager.stats.bump("aborted")
            raise
        crashpoint("txn.after_prewrite")

        commit_ts = manager.oracle.next_timestamp()
        if not self._commit_record(primary_address, commit_ts):
            self._rollback()
            self.state = TxState.ABORTED
            manager.stats.bump("aborted")
            manager.stats.bump("recovery_aborts")
            raise TransactionConflict(f"{self.txid}: rolled back before primary commit")
        crashpoint("txn.after_primary_commit")
        # The commit point is behind us: the primary record is committed and
        # every secondary is roll-forward-able from it.  Crashing anywhere in
        # this loop leaves a partially applied transaction.
        for address in ordered[1:]:
            crashpoint("txn.mid_secondary_commit")
            self._commit_record(address, commit_ts)
        self.state = TxState.COMMITTED
        manager.stats.bump("committed")

    def _rollback(self) -> None:
        for address in self._prewritten:
            store = self._manager.store(address[0])
            while True:
                versioned = store.get_with_meta(address[1])
                if versioned is None:
                    break
                record = TxRecord.decode(versioned.value)
                if record.lock is None or record.lock.txid != self.txid:
                    break
                record.lock = None
                if not record.versions:
                    if store.delete_if_version(address[1], versioned.version) is not None:
                        break
                    continue
                if store.put_if_version(address[1], record.encode(), versioned.version) is not None:
                    break
        self._prewritten.clear()

    def abort(self) -> None:
        if self.state is not TxState.ACTIVE:
            return
        self._rollback()
        self._writes.clear()
        self.state = TxState.ABORTED
        self._manager.stats.bump("aborted")
