"""Client-coordinated multi-item transactions (the authors' library [28]).

The design the paper describes in §II-B, re-implemented:

* **No central infrastructure.**  Timestamps come from a (per-process)
  monotonic clock; transaction metadata lives *inside* the key-value
  store itself — a transaction-status record (TSR) per transaction plus a
  lock-with-staged-intent on each written key.
* **Snapshot reads.**  A transaction reads the newest version committed
  at or before its start timestamp.  Reads that encounter a lock resolve
  it (roll forward / roll back / bounded wait), exactly the discipline
  that makes snapshot isolation sound with client-side commit.
* **Ordered locking.**  Write-set keys are locked in global ``(store,
  key)`` order, so two committing transactions can never deadlock — the
  "simple ordered locking protocol" of the paper.  Crashed clients are
  recovered via lock leases: an expired lock may be rolled back by anyone.
* **Atomic commit point.**  The TSR is created with an insert-if-absent
  conditional write; whoever creates it first — the committer (state
  ``committed``) or a recovering peer (state ``aborted``) — decides the
  transaction's fate.  Everything after that point is roll-forward-able.
* **Heterogeneous stores.**  A transaction may touch keys in several
  registered stores; nothing requires them to be the same implementation
  (the quickstart commits across an in-memory store and an LSM store).

Commit protocol (write set W, primary p = min(W)):

1. for each key in sorted(W): conditional-put the record with our lock +
   staged intent; fail → conflict (first-updater-wins write-write check
   happens here too: a committed version newer than our start aborts us);
2. obtain the commit timestamp;
3. insert the TSR — *the commit point*;
4. for each key: replace lock+intent with a committed version;
5. delete the TSR.
"""

from __future__ import annotations

import itertools
import threading
import uuid
from collections.abc import Mapping
from dataclasses import dataclass, field

from ..core.retry import RetryPolicy, RetryStats
from ..recovery.crashpoints import crashpoint
from ..sim.clock import ambient_now_us, ambient_sleep
from ..kvstore.base import Fields, KeyValueStore, StoreError
from .base import Transaction, TransactionManager, TxState
from .clock import LocalClock, TimestampSource
from .errors import TransactionAborted, TransactionConflict
from .record import LockInfo, TxRecord

__all__ = ["ClientTransactionManager", "ClientTransaction", "TxnStats", "TSR_PREFIX"]

#: Key prefix of transaction-status records; filtered out of scans.
TSR_PREFIX = "~tsr:"


@dataclass
class TxnStats:
    """Counters exposed by the manager, used by tests and the ablation bench."""

    begun: int = 0
    committed: int = 0
    aborted: int = 0
    conflicts: int = 0
    #: aborts forced by peer/lease recovery (a peer presumed us dead and
    #: decided ``aborted`` first) — distinct from first-class write-write
    #: ``conflicts`` so crash campaigns can tell "scavenged" from "contended".
    recovery_aborts: int = 0
    locks_acquired: int = 0
    rollforwards: int = 0
    rollbacks_of_peers: int = 0
    read_waits: int = 0
    #: commit-point writes whose outcome was unknown (torn/transient) and
    #: had to be decided by reading the TSR back.
    ambiguous_commits: int = 0
    #: store failures after the commit point (roll-forward left to peers).
    post_commit_failures: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, counter: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)


_Address = tuple[str, str]  # (store name, key)


class ClientTransactionManager(TransactionManager):
    """Transaction manager with client-side coordination.

    Args:
        stores: named stores a transaction may touch.
        default_store: name used when an operation passes no store.
        clock: timestamp source (strictly monotonic within the process).
        lock_lease_ms: how long a lock may exist before any peer may
            presume its owner dead and roll the transaction back.
        lock_wait_retries / lock_wait_s: bounded politeness when a read or
            a lock attempt runs into a live peer's lock.
        isolation: ``"snapshot"`` (default — the paper library's level) or
            ``"serializable"``, which additionally validates the read set
            at commit: after the write locks are held, every key read (and
            not rewritten) must still be at the version the snapshot saw
            and not locked by a committing peer.  This closes snapshot
            isolation's write-skew anomaly at the price of extra reads and
            aborts — the isolation-level study the paper lists as future
            work (§VII).
    """

    ISOLATION_LEVELS = ("snapshot", "serializable")

    def __init__(
        self,
        stores: Mapping[str, KeyValueStore] | KeyValueStore,
        default_store: str | None = None,
        clock: TimestampSource | None = None,
        lock_lease_ms: float = 1000.0,
        lock_wait_retries: int = 50,
        lock_wait_s: float = 0.0005,
        isolation: str = "snapshot",
        sleep=ambient_sleep,
        retry_policy: RetryPolicy | None = None,
        client_id: str | None = None,
    ):
        if isinstance(stores, KeyValueStore):
            stores = {"default": stores}
        super().__init__(stores, default_store)
        if isolation not in self.ISOLATION_LEVELS:
            raise ValueError(
                f"unknown isolation {isolation!r}; use one of {self.ISOLATION_LEVELS}"
            )
        self.clock = clock or LocalClock()
        self.lock_lease_ms = lock_lease_ms
        self.lock_wait_retries = lock_wait_retries
        self.lock_wait_s = lock_wait_s
        self.isolation = isolation
        self.stats = TxnStats()
        self.retry_policy = retry_policy
        self.retry_stats = retry_policy.stats if retry_policy is not None else RetryStats()
        self._sleep = sleep
        # An explicit client_id pins transaction ids for deterministic
        # simulation runs; the default random id keeps concurrently started
        # real processes from colliding.
        self._client_id = client_id if client_id is not None else uuid.uuid4().hex[:8]
        self._tx_counter = itertools.count(1)

    def _call(self, fn):
        """One store call, retried per the manager's policy when set.

        Every call routed through here is either a pure read or a CAS
        whose failure makes the caller re-read — safe to retry blindly.
        The one write that is *not* safe to retry blindly, the committed-
        TSR insert, goes through ``ClientTransaction._decide_commit``
        instead.
        """
        if self.retry_policy is None:
            return fn()
        return self.retry_policy.call(fn)

    def counters(self) -> dict[str, int]:
        """Shared-run counters surfaced into benchmark reports."""
        counters = {
            "TXN-CONFLICTS": self.stats.conflicts,
            "TXN-RECOVERY-ABORTS": self.stats.recovery_aborts,
            "TXN-AMBIGUOUS-COMMITS": self.stats.ambiguous_commits,
            "TXN-POST-COMMIT-FAILURES": self.stats.post_commit_failures,
        }
        for name, value in self.retry_stats.counters().items():
            counters[f"TXN-{name}"] = value
        return counters

    # -- transaction factory -------------------------------------------------------

    def begin(self) -> "ClientTransaction":
        txid = f"{self._client_id}-{next(self._tx_counter)}"
        self.stats.bump("begun")
        return ClientTransaction(self, txid, self.clock.next_timestamp())

    # -- shared helpers used by transactions and recovery ---------------------------

    def _now_us(self) -> int:
        return ambient_now_us()

    def _lease_expiry(self) -> int:
        return self._now_us() + int(self.lock_lease_ms * 1000)

    def _tsr_key(self, txid: str) -> str:
        return f"{TSR_PREFIX}{txid}"

    def _tsr_store_of(self, lock: LockInfo) -> KeyValueStore:
        store_name, _, _ = lock.primary.partition(":")
        return self.store(store_name)

    def read_tsr(self, lock: LockInfo) -> tuple[str, int] | None:
        """The decided (state, commit_ts) of the lock's owner, or None."""
        store = self._tsr_store_of(lock)
        tsr = self._call(lambda: store.get(self._tsr_key(lock.txid)))
        if tsr is None:
            return None
        return tsr.get("state", "aborted"), int(tsr.get("commit_ts", "0"))

    def try_abort_peer(self, lock: LockInfo) -> bool:
        """Decide ``aborted`` for a lock owner whose lease has expired.

        Insert-if-absent on the TSR is the atomic arbiter: if the owner
        already created a committed TSR we lose and return False.  (Blind
        retry is sound here: a torn abort insert re-read simply finds the
        ``aborted`` record and returns True through the fallback below.)
        """
        store = self._tsr_store_of(lock)
        created = self._call(
            lambda: store.put_if_version(
                self._tsr_key(lock.txid), {"state": "aborted", "commit_ts": "0"}, None
            )
        )
        if created is not None:
            self.stats.bump("rollbacks_of_peers")
            return True
        decided = self.read_tsr(lock)
        return decided is not None and decided[0] == "aborted"

    def resolve_lock(self, store: KeyValueStore, key: str) -> bool:
        """Try to clear the lock currently on ``key``.

        Returns True when the caller should re-read (the lock was rolled
        forward or back), False when the owner is alive and undecided —
        the caller must wait.
        """
        versioned = self._call(lambda: store.get_with_meta(key))
        if versioned is None:
            return True
        record = TxRecord.decode(versioned.value)
        lock = record.lock
        if lock is None:
            return True
        decided = self.read_tsr(lock)
        if decided is None and lock.lease_expiry_us < self._now_us():
            if self.try_abort_peer(lock):
                decided = ("aborted", 0)
            else:
                decided = self.read_tsr(lock)
        if decided is None:
            return False
        state, commit_ts = decided
        if state == "committed":
            record.apply_commit(
                commit_ts, None if lock.is_delete else lock.staged, txid=lock.txid
            )
            self.stats.bump("rollforwards")
        else:
            record.lock = None
        # CAS the cleaned record back; a failed CAS means someone else
        # resolved it first, which is just as good.
        self._call(lambda: store.put_if_version(key, record.encode(), versioned.version))
        return True


class ClientTransaction(Transaction):
    """A transaction issued by :class:`ClientTransactionManager`."""

    def __init__(self, manager: ClientTransactionManager, txid: str, start_timestamp: int):
        super().__init__(txid, start_timestamp)
        self._manager = manager
        # Write buffer: address -> staged fields (None = delete intent).
        self._writes: dict[_Address, Fields | None] = {}
        # Locks we currently hold: address -> record version we installed.
        self._held_locks: list[_Address] = []
        # Read set for serializable validation: address -> commit timestamp
        # of the version the snapshot saw (0 when the key was absent).
        self._reads: dict[_Address, int] = {}

    # -- helpers ---------------------------------------------------------------------

    def _address(self, key: str, store: str | None) -> _Address:
        name = store or self._manager.default_store_name
        if key.startswith(TSR_PREFIX):
            raise ValueError(f"keys may not start with the reserved prefix {TSR_PREFIX!r}")
        self._manager.store(name)  # validate early
        return (name, key)

    def _load_resolved(self, address: _Address) -> TxRecord:
        """Read ``address`` with lock resolution; never returns a locked
        record whose owner has decided."""
        manager = self._manager
        store = manager.store(address[0])
        for _ in range(manager.lock_wait_retries):
            versioned = manager._call(lambda: store.get_with_meta(address[1]))
            if versioned is None:
                return TxRecord()
            record = TxRecord.decode(versioned.value)
            if record.lock is None:
                return record
            if manager.resolve_lock(store, address[1]):
                continue
            manager.stats.bump("read_waits")
            manager._sleep(manager.lock_wait_s)
        raise TransactionConflict(
            f"{self.txid}: key {address[1]!r} stayed locked beyond the wait budget"
        )

    # -- data operations ----------------------------------------------------------------

    def read(self, key: str, store: str | None = None) -> Fields | None:
        self._require_active()
        address = self._address(key, store)
        if address in self._writes:
            staged = self._writes[address]
            return dict(staged) if staged is not None else None
        record = self._load_resolved(address)
        if record.snapshot_too_old(self.start_timestamp):
            self._manager.stats.bump("conflicts")
            raise TransactionConflict(
                f"{self.txid}: snapshot too old for {key!r} (versions trimmed)"
            )
        version = record.visible_at(self.start_timestamp)
        if self._manager.isolation == "serializable":
            self._reads[address] = version.timestamp if version is not None else 0
        if version is None or version.deleted:
            return None
        return dict(version.fields)

    def scan(
        self, start_key: str, record_count: int, store: str | None = None
    ) -> list[tuple[str, Fields]]:
        self._require_active()
        name = store or self._manager.default_store_name
        backing = self._manager.store(name)
        results: list[tuple[str, Fields]] = []
        cursor = start_key
        # Over-fetch to compensate for skipped tombstones/TSRs/locks.
        while len(results) < record_count:
            fetch_from = cursor
            batch = self._manager._call(
                lambda: backing.scan(fetch_from, max(record_count * 2, 16))
            )
            if not batch:
                break
            for key, value in batch:
                if key.startswith(TSR_PREFIX):
                    continue
                record = TxRecord.decode(value)
                version = record.visible_at(self.start_timestamp)
                if version is None or version.deleted:
                    continue
                results.append((key, dict(version.fields)))
                if len(results) >= record_count:
                    break
            last_key = batch[-1][0]
            if len(batch) < max(record_count * 2, 16):
                break
            cursor = last_key + "\x00"
        return results[:record_count]

    def write(self, key: str, fields: Mapping[str, str], store: str | None = None) -> None:
        self._require_active()
        self._writes[self._address(key, store)] = dict(fields)

    def delete(self, key: str, store: str | None = None) -> None:
        self._require_active()
        self._writes[self._address(key, store)] = None

    # -- commit protocol -------------------------------------------------------------------

    def _primary_name(self, ordered: list[_Address]) -> str:
        store_name, key = ordered[0]
        return f"{store_name}:{key}"

    def _acquire_lock(self, address: _Address, primary: str) -> None:
        """Install our lock + staged intent on ``address`` (CAS loop)."""
        manager = self._manager
        store = manager.store(address[0])
        staged = self._writes[address]
        for _ in range(manager.lock_wait_retries):
            versioned = manager._call(lambda: store.get_with_meta(address[1]))
            record = TxRecord() if versioned is None else TxRecord.decode(versioned.value)
            if record.lock is not None:
                if record.lock.txid == self.txid:
                    # Already ours — a torn install (applied, error
                    # returned) can land here via the CAS-retry path.
                    # Record it so rollback releases this lock too.
                    if address not in self._held_locks:
                        self._held_locks.append(address)
                        manager.stats.bump("locks_acquired")
                    return
                if manager.resolve_lock(store, address[1]):
                    continue
                manager.stats.bump("read_waits")
                manager._sleep(manager.lock_wait_s)
                continue
            # First-updater-wins: a version committed after our snapshot
            # means a concurrent writer already won.
            if record.newest_commit_timestamp() > self.start_timestamp:
                manager.stats.bump("conflicts")
                raise TransactionConflict(
                    f"{self.txid}: write-write conflict on {address[1]!r}"
                )
            record.lock = LockInfo(
                txid=self.txid,
                primary=primary,
                lease_expiry_us=manager._lease_expiry(),
                staged=staged if staged is not None else None,
                is_delete=staged is None,
            )
            expected = versioned.version if versioned is not None else None
            installed = manager._call(
                lambda: store.put_if_version(address[1], record.encode(), expected)
            )
            if installed is not None:
                self._held_locks.append(address)
                manager.stats.bump("locks_acquired")
                return
            # CAS raced with another writer (or our own torn install,
            # which the re-read will recognise); re-read and retry.
        manager.stats.bump("conflicts")
        raise TransactionConflict(f"{self.txid}: could not lock {address[1]!r}")

    def _release_lock(self, address: _Address) -> None:
        """Remove our (undecided) lock from ``address`` if still present."""
        manager = self._manager
        store = manager.store(address[0])
        while True:
            versioned = manager._call(lambda: store.get_with_meta(address[1]))
            if versioned is None:
                return
            record = TxRecord.decode(versioned.value)
            if record.lock is None or record.lock.txid != self.txid:
                return
            record.lock = None
            if not record.versions:
                # We created this record purely to hold the lock.
                removed = manager._call(
                    lambda: store.delete_if_version(address[1], versioned.version)
                )
                if removed is not None:
                    return
                continue
            replaced = manager._call(
                lambda: store.put_if_version(address[1], record.encode(), versioned.version)
            )
            if replaced is not None:
                return

    def _apply_commit(self, address: _Address, commit_ts: int) -> None:
        """Turn our staged intent on ``address`` into a committed version."""
        manager = self._manager
        store = manager.store(address[0])
        while True:
            versioned = manager._call(lambda: store.get_with_meta(address[1]))
            if versioned is None:
                return  # a peer rolled us forward and compacted; nothing to do
            record = TxRecord.decode(versioned.value)
            if record.lock is None or record.lock.txid != self.txid:
                return  # already rolled forward by a reader
            record.apply_commit(commit_ts, self._writes[address], txid=self.txid)
            applied = manager._call(
                lambda: store.put_if_version(address[1], record.encode(), versioned.version)
            )
            if applied is not None:
                return

    def commit(self) -> None:
        self._require_active()
        manager = self._manager
        if not self._writes:
            self.state = TxState.COMMITTED
            manager.stats.bump("committed")
            return
        ordered = sorted(self._writes)
        primary = self._primary_name(ordered)
        try:
            for address in ordered:
                self._acquire_lock(address, primary)
            if manager.isolation == "serializable":
                self._validate_read_set()
        except (TransactionConflict, StoreError):
            # Before the commit point any failure — conflict or a store
            # error that outlived the retry budget — aborts cleanly:
            # release what we hold (best effort; leaked locks are
            # recovered by peers via the lease) and report ABORTED.
            self._rollback_locks()
            self.state = TxState.ABORTED
            manager.stats.bump("aborted")
            raise
        crashpoint("txn.after_prewrite")

        commit_ts = manager.clock.next_timestamp()
        tsr_store = manager.store(ordered[0][0])
        tsr_key = manager._tsr_key(self.txid)
        if not self._decide_commit(tsr_store, tsr_key, commit_ts):
            # A peer presumed us dead and aborted us first.
            self._rollback_locks()
            try:
                manager._call(lambda: tsr_store.delete(tsr_key))
            except StoreError:
                pass  # the abort TSR is garbage once our locks are gone
            self.state = TxState.ABORTED
            manager.stats.bump("aborted")
            manager.stats.bump("recovery_aborts")
            raise TransactionAborted(f"{self.txid}: aborted by peer recovery before commit")
        crashpoint("txn.after_primary_commit")

        # Past the commit point the transaction IS committed, whatever the
        # store does next: every staged intent is roll-forward-able by any
        # reader that finds our committed TSR.  Apply what we can, count
        # what we could not, and only drop the TSR once nothing depends on
        # it — deleting it with an intent still staged would let a peer
        # presume us aborted and roll the committed write *back*.
        apply_failures = 0
        for position, address in enumerate(ordered):
            if position == 1:
                crashpoint("txn.mid_secondary_commit")
            try:
                self._apply_commit(address, commit_ts)
            except StoreError:
                apply_failures += 1
        if apply_failures:
            manager.stats.bump("post_commit_failures", apply_failures)
        else:
            try:
                manager._call(lambda: tsr_store.delete(tsr_key))
            except StoreError:
                manager.stats.bump("post_commit_failures")
        self.state = TxState.COMMITTED
        manager.stats.bump("committed")

    def _decide_commit(self, tsr_store: KeyValueStore, tsr_key: str, commit_ts: int) -> bool:
        """Create the committed TSR — the commit point — and report the fate.

        The insert-if-absent can fail *ambiguously*: a torn write raises
        after applying, and a retry layer below us turns that same tear
        into a plain ``None`` (the retried insert finds the key taken).
        Blind retry is therefore unsound — it would read our own torn
        insert as "a peer aborted us" and flip a committed transaction
        into an abort.  Instead, on any non-success we read the TSR back
        and match it: our committed record → committed; a peer's abort
        record → aborted; truly absent → the insert never landed and may
        safely be tried again.
        """
        manager = self._manager
        document = {"state": "committed", "commit_ts": str(commit_ts)}
        last_error: StoreError | None = None
        for _ in range(max(1, manager.lock_wait_retries)):
            ambiguous = False
            try:
                created = tsr_store.put_if_version(tsr_key, document, None)
            except StoreError as exc:
                ambiguous = True
                last_error = exc
                created = None
            if created is not None:
                return True
            if ambiguous:
                manager.stats.bump("ambiguous_commits")
            tsr = manager._call(lambda: tsr_store.get(tsr_key))
            if tsr is None:
                continue  # the insert never landed; safe to try again
            ours = (
                tsr.get("state") == "committed"
                and tsr.get("commit_ts") == document["commit_ts"]
            )
            if ours and not ambiguous:
                # A lower retry layer absorbed the tear into a CAS miss.
                manager.stats.bump("ambiguous_commits")
            return ours
        raise last_error or StoreError(
            f"{self.txid}: could not decide commit outcome for {tsr_key!r}"
        )

    def _validate_read_set(self) -> None:
        """Serializable commit validation (runs with write locks held).

        Every key read but not rewritten must still be exactly at the
        version the snapshot saw, and must not be locked by a committing
        peer.  With all writers holding ordered locks while they validate,
        any dangerous read-write interleaving (e.g. write skew) is caught
        by at least one side: the later validator either sees the peer's
        lock or the peer's committed version.
        """
        manager = self._manager
        for address, seen_ts in self._reads.items():
            if address in self._writes:
                continue  # locked and write-write checked already
            store = manager.store(address[0])
            versioned = store.get_with_meta(address[1])
            record = TxRecord() if versioned is None else TxRecord.decode(versioned.value)
            if record.lock is not None and record.lock.txid != self.txid:
                manager.stats.bump("conflicts")
                raise TransactionConflict(
                    f"{self.txid}: read-set key {address[1]!r} is being "
                    f"committed by a concurrent transaction"
                )
            if record.newest_commit_timestamp() != seen_ts:
                manager.stats.bump("conflicts")
                raise TransactionConflict(
                    f"{self.txid}: read-set key {address[1]!r} changed "
                    f"since the snapshot (serializable validation)"
                )

    def _rollback_locks(self) -> None:
        for address in self._held_locks:
            try:
                self._release_lock(address)
            except StoreError:
                # Leave it: the lease expires and a peer rolls it back.
                pass
        self._held_locks.clear()

    def abort(self) -> None:
        if self.state is not TxState.ACTIVE:
            return
        self._rollback_locks()
        self._writes.clear()
        self.state = TxState.ABORTED
        self._manager.stats.bump("aborted")
