"""Timestamp sources.

The design space the paper discusses in §II-B:

* Percolator and ReTSO depend on a **central timestamp oracle** — simple,
  strictly ordered, but a round trip per timestamp and a bottleneck over
  WAN links (:class:`TimestampOracle`, with optional simulated RPC delay).
* The authors' client-coordinated library uses the **local clock** of each
  client, made strictly monotonic per process (:class:`LocalClock`), and
  is "compatible with approaches like TrueTime".
* :class:`HybridClock` is a hybrid logical clock: physical time that never
  runs behind timestamps observed from other participants — the standard
  fix for modest clock skew between cooperating clients.

Timestamps are integers in microseconds; uniqueness within one source is
guaranteed by bumping at least 1 per call.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod

from ..sim.clock import ambient_now_us, ambient_sleep

__all__ = ["TimestampSource", "LocalClock", "HybridClock", "TimestampOracle"]


class TimestampSource(ABC):
    """Produces strictly increasing integer timestamps (microseconds)."""

    @abstractmethod
    def next_timestamp(self) -> int:
        """A timestamp strictly greater than any previously returned."""


class LocalClock(TimestampSource):
    """Monotonic local clock: ``max(wall_us, last + 1)``.

    No coordination, no round trips — the property the paper's library is
    built around ("does not depend on any centralized timestamp oracle").
    """

    def __init__(self, now_us=None):
        self._lock = threading.Lock()
        self._last = 0
        self._now_us = now_us or ambient_now_us

    def next_timestamp(self) -> int:
        with self._lock:
            candidate = self._now_us()
            self._last = candidate if candidate > self._last else self._last + 1
            return self._last


class HybridClock(TimestampSource):
    """Hybrid logical clock: local time merged with observed remote time.

    :meth:`observe` folds in a timestamp seen in data read from the store,
    keeping causally related transactions ordered even when the local
    wall clock lags another client's.
    """

    def __init__(self, now_us=None):
        self._lock = threading.Lock()
        self._last = 0
        self._now_us = now_us or ambient_now_us

    def observe(self, remote_timestamp: int) -> None:
        """Ratchet the clock past a timestamp another client produced."""
        with self._lock:
            if remote_timestamp > self._last:
                self._last = remote_timestamp

    def next_timestamp(self) -> int:
        with self._lock:
            candidate = self._now_us()
            self._last = candidate if candidate > self._last else self._last + 1
            return self._last


class TimestampOracle(TimestampSource):
    """Central timestamp service (Percolator's "TO").

    Strictly ordered across *all* clients, at the price of one simulated
    RPC per timestamp (``rpc_delay_s``) — which is exactly the WAN
    bottleneck the paper criticises, and what the coordinator-ablation
    benchmark measures.
    """

    def __init__(self, rpc_delay_s: float = 0.0, sleep=ambient_sleep):
        if rpc_delay_s < 0:
            raise ValueError(f"rpc_delay_s must be >= 0, got {rpc_delay_s}")
        self._lock = threading.Lock()
        self._counter = 0
        self._rpc_delay_s = rpc_delay_s
        self._sleep = sleep
        self._requests = 0

    @property
    def requests(self) -> int:
        """Number of timestamps served (oracle load metric)."""
        with self._lock:
            return self._requests

    def next_timestamp(self) -> int:
        if self._rpc_delay_s > 0:
            self._sleep(self._rpc_delay_s)
        with self._lock:
            self._counter += 1
            self._requests += 1
            return self._counter
