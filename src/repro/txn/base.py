"""Abstract transaction API.

All three coordination designs in this package — the client-coordinated
library, the Percolator-style baseline and the ReTSO-style baseline —
expose the same two classes, so benchmarks and DB bindings can swap the
coordinator without touching workload code:

* :class:`TransactionManager` — long-lived, owns the stores and the
  timestamp source, hands out transactions.
* :class:`Transaction` — one atomic unit of work: snapshot reads, buffered
  writes, then :meth:`~Transaction.commit` or :meth:`~Transaction.abort`.

Transactions may span several named stores (the "heterogeneous data
stores" of §II-B): every data method takes an optional ``store`` name and
defaults to the manager's default store.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Mapping
from contextlib import contextmanager
from enum import Enum
from typing import Any, Iterator, TypeVar

from ..kvstore.base import Fields, KeyValueStore
from ..sim.clock import ambient_sleep
from .errors import TransactionConflict, TransactionError, TransactionStateError

__all__ = ["TxState", "Transaction", "TransactionManager"]

T = TypeVar("T")


class TxState(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction(ABC):
    """One transaction: a snapshot read view plus a buffered write set."""

    def __init__(self, txid: str, start_timestamp: int):
        self.txid = txid
        self.start_timestamp = start_timestamp
        self.state = TxState.ACTIVE

    def _require_active(self) -> None:
        if self.state is not TxState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txid} is {self.state.value}; no further operations allowed"
            )

    # -- data operations ---------------------------------------------------------

    @abstractmethod
    def read(self, key: str, store: str | None = None) -> Fields | None:
        """Snapshot read of ``key``; sees this transaction's own writes."""

    @abstractmethod
    def scan(
        self, start_key: str, record_count: int, store: str | None = None
    ) -> list[tuple[str, Fields]]:
        """Ordered range read of committed data (see class docs for caveats)."""

    @abstractmethod
    def write(self, key: str, fields: Mapping[str, str], store: str | None = None) -> None:
        """Buffer a full-record write of ``key``."""

    @abstractmethod
    def delete(self, key: str, store: str | None = None) -> None:
        """Buffer a delete of ``key``."""

    # -- outcome -------------------------------------------------------------------

    @abstractmethod
    def commit(self) -> None:
        """Atomically publish the write set.

        Raises:
            TransactionConflict: a concurrent transaction won; state is
                rolled back and the caller may retry from ``begin()``.
        """

    @abstractmethod
    def abort(self) -> None:
        """Roll back; safe to call more than once."""


class TransactionManager(ABC):
    """Creates transactions over one or more named key-value stores."""

    def __init__(self, stores: Mapping[str, KeyValueStore], default_store: str | None = None):
        if not stores:
            raise ValueError("at least one store is required")
        self._stores = dict(stores)
        self._default_store = default_store or next(iter(self._stores))
        if self._default_store not in self._stores:
            raise ValueError(f"default store {self._default_store!r} not in stores")

    @property
    def default_store_name(self) -> str:
        return self._default_store

    def store(self, name: str | None = None) -> KeyValueStore:
        """The store registered under ``name`` (default store if None)."""
        resolved = name or self._default_store
        try:
            return self._stores[resolved]
        except KeyError:
            raise KeyError(f"unknown store {resolved!r}") from None

    def store_names(self) -> list[str]:
        return list(self._stores)

    @abstractmethod
    def begin(self) -> Transaction:
        """Start a new transaction."""

    # -- conveniences ---------------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[Transaction]:
        """``with manager.transaction() as tx:`` — commit on success,
        abort on any exception (which is re-raised)."""
        tx = self.begin()
        try:
            yield tx
        except BaseException:
            if tx.state is TxState.ACTIVE:
                tx.abort()
            raise
        else:
            if tx.state is TxState.ACTIVE:
                tx.commit()

    def run(
        self,
        body: Callable[[Transaction], T],
        retries: int = 10,
        backoff_s: float = 0.001,
        sleep: Callable[[float], Any] = ambient_sleep,
    ) -> T:
        """Run ``body`` in a transaction, retrying on conflicts.

        Retries cover both :class:`TransactionConflict` and
        :class:`TransactionAborted` — a transaction aborted by a peer's
        lease-expiry recovery never committed, so re-running it is safe.
        Exponential backoff between attempts; after ``retries`` failed
        attempts the final exception propagates.
        """
        from .errors import TransactionAborted

        attempt = 0
        while True:
            tx = self.begin()
            try:
                result = body(tx)
                if tx.state is TxState.ACTIVE:
                    tx.commit()
                return result
            except (TransactionConflict, TransactionAborted):
                if tx.state is TxState.ACTIVE:
                    tx.abort()
                attempt += 1
                if attempt > retries:
                    raise
                sleep(backoff_s * (2 ** min(attempt, 8)))
            except TransactionError:
                if tx.state is TxState.ACTIVE:
                    tx.abort()
                raise
            except BaseException:
                if tx.state is TxState.ACTIVE:
                    tx.abort()
                raise
