"""Transaction-layer exceptions."""

from __future__ import annotations

__all__ = [
    "TransactionError",
    "TransactionConflict",
    "TransactionAborted",
    "TransactionTimeout",
    "TransactionStateError",
]


class TransactionError(Exception):
    """Base class for transaction failures."""


class TransactionConflict(TransactionError):
    """Another transaction holds a lock or committed a newer version.

    The caller may retry the whole transaction; retrying the individual
    operation is not safe.
    """


class TransactionAborted(TransactionError):
    """The transaction was rolled back (explicitly or by recovery)."""


class TransactionTimeout(TransactionError):
    """A lock wait exceeded its deadline."""


class TransactionStateError(TransactionError):
    """An operation was issued on a finished (committed/aborted) transaction."""
