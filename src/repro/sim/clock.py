"""Clock protocol: wall time vs. virtual time.

Every module in the stack that used to call ``time.sleep``/``time.monotonic``
directly now defaults to the *ambient* clock — a process-global
:class:`Clock` that is :class:`WallClock` unless a simulation has installed
a :class:`~repro.sim.scheduler.SimClock` via :func:`use_clock`.  The
``ambient_*`` module functions dispatch at **call time**, so they are safe
to use as default parameter values: an object constructed before a sim
clock is installed still runs on virtual time once inside the
``use_clock`` block.

The ambient clock is deliberately process-global rather than thread-local:
a simulation's cooperative tasks are real OS threads (parked on events,
one runnable at a time), and all of them must see the same virtual clock.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from contextlib import contextmanager

__all__ = [
    "Clock",
    "WallClock",
    "WALL_CLOCK",
    "get_clock",
    "set_clock",
    "use_clock",
    "ambient_sleep",
    "ambient_now",
    "ambient_now_us",
    "ambient_monotonic",
    "ambient_perf_counter_ns",
]


class Clock(ABC):
    """Time source + sleep primitive, swappable between wall and virtual."""

    @abstractmethod
    def now(self) -> float:
        """Seconds since the epoch (wall) or since the sim epoch (virtual)."""

    @abstractmethod
    def monotonic(self) -> float:
        """Monotonic seconds; only differences are meaningful."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block the caller for ``seconds`` (virtual seconds under a sim)."""

    def now_us(self) -> int:
        """Microseconds since the epoch (transaction-timestamp resolution)."""
        return int(self.now() * 1_000_000)

    def perf_counter_ns(self) -> int:
        """Nanosecond counter for latency stopwatches."""
        return int(self.monotonic() * 1_000_000_000)


class WallClock(Clock):
    """The real clock: thin delegation to the :mod:`time` module."""

    def now(self) -> float:
        return time.time()

    def monotonic(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)

    def now_us(self) -> int:
        return time.time_ns() // 1000

    def perf_counter_ns(self) -> int:
        return time.perf_counter_ns()


WALL_CLOCK = WallClock()

_active: Clock = WALL_CLOCK


def get_clock() -> Clock:
    """The ambient clock (wall unless a simulation installed its own)."""
    return _active


def set_clock(clock: Clock | None) -> Clock:
    """Install ``clock`` as the ambient clock; ``None`` restores wall time.

    Returns the previously active clock so callers can restore it.  Prefer
    the :func:`use_clock` context manager, which restores automatically.
    """
    global _active
    previous = _active
    _active = clock if clock is not None else WALL_CLOCK
    return previous


@contextmanager
def use_clock(clock: Clock):
    """Run a block with ``clock`` as the ambient clock, then restore."""
    previous = set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)


# -- call-time dispatch helpers ---------------------------------------------------------
#
# These exist so modules can write ``sleep=ambient_sleep`` as a *default
# argument* and still pick up a sim clock installed later: the default
# binds the dispatcher function, not the clock active at import time.


def ambient_sleep(seconds: float) -> None:
    _active.sleep(seconds)


def ambient_now() -> float:
    return _active.now()


def ambient_now_us() -> int:
    return _active.now_us()


def ambient_monotonic() -> float:
    return _active.monotonic()


def ambient_perf_counter_ns() -> int:
    return _active.perf_counter_ns()
