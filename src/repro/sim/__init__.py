"""Deterministic simulation: virtual-time benchmarking and seeded anomaly hunting.

See ``docs/SIMULATION.md``.  The package splits into:

- :mod:`repro.sim.clock` — the :class:`Clock` protocol, :class:`WallClock`,
  and the ambient-clock context every timing module defaults to.
- :mod:`repro.sim.scheduler` — the event-heap :class:`Scheduler`,
  :class:`SimClock`, and :class:`VirtualResource`.
- :mod:`repro.sim.campaign` — seed-sweep campaigns (``ycsbt sim``),
  operation tracing, and violation-trace artifacts.  Imported lazily so
  the clock primitives stay dependency-free for the core modules that
  import them.
"""

from .clock import (
    WALL_CLOCK,
    Clock,
    WallClock,
    ambient_monotonic,
    ambient_now,
    ambient_now_us,
    ambient_perf_counter_ns,
    ambient_sleep,
    get_clock,
    set_clock,
    use_clock,
)
from .scheduler import SIM_EPOCH, Scheduler, SimClock, SimTaskFailed, VirtualResource

__all__ = [
    "Clock",
    "WallClock",
    "WALL_CLOCK",
    "get_clock",
    "set_clock",
    "use_clock",
    "ambient_sleep",
    "ambient_now",
    "ambient_now_us",
    "ambient_monotonic",
    "ambient_perf_counter_ns",
    "Scheduler",
    "SimClock",
    "SimTaskFailed",
    "VirtualResource",
    "SIM_EPOCH",
    # lazy (see __getattr__): campaign API
    "SimRunResult",
    "CampaignResult",
    "run_sim",
    "run_campaign",
    "write_violation_trace",
    "DEFAULT_SIM_PROPERTIES",
]

_LAZY = {
    "SimRunResult",
    "CampaignResult",
    "run_sim",
    "run_campaign",
    "write_violation_trace",
    "DEFAULT_SIM_PROPERTIES",
}


def __getattr__(name):
    if name in _LAZY:
        from . import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
