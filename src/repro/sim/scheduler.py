"""Discrete-event scheduler: deterministic cooperative tasks in virtual time.

The :class:`Scheduler` owns a virtual clock (``now``, in seconds) and an
event heap keyed ``(wake_time, sequence)``.  Simulated client "threads"
are real OS threads, but **cooperative**: exactly one is runnable at any
moment, and control transfers only at :meth:`Scheduler.sleep` calls.  The
heap's sequence number breaks wake-time ties in push order, so a whole
run's interleaving is a pure function of the task bodies and their seeds
— no OS scheduling, no wall time, no races.

Sleeping costs nothing: ``sleep(30.0)`` pushes a wake event 30 virtual
seconds out and hands control to the next event, so a benchmark spanning
thousands of simulated seconds finishes in however long its *compute*
takes (typically well under a second).

:class:`SimClock` adapts a scheduler to the :class:`~repro.sim.clock.Clock`
protocol so the entire benchmark stack — latency models, rate limiters,
fault injectors, retry backoff, throttles, stopwatches — runs on virtual
time when installed via :func:`~repro.sim.clock.use_clock`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections.abc import Callable, Sequence

from .clock import Clock

__all__ = ["Scheduler", "SimClock", "SimTaskFailed", "VirtualResource", "SIM_EPOCH"]

#: Fixed epoch for SimClock.now(): an arbitrary, stable instant so two runs
#: of the same seed produce byte-identical timestamps (2020-09-13T12:26:40Z).
SIM_EPOCH = 1_600_000_000.0


class SimTaskFailed(Exception):
    """A simulated task raised; carries the original as ``__cause__``."""


class _Task:
    __slots__ = ("name", "index", "fn", "thread", "resume", "finished", "error", "result")

    def __init__(self, name: str, index: int, fn: Callable[[], object]):
        self.name = name
        self.index = index
        self.fn = fn
        self.thread: threading.Thread | None = None
        self.resume = threading.Event()
        self.finished = False
        self.error: BaseException | None = None
        self.result: object = None


class Scheduler:
    """Event-heap driver for deterministic cooperative multitasking."""

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self.events_processed = 0
        self._heap: list[tuple[float, int, _Task]] = []
        self._seq = itertools.count()
        self._control = threading.Event()
        self._tasks_by_ident: dict[int, _Task] = {}
        self._current: _Task | None = None
        self._running = False

    @property
    def current_task_name(self) -> str | None:
        """Name of the task currently holding control (None in the driver)."""
        task = self._tasks_by_ident.get(threading.get_ident())
        return task.name if task is not None else None

    # -- task-side API ------------------------------------------------------------------

    def sleep(self, seconds: float) -> None:
        """Suspend the calling task for ``seconds`` of virtual time.

        Called from the driver (outside :meth:`run`) it simply advances the
        clock, which lets setup code that sleeps — warmups, probes — work
        before any tasks exist.
        """
        seconds = max(0.0, float(seconds))
        task = self._tasks_by_ident.get(threading.get_ident())
        if task is None or task is not self._current:
            self.now += seconds
            return
        heapq.heappush(self._heap, (self.now + seconds, next(self._seq), task))
        task.resume.clear()
        self._control.set()
        task.resume.wait()

    # -- driver-side API ----------------------------------------------------------------

    def run(
        self,
        fns: Sequence[Callable[[], object]],
        names: Sequence[str] | None = None,
    ) -> list[object]:
        """Run callables as cooperative tasks until every one completes.

        All tasks start at the current virtual instant, in list order.
        Returns their results in the same order; if any task raised, the
        first failure (by completion order) is re-raised as
        :exc:`SimTaskFailed` after the remaining tasks finish.
        """
        if self._running:
            raise RuntimeError("scheduler is already running a task set")
        self._running = True
        tasks = []
        try:
            for index, fn in enumerate(fns):
                name = names[index] if names is not None else f"task-{index}"
                task = _Task(name, index, fn)
                task.thread = threading.Thread(
                    target=self._task_main, args=(task,), name=f"sim:{name}", daemon=True
                )
                tasks.append(task)
                heapq.heappush(self._heap, (self.now, next(self._seq), task))
                task.thread.start()
            while self._heap:
                when, _, task = heapq.heappop(self._heap)
                if when > self.now:
                    self.now = when
                self.events_processed += 1
                self._control.clear()
                self._current = task
                task.resume.set()
                self._control.wait()
                self._current = None
                if task.finished:
                    task.thread.join()
        finally:
            self._running = False
        for task in tasks:
            if task.error is not None:
                raise SimTaskFailed(f"simulated task {task.name!r} failed") from task.error
        return [task.result for task in tasks]

    def _task_main(self, task: _Task) -> None:
        self._tasks_by_ident[threading.get_ident()] = task
        task.resume.wait()
        try:
            task.result = task.fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced via SimTaskFailed
            task.error = exc
        finally:
            task.finished = True
            self._tasks_by_ident.pop(threading.get_ident(), None)
            self._control.set()


class SimClock(Clock):
    """Virtual-time :class:`Clock` driven by a :class:`Scheduler`.

    ``monotonic()`` is the scheduler's clock directly; ``now()`` offsets it
    by a fixed :data:`SIM_EPOCH` so epoch-based timestamps (transaction
    clocks) are stable across runs and machines.
    """

    def __init__(self, scheduler: Scheduler | None = None, epoch: float = SIM_EPOCH):
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self._epoch = float(epoch)

    def now(self) -> float:
        return self._epoch + self.scheduler.now

    def monotonic(self) -> float:
        return self.scheduler.now

    def sleep(self, seconds: float) -> None:
        self.scheduler.sleep(seconds)

    def now_us(self) -> int:
        return int(round(self.now() * 1_000_000))

    def perf_counter_ns(self) -> int:
        return int(round(self.scheduler.now * 1_000_000_000))


class VirtualResource:
    """A serialised resource paid for in virtual time (FIFO queueing).

    Models the shared client-side cost that produces Fig. 2's throughput
    *decline*: each request occupies the resource for ``cost`` seconds,
    and requests queue behind each other.  Under a busy-wait model this
    would hang a simulation (spinning never advances virtual time), so
    occupancy is book-kept as ``busy_until`` and the excess is slept —
    one cheap event per request.

    Safe without locks under a :class:`Scheduler` (only one task runs at a
    time and control transfers only inside ``sleep``); for wall-clock use
    wrap calls in an external lock.
    """

    def __init__(self, clock: Clock):
        self._clock = clock
        self._busy_until = 0.0

    def occupy(self, cost_s: float) -> None:
        if cost_s <= 0.0:
            return
        now = self._clock.monotonic()
        start = max(now, self._busy_until)
        self._busy_until = start + cost_s
        self._clock.sleep(self._busy_until - now)
