"""Operation tracing for simulated runs.

A violation found by a seed-sweep campaign is only useful if it can be
*replayed* and *read*: :class:`TracingDB` records every DB call a
simulated run makes — virtual timestamp, which simulated task issued it,
phase, operation, key, resulting status — into a :class:`SimTrace`.  A
trace plus the run's seed and fault schedule is the minimal reproducing
artifact: re-running the same seed regenerates the identical interleaving
event for event.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..core.db import DB
from ..core.status import Status
from .scheduler import Scheduler

__all__ = ["TraceEvent", "SimTrace", "TracingDB"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One DB call as seen by the simulation."""

    time_s: float
    task: str
    phase: str
    op: str
    key: str | None
    status: str

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "t": self.time_s,
            "task": self.task,
            "phase": self.phase,
            "op": self.op,
            "status": self.status,
        }
        if self.key is not None:
            payload["key"] = self.key
        return payload


class SimTrace:
    """Accumulates :class:`TraceEvent` rows from one simulated run.

    ``phase`` is a settable label ("load", "run", "validate") the campaign
    advances between client phases.  A ``max_events`` cap bounds memory on
    long runs; ``dropped`` counts what the cap cut, so a truncated trace
    is never mistaken for a complete one.
    """

    def __init__(self, scheduler: Scheduler, max_events: int = 200_000):
        self._scheduler = scheduler
        self._max_events = max_events
        self.phase = "setup"
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def record(self, op: str, key: str | None, status: Status) -> None:
        if len(self.events) >= self._max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                time_s=round(self._scheduler.now, 9),
                task=self._scheduler.current_task_name or "driver",
                phase=self.phase,
                op=op,
                key=key,
                status=status.name,
            )
        )

    def to_payload(self) -> dict[str, object]:
        return {
            "events": [event.to_dict() for event in self.events],
            "dropped_events": self.dropped,
        }


class TracingDB(DB):
    """DB wrapper that logs every call into a :class:`SimTrace`.

    Sits *inside* the client's ``MeasuredDB`` wrapper (the campaign's DB
    factory returns it), so measured latencies include no tracing overhead
    distortions — tracing costs no virtual time at all.
    """

    def __init__(self, inner: DB, trace: SimTrace):
        super().__init__(inner.properties)
        self._inner = inner
        self._trace = trace

    @property
    def inner(self) -> DB:
        return self._inner

    def init(self) -> None:
        self._inner.init()

    def cleanup(self) -> None:
        self._inner.cleanup()

    def counters(self) -> dict[str, int]:
        return self._inner.counters()

    @staticmethod
    def _full_key(table: str, key: str) -> str:
        return f"{table}:{key}" if table else key

    def read(self, table, key, fields=None):
        result, data = self._inner.read(table, key, fields)
        self._trace.record("READ", self._full_key(table, key), result)
        return result, data

    def scan(self, table, start_key, record_count, fields=None):
        result, rows = self._inner.scan(table, start_key, record_count, fields)
        self._trace.record("SCAN", self._full_key(table, start_key), result)
        return result, rows

    def update(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        result = self._inner.update(table, key, values)
        self._trace.record("UPDATE", self._full_key(table, key), result)
        return result

    def insert(self, table: str, key: str, values: Mapping[str, str]) -> Status:
        result = self._inner.insert(table, key, values)
        self._trace.record("INSERT", self._full_key(table, key), result)
        return result

    def delete(self, table: str, key: str) -> Status:
        result = self._inner.delete(table, key)
        self._trace.record("DELETE", self._full_key(table, key), result)
        return result

    def batch_insert(self, table, records) -> Status:
        result = self._inner.batch_insert(table, records)
        first_key = records[0][0] if records else ""
        self._trace.record("BATCH-INSERT", self._full_key(table, first_key), result)
        return result

    def start(self) -> Status:
        result = self._inner.start()
        self._trace.record("START", None, result)
        return result

    def commit(self) -> Status:
        result = self._inner.commit()
        self._trace.record("COMMIT", None, result)
        return result

    def abort(self) -> Status:
        result = self._inner.abort()
        self._trace.record("ABORT", None, result)
        return result
