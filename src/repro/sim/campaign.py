"""Seed-sweep simulation campaigns: hunt for consistency violations.

FoundationDB-style testing inverted into a benchmark tool: instead of one
stress run on wall time and luck, a campaign runs the Closed Economy
Workload M times in *virtual* time — one :class:`~repro.sim.scheduler.
SimClock` per seed — against configurable fault schedules, on both the
raw (non-transactional) binding and the transactional binding.  Each run
is a pure function of its seed, so any run whose validation stage reports
``gamma > 0`` is a *replayable* counterexample: the campaign emits the
seed, the fault schedule and the full operation interleaving as a JSON
artifact, and re-running that seed reproduces the violation event for
event.

The expected shape of a campaign: the raw binding leaks money under torn
writes and interleaved read-modify-writes (gamma > 0 on some seeds); the
transactional binding, running the paper's client-coordinated commit with
retries and verify-then-decide, scores gamma == 0 on every seed.
"""

from __future__ import annotations

import json
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..bindings.kv import KVStoreDB
from ..bindings.txn import TxnDB
from ..core.client import Client
from ..core.closed_economy import ClosedEconomyWorkload
from ..core.properties import Properties
from ..core.retry import RetryPolicy
from ..kvstore.faults import FaultInjectingStore, FaultProfile
from ..kvstore.memory import InMemoryKVStore
from ..measurements.exporters import JsonLinesExporter
from ..measurements.registry import Measurements
from ..txn.manager import ClientTransactionManager
from .clock import use_clock
from .scheduler import SimClock
from .trace import SimTrace, TracingDB

__all__ = [
    "DEFAULT_SIM_PROPERTIES",
    "FAULT_SCHEDULES",
    "SIM_BINDINGS",
    "SimRunResult",
    "CampaignResult",
    "run_sim",
    "run_campaign",
    "write_violation_trace",
]

#: Baseline campaign workload: a small Closed Economy with every CEW
#: operation type in the mix, mid-size zipfian contention, lognormal
#: store latency (interleavings happen *inside* operations) and a retry
#: budget that absorbs transient noise without hiding torn writes.
DEFAULT_SIM_PROPERTIES: dict[str, str] = {
    "table": "usertable",
    "recordcount": "40",
    "operationcount": "400",
    "totalcash": "40000",
    "readproportion": "0.35",
    "updateproportion": "0.20",
    "insertproportion": "0.05",
    "deleteproportion": "0.05",
    "readmodifywriteproportion": "0.35",
    "requestdistribution": "zipfian",
    "fieldcount": "1",
    "threadcount": "6",
    "measurementtype": "hdrhistogram",
    "latency.read_ms": "2",
    "latency.write_ms": "3",
    "latency.model": "lognormal",
    "latency.sigma": "0.4",
    "retry.max_attempts": "8",
    "retry.base_delay_ms": "1",
    "retry.max_delay_ms": "20",
    "txn.isolation": "serializable",
    "txn.lock_lease_ms": "1000",
}

#: Named fault schedules a campaign sweeps (``fault.*`` property sets;
#: faults are enabled for the measured run phase only).
FAULT_SCHEDULES: dict[str, dict[str, str]] = {
    "baseline": {
        "fault.error_rate": "0.04",
        "fault.latency_spike_rate": "0.03",
        "fault.latency_spike_ms": "30",
        "fault.torn_write_rate": "0.03",
    },
    "torn-heavy": {
        "fault.error_rate": "0.02",
        "fault.torn_write_rate": "0.10",
    },
    "storm": {
        "fault.error_rate": "0.12",
        "fault.latency_spike_rate": "0.10",
        "fault.latency_spike_ms": "80",
        "fault.throttle_burst_rate": "0.02",
        "fault.torn_write_rate": "0.05",
    },
}

SIM_BINDINGS = ("raw", "txn")


@dataclass
class SimRunResult:
    """Everything one simulated seed produced."""

    binding: str
    seed: int
    schedule: str
    gamma: float
    passed: bool
    validation_fields: list[tuple[str, str]]
    operations: int
    failed_operations: int
    load_operations: int
    run_time_virtual_s: float
    wall_time_s: float
    events_processed: int
    counters: dict[str, int]
    report_jsonl: str
    properties: dict[str, str]
    trace: SimTrace | None = None
    errors: list[str] = field(default_factory=list)

    @property
    def violation(self) -> bool:
        """True when the economy leaked: the thing campaigns hunt."""
        return self.gamma > 0.0 or not self.passed

    def summary_line(self) -> str:
        flag = "VIOLATION" if self.violation else "ok"
        return (
            f"{self.binding:<4} seed={self.seed:<6} schedule={self.schedule:<10} "
            f"gamma={self.gamma:.6f} ops={self.operations} "
            f"failed={self.failed_operations} vtime={self.run_time_virtual_s:.1f}s "
            f"wall={self.wall_time_s * 1000:.0f}ms {flag}"
        )


def _find_fault_layer(store) -> FaultInjectingStore | None:
    while store is not None:
        if isinstance(store, FaultInjectingStore):
            return store
        store = getattr(store, "inner", None)
    return None


def _build_binding(binding: str, props: Properties, seed: int):
    """Returns ``(db_factory, fault_layer)`` for a campaign binding.

    Stacks are built directly (not through the shared binding registry) so
    every seed starts from an empty store and the campaign can pause the
    fault layer around the load phase.
    """
    from ..bindings.stores import wrap_store

    if binding == "raw":
        store = wrap_store(InMemoryKVStore(), props)
        return (lambda: KVStoreDB(store, props)), _find_fault_layer(store)
    if binding == "txn":
        # The manager does its own retries and must see raw torn-write
        # errors at the commit point, so the store keeps latency + faults
        # but no retry layer (mirrors bindings.txn._default_manager).
        store = wrap_store(InMemoryKVStore(), props.merged({"retry.max_attempts": "1"}))
        manager = ClientTransactionManager(
            store,
            isolation=props.get_str("txn.isolation", "serializable"),
            lock_lease_ms=props.get_float("txn.lock_lease_ms", 1000.0),
            lock_wait_retries=props.get_int("txn.lock_wait_retries", 500),
            retry_policy=RetryPolicy.from_properties(props),
            client_id=f"sim{seed}",
        )
        return (lambda: TxnDB(props, manager=manager)), _find_fault_layer(store)
    raise ValueError(f"unknown sim binding {binding!r}; use one of {SIM_BINDINGS}")


def _campaign_properties(
    base: Mapping[str, str] | None,
    schedule: Mapping[str, str],
    seed: int,
) -> Properties:
    values = dict(DEFAULT_SIM_PROPERTIES)
    values.update({key: str(value) for key, value in schedule.items()})
    if base:
        values.update({key: str(value) for key, value in base.items()})
    # Every RNG in the stack keys off the campaign seed (distinct streams).
    values["seed"] = str(seed)
    values["fault.seed"] = str(seed + 1)
    values["retry.seed"] = str(seed + 2)
    values["latency.seed"] = str(seed + 3)
    return Properties(values)


def run_sim(
    binding: str = "raw",
    properties: Mapping[str, str] | None = None,
    seed: int = 0,
    schedule: str | Mapping[str, str] = "baseline",
    trace: bool = True,
    max_trace_events: int = 200_000,
) -> SimRunResult:
    """One deterministic virtual-time CEW run; the campaign's unit of work.

    Load phase runs fault-free (a botched load is a configuration error,
    not an anomaly), then the schedule's fault profile is switched on for
    the measured run phase, exactly like the wall-clock fault harnesses.
    The whole run — store latencies, fault sleeps, retry backoff, lock
    waits, throttle pacing — advances only virtual time.
    """
    if isinstance(schedule, str):
        schedule_name, schedule_values = schedule, FAULT_SCHEDULES[schedule]
    else:
        schedule_name, schedule_values = "custom", dict(schedule)
    props = _campaign_properties(properties, schedule_values, seed)
    clock = SimClock()
    sim_trace = SimTrace(clock.scheduler, max_trace_events) if trace else None
    wall_started = time.perf_counter()
    with use_clock(clock):
        base_factory, fault_layer = _build_binding(binding, props, seed)
        if sim_trace is not None:
            trace_ref = sim_trace  # narrow for the closure

            def db_factory():
                return TracingDB(base_factory(), trace_ref)

        else:
            db_factory = base_factory
        fault_profile = FaultProfile.from_properties(props)
        if fault_layer is not None:
            fault_layer.profile = FaultProfile()  # faults off for the load
        workload = ClosedEconomyWorkload()
        measurements = Measurements.from_properties(props)
        workload.init(props, measurements)
        client = Client(workload, db_factory, props, measurements)
        if sim_trace is not None:
            sim_trace.phase = "load"
        load = client.load()
        if fault_layer is not None and fault_profile is not None:
            fault_layer.profile = fault_profile
        if sim_trace is not None:
            sim_trace.phase = "run"
        run = client.run()
        workload.cleanup()
    wall_time_s = time.perf_counter() - wall_started
    validation_fields = list(run.validation.fields) if run.validation else []
    counters = {
        name: int(value)
        for name, value in run.measurements.counters().items()
    }
    return SimRunResult(
        binding=binding,
        seed=seed,
        schedule=schedule_name,
        gamma=run.anomaly_score if run.anomaly_score is not None else 0.0,
        passed=run.validation.passed if run.validation else False,
        validation_fields=validation_fields,
        operations=run.operations,
        failed_operations=run.failed_operations,
        load_operations=load.operations,
        run_time_virtual_s=run.run_time_ms / 1000.0,
        wall_time_s=wall_time_s,
        events_processed=clock.scheduler.events_processed,
        counters=counters,
        report_jsonl=JsonLinesExporter().export(run.report()),
        properties=props.as_dict(),
        trace=sim_trace,
        errors=list(run.errors) + list(load.errors),
    )


def write_violation_trace(result: SimRunResult, directory: str | Path) -> Path:
    """Write the minimal reproducing artifact for a violating run.

    The artifact carries everything needed to replay and to read the
    failure: seed, fault schedule, full property set, the gamma verdict,
    and the operation interleaving (virtual time, task, op, key, status
    per DB call).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload: dict[str, object] = {
        "kind": "ycsbt-sim-violation",
        "binding": result.binding,
        "seed": result.seed,
        "schedule": result.schedule,
        "gamma": result.gamma,
        "validation_passed": result.passed,
        "validation": [list(pair) for pair in result.validation_fields],
        "operations": result.operations,
        "failed_operations": result.failed_operations,
        "virtual_run_time_s": result.run_time_virtual_s,
        "events_processed": result.events_processed,
        "counters": result.counters,
        "fault_schedule": {
            key: value
            for key, value in result.properties.items()
            if key.startswith("fault.")
        },
        "properties": result.properties,
        "replay": {
            "command": (
                f"ycsbt sim --db {result.binding} --schedule {result.schedule} "
                f"--seeds 1 --start-seed {result.seed}"
            ),
        },
        "errors": result.errors,
    }
    if result.trace is not None:
        payload["trace"] = result.trace.to_payload()
    path = directory / (
        f"violation-{result.binding}-{result.schedule}-seed{result.seed}.json"
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class CampaignResult:
    """All runs of one campaign plus the violations it surfaced."""

    runs: list[SimRunResult]
    artifacts: list[Path] = field(default_factory=list)

    @property
    def violations(self) -> list[SimRunResult]:
        return [run for run in self.runs if run.violation]

    def by_binding(self, binding: str) -> list[SimRunResult]:
        return [run for run in self.runs if run.binding == binding]

    def summary(self) -> str:
        lines = []
        bindings = sorted({run.binding for run in self.runs})
        for binding in bindings:
            runs = self.by_binding(binding)
            violations = [run for run in runs if run.violation]
            max_gamma = max((run.gamma for run in runs), default=0.0)
            vtime = sum(run.run_time_virtual_s for run in runs)
            wall = sum(run.wall_time_s for run in runs)
            lines.append(
                f"{binding}: {len(runs)} runs, {len(violations)} violations, "
                f"max gamma {max_gamma:.6f}, {vtime:.0f} simulated s "
                f"in {wall:.2f} wall s"
            )
        return "\n".join(lines)


def run_campaign(
    seeds: Sequence[int],
    bindings: Sequence[str] = SIM_BINDINGS,
    schedules: Sequence[str] = ("baseline",),
    properties: Mapping[str, str] | None = None,
    out_dir: str | Path | None = None,
    trace: bool = True,
    on_result=None,
) -> CampaignResult:
    """Sweep seeds x schedules x bindings; write artifacts for violations.

    ``on_result`` (optional callable) receives each :class:`SimRunResult`
    as it completes — the CLI uses it for progressive output.
    """
    result = CampaignResult(runs=[])
    for schedule in schedules:
        for binding in bindings:
            for seed in seeds:
                run = run_sim(
                    binding=binding,
                    properties=properties,
                    seed=seed,
                    schedule=schedule,
                    trace=trace,
                )
                result.runs.append(run)
                if run.violation and out_dir is not None:
                    result.artifacts.append(write_violation_trace(run, out_dir))
                if on_result is not None:
                    on_result(run)
    return result
