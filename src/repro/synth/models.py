"""Statistical models the synthesis engine compiles into op streams.

Three model families, all pure functions of their parameters + a seed:

* **Rate curves** — the target arrival rate over (virtual) time.  A
  curve is a diurnal sine around a base rate plus any number of
  flash-crowd spike segments (trapezoids: ramp, hold, decay), the two
  non-stationary shapes the cloud-workload literature keeps measuring
  in production traces.
* **Arrival processes** — turn a curve into concrete arrival instants:
  ``paced`` integrates the curve deterministically (the instants are a
  pure function of the curve), ``poisson`` draws a non-homogeneous
  Poisson process via Lewis-Shedler thinning (the instants are a pure
  function of curve + seed).
* **Key models** live in :mod:`repro.generators.drift` — drifting
  Zipfian/hotspot skew — and are wired per tenant by the engine.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

__all__ = [
    "SpikeSegment",
    "RateCurve",
    "paced_arrivals",
    "poisson_arrivals",
    "make_arrivals",
    "curve_from_config",
]


@dataclass(frozen=True)
class SpikeSegment:
    """One flash-crowd spike: ramp to a peak, hold, decay back to zero.

    The spike is *additive* on top of the base curve.  ``peak_rate`` is
    extra ops/second at the top of the trapezoid.
    """

    at_s: float
    peak_rate: float
    ramp_s: float = 30.0
    hold_s: float = 60.0
    decay_s: float = 120.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"spike at_s must be >= 0, got {self.at_s}")
        if self.peak_rate <= 0:
            raise ValueError(f"spike peak_rate must be > 0, got {self.peak_rate}")
        for name in ("ramp_s", "hold_s", "decay_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"spike {name} must be >= 0, got {getattr(self, name)}")

    def rate_at(self, t: float) -> float:
        dt = t - self.at_s
        if dt < 0:
            return 0.0
        if dt < self.ramp_s:
            return self.peak_rate * (dt / self.ramp_s)
        dt -= self.ramp_s
        if dt < self.hold_s:
            return self.peak_rate
        dt -= self.hold_s
        if self.decay_s > 0 and dt < self.decay_s:
            return self.peak_rate * (1.0 - dt / self.decay_s)
        return 0.0

    @property
    def end_s(self) -> float:
        return self.at_s + self.ramp_s + self.hold_s + self.decay_s


@dataclass(frozen=True)
class RateCurve:
    """Target arrival rate over time: diurnal sine + additive spikes.

    ``rate(t) = base * (1 + amplitude * sin(2 pi (t + phase) / period))
    + sum(spikes)``.  ``amplitude`` is a fraction of the base in
    ``[0, 1)`` so the curve never goes negative.
    """

    base_rate: float
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 86_400.0
    diurnal_phase_s: float = 0.0
    spikes: tuple[SpikeSegment, ...] = ()

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be > 0, got {self.base_rate}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.diurnal_period_s <= 0:
            raise ValueError(
                f"diurnal_period_s must be > 0, got {self.diurnal_period_s}"
            )

    def rate_at(self, t: float) -> float:
        rate = self.base_rate
        if self.diurnal_amplitude > 0:
            rate *= 1.0 + self.diurnal_amplitude * math.sin(
                2.0 * math.pi * (t + self.diurnal_phase_s) / self.diurnal_period_s
            )
        for spike in self.spikes:
            rate += spike.rate_at(t)
        return rate

    def max_rate(self) -> float:
        """A tight upper bound on ``rate_at`` (for Poisson thinning).

        Spikes are additive trapezoids, so ``base * (1 + amplitude) +
        sum(peaks of overlapping spikes)`` bounds the curve; taking all
        peaks at once keeps the bound simple and still tight enough for
        thinning efficiency on realistic specs.
        """
        bound = self.base_rate * (1.0 + self.diurnal_amplitude)
        return bound + sum(spike.peak_rate for spike in self.spikes)

    def expected_ops(self, start_s: float, end_s: float, samples: int = 64) -> float:
        """Numeric integral of the curve over ``[start_s, end_s]``.

        Composite trapezoid rule; the curves are piecewise smooth so a
        few dozen samples per window gives errors far below the
        conformance tolerance.
        """
        if end_s <= start_s:
            return 0.0
        step = (end_s - start_s) / samples
        total = 0.5 * (self.rate_at(start_s) + self.rate_at(end_s))
        for i in range(1, samples):
            total += self.rate_at(start_s + i * step)
        return total * step


def paced_arrivals(
    curve: RateCurve, scale: float = 1.0, start_s: float = 0.0
) -> Iterator[float]:
    """Deterministic arrival instants tracking ``scale * curve``.

    Steps the local inter-arrival gap ``1 / rate``; for curves that vary
    slowly relative to the gap (every realistic spec) the cumulative
    count tracks the rate integral to well under a percent.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    t = start_s
    while True:
        rate = curve.rate_at(t) * scale
        if rate <= 0:
            # The diurnal trough of an amplitude→1 curve: skip forward in
            # small steps until the rate recovers.
            t += 1.0
            continue
        t += 1.0 / rate
        yield t


def poisson_arrivals(
    curve: RateCurve,
    rng: random.Random,
    scale: float = 1.0,
    start_s: float = 0.0,
) -> Iterator[float]:
    """Non-homogeneous Poisson arrivals via Lewis-Shedler thinning.

    Candidates come from a homogeneous process at the curve's max rate;
    each is accepted with probability ``rate(t) / max_rate``.  Pure
    function of ``(curve, seed, scale)``.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    lam_max = curve.max_rate() * scale
    t = start_s
    while True:
        t += rng.expovariate(lam_max)
        if rng.random() * lam_max <= curve.rate_at(t) * scale:
            yield t


def make_arrivals(
    kind: str,
    curve: RateCurve,
    rng: random.Random,
    scale: float = 1.0,
    start_s: float = 0.0,
) -> Iterator[float]:
    """Arrival iterator for ``kind`` in {"paced", "poisson"}."""
    if kind == "paced":
        return paced_arrivals(curve, scale=scale, start_s=start_s)
    if kind == "poisson":
        return poisson_arrivals(curve, rng, scale=scale, start_s=start_s)
    raise ValueError(f"unknown arrival kind {kind!r}; use 'paced' or 'poisson'")


def curve_from_config(
    base_rate: float,
    diurnal_amplitude: float = 0.0,
    diurnal_period_s: float = 86_400.0,
    diurnal_phase_s: float = 0.0,
    spikes: Sequence[SpikeSegment] = (),
) -> RateCurve:
    """Convenience constructor used by the spec compiler."""
    return RateCurve(
        base_rate=base_rate,
        diurnal_amplitude=diurnal_amplitude,
        diurnal_period_s=diurnal_period_s,
        diurnal_phase_s=diurnal_phase_s,
        spikes=tuple(spikes),
    )
