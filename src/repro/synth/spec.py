"""Declarative workload-synthesis specs.

A :class:`SynthSpec` describes a whole campaign statistically — how many
simulated users, how arrivals pace over time, how the hot keys drift,
how tenants split the traffic — and the engine compiles it into a
deterministic op stream.  Specs come from Python dicts, ``.json`` or
``.toml`` files, or the built-in scenario catalogue, with the same
strict-validation posture as :mod:`repro.experiments.spec`: unknown keys
and out-of-range values raise :class:`SynthSpecError` with a message
that says what to change, before anything runs.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from .models import RateCurve, SpikeSegment

__all__ = [
    "SynthSpecError",
    "TenantSpec",
    "SynthSpec",
    "SCENARIOS",
    "scenario_names",
    "load_synth_spec",
    "synth_spec_from_dict",
]


class SynthSpecError(ValueError):
    """A synthesis spec that cannot run; the message says how to fix it."""


_SPEC_KEYS = frozenset(
    {
        "name",
        "description",
        "duration_s",
        "users",
        "active_users",
        "records",
        "total_cash",
        "binding",
        "arrival",
        "keys",
        "tenants",
        "assertions",
        "properties",
    }
)
_ARRIVAL_KEYS = frozenset(
    {
        "kind",
        "base_rate",
        "diurnal_amplitude",
        "diurnal_period_s",
        "diurnal_phase_s",
        "spikes",
    }
)
_SPIKE_KEYS = frozenset({"at_s", "peak_rate", "ramp_s", "hold_s", "decay_s"})
_KEYS_KEYS = frozenset(
    {"distribution", "theta", "hot_set_fraction", "hot_opn_fraction", "drift_period_s"}
)
_TENANT_KEYS = frozenset(
    {"name", "weight", "keyspace", "rate_limit", "burst", "mix", "user_theta"}
)
_ASSERT_KEYS = frozenset(
    {"rate_tolerance", "buckets", "min_bucket_expected", "require_zero_gamma"}
)
_KEY_DISTRIBUTIONS = ("zipfian", "hotspot", "uniform")
_ARRIVAL_KINDS = ("paced", "poisson")
_BINDINGS = ("raw", "txn")
_MIX_OPS = ("read", "update", "insert", "scan", "readmodifywrite", "delete")

#: Default per-tenant operation mix: the CEW shape, read-heavy with the
#: contended transfer present.  Deliberately churn-free: a CEW ``delete``
#: removes a record from the tenant's key window *permanently* (new
#: accounts appear at the insert frontier, outside the synthesized key
#: range), so over a 10^7-op campaign even a small delete share would
#: hollow out the hot set and the failure rate would drift upward.
#: Scenarios that want churn opt in per tenant and accept the NOT_FOUNDs.
DEFAULT_MIX: dict[str, float] = {
    "read": 0.62,
    "update": 0.16,
    "readmodifywrite": 0.22,
}


def _number(value: Any, what: str, minimum: float | None = None) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SynthSpecError(f"{what} must be a number, got {value!r}")
    if minimum is not None and value < minimum:
        raise SynthSpecError(f"{what} must be >= {minimum}, got {value}")
    return float(value)


def _positive_int(value: Any, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise SynthSpecError(f"{what} must be an int >= 1, got {value!r}")
    return value


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a weighted share of arrivals with its own mix, slice
    of the key space, and optional token-bucket rate ceiling."""

    name: str
    weight: float = 1.0
    #: fraction of the record space this tenant touches, ``[lo, hi)``.
    keyspace: tuple[float, float] = (0.0, 1.0)
    #: ops/second ceiling (token bucket); None = unlimited.
    rate_limit: float | None = None
    #: bucket burst capacity; defaults to the rate.
    burst: float | None = None
    mix: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    #: skew of the user-popularity Zipfian within this tenant.
    user_theta: float = 0.99

    def validate(self) -> None:
        if not self.name:
            raise SynthSpecError("tenant name must not be empty")
        _number(self.weight, f"tenant {self.name!r} weight", minimum=0.0)
        if self.weight <= 0:
            raise SynthSpecError(f"tenant {self.name!r} weight must be > 0")
        lo, hi = self.keyspace
        if not (0.0 <= lo < hi <= 1.0):
            raise SynthSpecError(
                f"tenant {self.name!r} keyspace must satisfy 0 <= lo < hi <= 1, "
                f"got [{lo}, {hi})"
            )
        if self.rate_limit is not None:
            _number(self.rate_limit, f"tenant {self.name!r} rate_limit")
            if self.rate_limit <= 0:
                raise SynthSpecError(
                    f"tenant {self.name!r} rate_limit must be > 0 (omit it for "
                    "unlimited)"
                )
        if self.burst is not None and self.rate_limit is None:
            raise SynthSpecError(
                f"tenant {self.name!r} sets burst without rate_limit"
            )
        if not isinstance(self.mix, Mapping) or not self.mix:
            raise SynthSpecError(f"tenant {self.name!r} mix must be a non-empty mapping")
        for op, share in self.mix.items():
            if op not in _MIX_OPS:
                raise SynthSpecError(
                    f"tenant {self.name!r} mix has unknown op {op!r}; "
                    f"valid ops: {list(_MIX_OPS)}"
                )
            _number(share, f"tenant {self.name!r} mix[{op}]", minimum=0.0)
        if sum(self.mix.values()) <= 0:
            raise SynthSpecError(f"tenant {self.name!r} mix sums to zero")
        if not 0.0 < self.user_theta < 1.0:
            raise SynthSpecError(
                f"tenant {self.name!r} user_theta must be in (0, 1), "
                f"got {self.user_theta}"
            )


@dataclass(frozen=True)
class SynthSpec:
    """A statistically-synthesized campaign, ready to compile.

    The spec is the complete replay unit: ``(spec, seed)`` determines
    every arrival instant, every key, every operation — byte-identical
    output across runs and machines.
    """

    name: str
    duration_s: float
    users: int
    description: str = ""
    #: cap on resident per-user state (lazy LRU); memory is O(this),
    #: never O(users).
    active_users: int = 4096
    records: int = 10_000
    total_cash: int | None = None
    binding: str = "txn"
    # arrival model
    arrival_kind: str = "paced"
    curve: RateCurve = field(default_factory=lambda: RateCurve(base_rate=100.0))
    # key model
    key_distribution: str = "zipfian"
    key_theta: float = 0.99
    hot_set_fraction: float = 0.2
    hot_opn_fraction: float = 0.8
    drift_period_s: float = 0.0
    # tenants
    tenants: tuple[TenantSpec, ...] = (TenantSpec(name="default"),)
    # assertions
    rate_tolerance: float = 0.15
    assert_buckets: int = 24
    min_bucket_expected: int = 50
    require_zero_gamma: bool = True
    # extra workload property overrides
    properties: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.name or not all(
            ch.isalnum() or ch in "-_." for ch in self.name
        ):
            raise SynthSpecError(
                f"bad spec name {self.name!r}: use letters, digits, '-', '_' "
                "and '.' (names become artifact file names)"
            )
        _number(self.duration_s, "duration_s")
        if self.duration_s <= 0:
            raise SynthSpecError(f"duration_s must be > 0, got {self.duration_s}")
        _positive_int(self.users, "users")
        _positive_int(self.active_users, "active_users")
        _positive_int(self.records, "records")
        if self.total_cash is not None:
            _positive_int(self.total_cash, "total_cash")
            if self.total_cash < self.records:
                raise SynthSpecError(
                    f"total_cash must give every account at least $1 "
                    f"({self.total_cash} < {self.records})"
                )
        if self.binding not in _BINDINGS:
            raise SynthSpecError(
                f"unknown binding {self.binding!r}; use one of {list(_BINDINGS)}"
            )
        if self.arrival_kind not in _ARRIVAL_KINDS:
            raise SynthSpecError(
                f"unknown arrival kind {self.arrival_kind!r}; use one of "
                f"{list(_ARRIVAL_KINDS)}"
            )
        if self.key_distribution not in _KEY_DISTRIBUTIONS:
            raise SynthSpecError(
                f"unknown key distribution {self.key_distribution!r}; use one "
                f"of {list(_KEY_DISTRIBUTIONS)}"
            )
        if not 0.0 < self.key_theta < 1.0:
            raise SynthSpecError(
                f"key_theta must be in (0, 1), got {self.key_theta}"
            )
        _number(self.drift_period_s, "drift_period_s", minimum=0.0)
        if not self.tenants:
            raise SynthSpecError("at least one tenant is required")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise SynthSpecError(f"duplicate tenant names in {names}")
        for tenant in self.tenants:
            tenant.validate()
            span = tenant.keyspace[1] - tenant.keyspace[0]
            if int(span * self.records) < 1:
                raise SynthSpecError(
                    f"tenant {tenant.name!r} keyspace slice {tenant.keyspace} "
                    f"covers no records at records={self.records}"
                )
        _number(self.rate_tolerance, "rate_tolerance")
        if not 0.0 < self.rate_tolerance < 1.0:
            raise SynthSpecError(
                f"rate_tolerance must be in (0, 1), got {self.rate_tolerance}"
            )
        if not isinstance(self.assert_buckets, int) or self.assert_buckets < 1:
            raise SynthSpecError(
                f"assert_buckets must be an int >= 1, got {self.assert_buckets!r}"
            )
        if not isinstance(self.min_bucket_expected, int) or self.min_bucket_expected < 0:
            raise SynthSpecError(
                f"min_bucket_expected must be an int >= 0, "
                f"got {self.min_bucket_expected!r}"
            )
        if not isinstance(self.properties, Mapping):
            raise SynthSpecError(
                f"properties must be a mapping, got {type(self.properties).__name__}"
            )

    @property
    def total_weight(self) -> float:
        return sum(tenant.weight for tenant in self.tenants)

    def expected_total_ops(self) -> float:
        """Target operation count of the whole campaign (curve integral)."""
        buckets = max(self.assert_buckets, 24)
        step = self.duration_s / buckets
        return sum(
            self.curve.expected_ops(i * step, (i + 1) * step)
            for i in range(buckets)
        )

    def with_overrides(
        self,
        binding: str | None = None,
        duration_s: float | None = None,
        scale: float | None = None,
    ) -> "SynthSpec":
        """A copy with common sweep knobs replaced.

        ``scale`` multiplies the whole curve (base and spikes) — the
        quick/full switch of the experiments layer.
        """
        updated = self
        if binding is not None:
            updated = replace(updated, binding=binding)
        if duration_s is not None:
            updated = replace(updated, duration_s=duration_s)
        if scale is not None and scale != 1.0:
            curve = updated.curve
            updated = replace(
                updated,
                curve=RateCurve(
                    base_rate=curve.base_rate * scale,
                    diurnal_amplitude=curve.diurnal_amplitude,
                    diurnal_period_s=curve.diurnal_period_s,
                    diurnal_phase_s=curve.diurnal_phase_s,
                    spikes=tuple(
                        replace(spike, peak_rate=spike.peak_rate * scale)
                        for spike in curve.spikes
                    ),
                ),
            )
        return updated

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe round-trippable form (the violation-trace payload)."""
        return {
            "name": self.name,
            "description": self.description,
            "duration_s": self.duration_s,
            "users": self.users,
            "active_users": self.active_users,
            "records": self.records,
            "total_cash": self.total_cash,
            "binding": self.binding,
            "arrival": {
                "kind": self.arrival_kind,
                "base_rate": self.curve.base_rate,
                "diurnal_amplitude": self.curve.diurnal_amplitude,
                "diurnal_period_s": self.curve.diurnal_period_s,
                "diurnal_phase_s": self.curve.diurnal_phase_s,
                "spikes": [
                    {
                        "at_s": spike.at_s,
                        "peak_rate": spike.peak_rate,
                        "ramp_s": spike.ramp_s,
                        "hold_s": spike.hold_s,
                        "decay_s": spike.decay_s,
                    }
                    for spike in self.curve.spikes
                ],
            },
            "keys": {
                "distribution": self.key_distribution,
                "theta": self.key_theta,
                "hot_set_fraction": self.hot_set_fraction,
                "hot_opn_fraction": self.hot_opn_fraction,
                "drift_period_s": self.drift_period_s,
            },
            "tenants": [
                {
                    "name": tenant.name,
                    "weight": tenant.weight,
                    "keyspace": list(tenant.keyspace),
                    "rate_limit": tenant.rate_limit,
                    "burst": tenant.burst,
                    "mix": dict(tenant.mix),
                    "user_theta": tenant.user_theta,
                }
                for tenant in self.tenants
            ],
            "assertions": {
                "rate_tolerance": self.rate_tolerance,
                "buckets": self.assert_buckets,
                "min_bucket_expected": self.min_bucket_expected,
                "require_zero_gamma": self.require_zero_gamma,
            },
            "properties": dict(self.properties),
        }


def _check_keys(data: Mapping[str, Any], allowed: frozenset[str], what: str) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise SynthSpecError(
            f"{what}: unknown keys {sorted(unknown)}; allowed: {sorted(allowed)}"
        )


def _tenant_from_dict(data: Mapping[str, Any], index: int) -> TenantSpec:
    if not isinstance(data, Mapping):
        raise SynthSpecError(
            f"tenants[{index}] must be a mapping, got {type(data).__name__}"
        )
    _check_keys(data, _TENANT_KEYS, f"tenants[{index}]")
    values = dict(data)
    values.setdefault("name", f"tenant{index}")
    keyspace = values.get("keyspace")
    if keyspace is not None:
        if (
            isinstance(keyspace, str)
            or not isinstance(keyspace, Sequence)
            or len(keyspace) != 2
        ):
            raise SynthSpecError(
                f"tenants[{index}] keyspace must be a [lo, hi) pair, "
                f"got {keyspace!r}"
            )
        values["keyspace"] = (float(keyspace[0]), float(keyspace[1]))
    return TenantSpec(**values)


def synth_spec_from_dict(
    data: Mapping[str, Any], source: str = "<dict>"
) -> SynthSpec:
    """Build and validate a :class:`SynthSpec` from parsed config data."""
    if not isinstance(data, Mapping):
        raise SynthSpecError(
            f"{source}: a synth spec must be a mapping, got {type(data).__name__}"
        )
    _check_keys(data, _SPEC_KEYS, source)
    for required in ("name", "duration_s", "users"):
        if required not in data:
            raise SynthSpecError(f"{source}: a synth spec needs {required!r}")

    arrival = data.get("arrival", {})
    if not isinstance(arrival, Mapping):
        raise SynthSpecError(f"{source}: arrival must be a mapping")
    _check_keys(arrival, _ARRIVAL_KEYS, f"{source}: arrival")
    spikes_data = arrival.get("spikes", [])
    if isinstance(spikes_data, Mapping) or isinstance(spikes_data, str):
        raise SynthSpecError(f"{source}: arrival.spikes must be a list")
    spikes = []
    for i, spike in enumerate(spikes_data):
        if not isinstance(spike, Mapping):
            raise SynthSpecError(f"{source}: arrival.spikes[{i}] must be a mapping")
        _check_keys(spike, _SPIKE_KEYS, f"{source}: arrival.spikes[{i}]")
        try:
            spikes.append(SpikeSegment(**spike))
        except (TypeError, ValueError) as exc:
            raise SynthSpecError(f"{source}: arrival.spikes[{i}]: {exc}") from None
    try:
        curve = RateCurve(
            base_rate=float(arrival.get("base_rate", 100.0)),
            diurnal_amplitude=float(arrival.get("diurnal_amplitude", 0.0)),
            diurnal_period_s=float(arrival.get("diurnal_period_s", 86_400.0)),
            diurnal_phase_s=float(arrival.get("diurnal_phase_s", 0.0)),
            spikes=tuple(spikes),
        )
    except ValueError as exc:
        raise SynthSpecError(f"{source}: arrival: {exc}") from None

    keys = data.get("keys", {})
    if not isinstance(keys, Mapping):
        raise SynthSpecError(f"{source}: keys must be a mapping")
    _check_keys(keys, _KEYS_KEYS, f"{source}: keys")

    tenants_data = data.get("tenants")
    if tenants_data is None:
        tenants: tuple[TenantSpec, ...] = (TenantSpec(name="default"),)
    else:
        if isinstance(tenants_data, (str, Mapping)) or not isinstance(
            tenants_data, Sequence
        ):
            raise SynthSpecError(f"{source}: tenants must be a list of mappings")
        tenants = tuple(
            _tenant_from_dict(tenant, index)
            for index, tenant in enumerate(tenants_data)
        )

    assertions = data.get("assertions", {})
    if not isinstance(assertions, Mapping):
        raise SynthSpecError(f"{source}: assertions must be a mapping")
    _check_keys(assertions, _ASSERT_KEYS, f"{source}: assertions")

    properties = data.get("properties", {})
    if not isinstance(properties, Mapping):
        raise SynthSpecError(f"{source}: properties must be a mapping")

    try:
        return SynthSpec(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            duration_s=float(data["duration_s"]),
            users=data["users"],
            active_users=data.get("active_users", 4096),
            records=data.get("records", 10_000),
            total_cash=data.get("total_cash"),
            binding=str(data.get("binding", "txn")),
            arrival_kind=str(arrival.get("kind", "paced")),
            curve=curve,
            key_distribution=str(keys.get("distribution", "zipfian")),
            key_theta=float(keys.get("theta", 0.99)),
            hot_set_fraction=float(keys.get("hot_set_fraction", 0.2)),
            hot_opn_fraction=float(keys.get("hot_opn_fraction", 0.8)),
            drift_period_s=float(keys.get("drift_period_s", 0.0)),
            tenants=tenants,
            rate_tolerance=float(assertions.get("rate_tolerance", 0.15)),
            assert_buckets=assertions.get("buckets", 24),
            min_bucket_expected=assertions.get("min_bucket_expected", 50),
            require_zero_gamma=bool(assertions.get("require_zero_gamma", True)),
            properties={str(k): str(v) for k, v in properties.items()},
        )
    except (TypeError, ValueError) as exc:
        if isinstance(exc, SynthSpecError):
            raise
        raise SynthSpecError(f"{source}: {exc}") from None


def load_synth_spec(source: str | Path) -> SynthSpec:
    """Resolve ``source``: scenario name, ``.json`` or ``.toml`` file."""
    path = Path(source)
    if path.suffix in (".json", ".toml") or path.exists():
        return _load_spec_file(path)
    name = str(source)
    if name in SCENARIOS:
        return SCENARIOS[name]
    raise SynthSpecError(
        f"no synth spec file at {source!r} and no built-in scenario by that "
        f"name; scenarios: {', '.join(scenario_names())}"
    )


def _load_spec_file(path: Path) -> SynthSpec:
    if not path.exists():
        raise SynthSpecError(f"synth spec file {path} does not exist")
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # Python 3.10: no stdlib TOML parser
            raise SynthSpecError(
                f"cannot read {path}: TOML specs need Python 3.11+ (tomllib); "
                "use the JSON spec shape instead"
            ) from None
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    elif path.suffix == ".json":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SynthSpecError(f"cannot parse {path}: {exc}") from None
    else:
        raise SynthSpecError(
            f"unsupported synth spec file type {path.suffix!r}; use .json or .toml"
        )
    return synth_spec_from_dict(data, source=str(path))


# ---------------------------------------------------------------------------
# Built-in scenario catalogue
# ---------------------------------------------------------------------------

SCENARIOS: dict[str, SynthSpec] = {}


def _scenario(spec: SynthSpec) -> None:
    SCENARIOS[spec.name] = spec


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)


_scenario(
    SynthSpec(
        name="steady",
        description="flat arrival rate, static zipfian skew, one tenant",
        duration_s=600.0,
        users=50_000,
        records=2_000,
        curve=RateCurve(base_rate=80.0),
    )
)
_scenario(
    SynthSpec(
        name="diurnal",
        description=(
            "one simulated day compressed to 2 hours: arrival rate follows "
            "a day/night sine (amplitude 0.6) over a zipfian key space"
        ),
        duration_s=7_200.0,
        users=100_000,
        records=4_000,
        curve=RateCurve(
            base_rate=60.0, diurnal_amplitude=0.6, diurnal_period_s=7_200.0
        ),
    )
)
_scenario(
    SynthSpec(
        name="flash_crowd",
        description=(
            "steady background traffic with two flash-crowd spikes (5x and "
            "8x base at the peak) — the cache-stampede shape"
        ),
        duration_s=1_800.0,
        users=100_000,
        records=4_000,
        curve=RateCurve(
            base_rate=50.0,
            spikes=(
                SpikeSegment(at_s=400.0, peak_rate=250.0, ramp_s=20.0,
                             hold_s=60.0, decay_s=120.0),
                SpikeSegment(at_s=1_200.0, peak_rate=400.0, ramp_s=10.0,
                             hold_s=30.0, decay_s=180.0),
            ),
        ),
    )
)
_scenario(
    SynthSpec(
        name="drifting_hotset",
        description=(
            "zipfian skew whose hot set rotates every 5 simulated minutes "
            "— trending-content churn over a steady arrival rate"
        ),
        duration_s=3_600.0,
        users=100_000,
        records=5_000,
        drift_period_s=300.0,
        curve=RateCurve(base_rate=70.0),
    )
)
_scenario(
    SynthSpec(
        name="multi_tenant",
        description=(
            "three tenants on disjoint keyspace slices: a read-heavy whale, "
            "a write-heavy mid tenant under a 20 ops/s token-bucket "
            "ceiling, and a small scan-free tail tenant"
        ),
        duration_s=1_200.0,
        users=150_000,
        records=6_000,
        curve=RateCurve(base_rate=90.0),
        tenants=(
            TenantSpec(
                name="whale",
                weight=0.6,
                keyspace=(0.0, 0.5),
                mix={"read": 0.8, "update": 0.05, "readmodifywrite": 0.15},
            ),
            TenantSpec(
                name="writer",
                weight=0.3,
                keyspace=(0.5, 0.85),
                rate_limit=20.0,
                burst=10.0,
                mix={
                    "read": 0.2,
                    "update": 0.5,
                    "insert": 0.05,
                    "readmodifywrite": 0.25,
                },
            ),
            TenantSpec(
                name="tail",
                weight=0.1,
                keyspace=(0.85, 1.0),
                mix={"read": 0.7, "update": 0.3},
            ),
        ),
    )
)
