"""Statistical workload synthesis: declarative specs -> deterministic op
streams on the virtual-time scheduler.

The pipeline:

1. A :class:`~repro.synth.spec.SynthSpec` (dict / JSON / TOML / built-in
   scenario) declares the campaign statistically: arrival-rate curve
   (diurnal sine + flash-crowd spikes), drifting hot-key skew,
   multi-tenant mixes with token-bucket ceilings, a simulated user
   population.
2. :func:`~repro.synth.engine.run_synth` compiles it into one
   deterministic run on the sim clock — O(active-users) memory, minutes
   of wall time for a million-user / ten-million-op day — and checks
   the spec's conformance assertions.
3. :func:`~repro.synth.campaign.run_synth_campaign` sweeps seeds x
   scenarios x bindings and writes replayable violation traces, exactly
   like ``ycsbt sim``.
"""

from .campaign import (
    SynthCampaignResult,
    run_synth_campaign,
    write_synth_violation_trace,
)
from .engine import (
    DEFAULT_SYNTH_PROPERTIES,
    AssertionOutcome,
    SynthCewWorkload,
    SynthRunResult,
    run_synth,
)
from .models import (
    RateCurve,
    SpikeSegment,
    make_arrivals,
    paced_arrivals,
    poisson_arrivals,
)
from .spec import (
    SCENARIOS,
    SynthSpec,
    SynthSpecError,
    TenantSpec,
    load_synth_spec,
    scenario_names,
    synth_spec_from_dict,
)

__all__ = [
    "AssertionOutcome",
    "DEFAULT_SYNTH_PROPERTIES",
    "RateCurve",
    "SCENARIOS",
    "SpikeSegment",
    "SynthCampaignResult",
    "SynthCewWorkload",
    "SynthRunResult",
    "SynthSpec",
    "SynthSpecError",
    "TenantSpec",
    "load_synth_spec",
    "make_arrivals",
    "paced_arrivals",
    "poisson_arrivals",
    "run_synth",
    "run_synth_campaign",
    "scenario_names",
    "synth_spec_from_dict",
    "write_synth_violation_trace",
]
