"""The synthesis engine: compile a :class:`SynthSpec` into one run.

The engine is a single-driver discrete-event loop on the PR-4 virtual
clock.  Simulated users are *statistical*, not threads: a per-tenant
arrival process says **when** the next request happens, a per-tenant
Zipfian over the user population says **who** issues it, and per-user
state is materialised lazily into an LRU capped at ``active_users`` —
so a million-user campaign holds thousands of user records in memory,
never a million, and a 10^7-op day completes in minutes of wall time
(the driver-context ``sleep`` fast path advances virtual time in O(1)
per op, with zero thread switches).

Every run is a pure function of ``(spec, binding, seed)``: arrivals,
user draws, keys, operation choices, injected latencies and retry
backoff all derive from the one seed, so a failed assertion is a
replayable counterexample, exactly like ``ycsbt sim`` violations.
"""

from __future__ import annotations

import heapq
import random
import time
from collections import OrderedDict, deque
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from ..core.closed_economy import ClosedEconomyWorkload
from ..core.db import DB, MeasuredDB
from ..core.properties import Properties
from ..generators import (
    DiscreteGenerator,
    DriftingHotspotGenerator,
    DriftingZipfianGenerator,
    NumberGenerator,
    UniformLongGenerator,
    ZipfianGenerator,
)
from ..generators.hashing import fnv1_64
from ..kvstore.ratelimit import TokenBucket
from ..measurements.registry import Measurements, StopWatch
from ..sim.campaign import _build_binding
from ..sim.clock import use_clock
from ..sim.scheduler import SimClock
from .spec import SynthSpec, TenantSpec

__all__ = [
    "DEFAULT_SYNTH_PROPERTIES",
    "AssertionOutcome",
    "SynthRunResult",
    "SynthCewWorkload",
    "run_synth",
]

#: Baseline stack under a synthesized campaign: modest lognormal store
#: latency (so histograms carry a realistic shape), a small retry budget,
#: no fault injection — conformance assertions measure the *workload
#: model*, not a fault schedule.  Specs override any of these through
#: ``properties``.
DEFAULT_SYNTH_PROPERTIES: dict[str, str] = {
    "table": "usertable",
    "fieldcount": "1",
    "measurementtype": "hdrhistogram",
    "requestdistribution": "zipfian",
    "maxscanlength": "20",
    "threadcount": "1",
    "latency.read_ms": "0.5",
    "latency.write_ms": "0.8",
    "latency.model": "lognormal",
    "latency.sigma": "0.3",
    "retry.max_attempts": "4",
    "retry.base_delay_ms": "1",
    "retry.max_delay_ms": "10",
    "txn.isolation": "serializable",
    "txn.lock_lease_ms": "1000",
}

#: Operation series copied into result histograms (the six CEW ops plus
#: the whole-transaction view).
_HISTOGRAM_OPS = (
    "READ",
    "UPDATE",
    "INSERT",
    "SCAN",
    "READMODIFYWRITE",
    "DELETE",
    "TX-READMODIFYWRITE",
)


class _UserState:
    """Resident state of one simulated user (lazy, LRU-evictable)."""

    __slots__ = ("home_key", "operations")

    def __init__(self, home_key: int):
        self.home_key = home_key
        self.operations = 0


class SynthCewWorkload(ClosedEconomyWorkload):
    """CEW with externally chosen keys and operations.

    The synthesis loop picks the key (tenant keyspace slice, drifting
    skew) and the operation (tenant mix) itself; this subclass lets it
    *inject* those choices while keeping CEW's money semantics, escrow
    settlement and validation stage untouched.  Injected keys are
    consumed by :meth:`next_key_number` in FIFO order; when the queue is
    empty (validation scans, extra draws) the inherited chooser applies.
    """

    def init(self, properties: Properties, measurements=None) -> None:
        super().init(properties, measurements)
        self._injected_keys: deque[int] = deque()

    def inject_keys(self, *keys: int) -> None:
        self._injected_keys.extend(keys)

    def next_key_number(self) -> int:
        if self._injected_keys:
            key = self._injected_keys.popleft()
            # Defensive clamp: an injected key must reference a record
            # that could exist (the tenant slices guarantee this already).
            limit = self.transaction_insert_sequence.last_value()
            return key if key <= limit else limit
        return super().next_key_number()

    def run_operation(self, db: DB, operation: str, thread_state) -> str | None:
        """Execute one externally chosen CEW operation."""
        handler = getattr(self, f"_txn_{operation.lower()}")
        ok = handler(db, thread_state)
        self._count_operation()
        return operation if ok else None


@dataclass
class AssertionOutcome:
    """One deterministic post-run check."""

    name: str
    passed: bool
    detail: str

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "passed": self.passed, "detail": self.detail}


@dataclass
class SynthRunResult:
    """Everything one synthesized seed produced."""

    scenario: str
    binding: str
    seed: int
    operations: int
    failed_operations: int
    throttled_operations: int
    gamma: float
    validation_passed: bool
    assertions: list[AssertionOutcome]
    arrivals_by_bucket: list[int]
    executed_by_bucket: list[int]
    target_by_bucket: list[float]
    tenant_offered: dict[str, int]
    tenant_admitted: dict[str, int]
    tenant_throttled: dict[str, int]
    peak_user_states: int
    distinct_users: int
    virtual_time_s: float
    wall_time_s: float
    counters: dict[str, int]
    histograms: dict[str, dict] = field(default_factory=dict)
    properties: dict[str, str] = field(default_factory=dict)
    validation_fields: list[tuple[str, str]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.assertions)

    @property
    def violation(self) -> bool:
        """True when any deterministic assertion failed: replay the seed."""
        return not self.passed

    def failed_assertions(self) -> list[AssertionOutcome]:
        return [outcome for outcome in self.assertions if not outcome.passed]

    def summary_line(self) -> str:
        flag = "VIOLATION" if self.violation else "ok"
        return (
            f"{self.binding:<4} seed={self.seed:<6} scenario={self.scenario:<16} "
            f"ops={self.operations} failed={self.failed_operations} "
            f"throttled={self.throttled_operations} gamma={self.gamma:.6f} "
            f"users={self.distinct_users} (peak resident {self.peak_user_states}) "
            f"vtime={self.virtual_time_s:.0f}s wall={self.wall_time_s:.1f}s {flag}"
        )


class _TenantRuntime:
    """Per-tenant machinery compiled from a :class:`TenantSpec`."""

    __slots__ = (
        "spec",
        "index",
        "arrivals",
        "key_gen",
        "op_chooser",
        "user_chooser",
        "bucket",
        "key_lo",
        "key_span",
        "offered",
        "admitted",
        "throttled",
        "admitted_by_bucket",
    )

    def __init__(
        self,
        spec: TenantSpec,
        index: int,
        arrivals: Iterator[float],
        key_gen: NumberGenerator,
        op_chooser: DiscreteGenerator,
        user_chooser: ZipfianGenerator,
        bucket: TokenBucket | None,
        key_lo: int,
        key_span: int,
        assert_buckets: int,
    ):
        self.spec = spec
        self.index = index
        self.arrivals = arrivals
        self.key_gen = key_gen
        self.op_chooser = op_chooser
        self.user_chooser = user_chooser
        self.bucket = bucket
        self.key_lo = key_lo
        self.key_span = key_span
        self.offered = 0
        self.admitted = 0
        self.throttled = 0
        self.admitted_by_bucket = [0] * assert_buckets


def _synth_properties(spec: SynthSpec, seed: int) -> Properties:
    values = dict(DEFAULT_SYNTH_PROPERTIES)
    values.update({key: str(value) for key, value in spec.properties.items()})
    total_cash = (
        spec.total_cash if spec.total_cash is not None else spec.records * 1000
    )
    values["recordcount"] = str(spec.records)
    values["operationcount"] = str(max(1, int(spec.expected_total_ops())))
    values["totalcash"] = str(total_cash)
    # One seed replays everything: the generators read ``workload.seed``
    # and every injection layer derives its stream from it (fan-out
    # offsets in bindings.stores.wrap_store).
    values["seed"] = str(seed)
    values["workload.seed"] = str(seed)
    return Properties(values)


def _build_tenant(
    spec: SynthSpec,
    tenant: TenantSpec,
    index: int,
    seed: int,
    clock: SimClock,
) -> _TenantRuntime:
    from .models import make_arrivals

    rng = random.Random(seed * 1_000_003 + 101 * (index + 1))
    lo_frac, hi_frac = tenant.keyspace
    key_lo = int(lo_frac * spec.records)
    key_hi = max(key_lo, int(hi_frac * spec.records) - 1)
    key_span = key_hi - key_lo + 1

    key_gen: NumberGenerator
    if spec.key_distribution == "zipfian":
        key_gen = DriftingZipfianGenerator(
            key_lo,
            key_hi,
            theta=spec.key_theta,
            drift_period_s=spec.drift_period_s,
            rng=rng,
            clock=clock.monotonic,
        )
    elif spec.key_distribution == "hotspot":
        key_gen = DriftingHotspotGenerator(
            key_lo,
            key_hi,
            hot_set_fraction=spec.hot_set_fraction,
            hot_opn_fraction=spec.hot_opn_fraction,
            drift_period_s=spec.drift_period_s,
            rng=rng,
            clock=clock.monotonic,
        )
    else:
        key_gen = UniformLongGenerator(key_lo, key_hi, rng=rng)

    op_chooser = DiscreteGenerator(rng=rng)
    for op, weight in sorted(tenant.mix.items()):
        if weight > 0:
            op_chooser.add_value(weight, op.upper())

    user_chooser = ZipfianGenerator(
        0, spec.users - 1, theta=tenant.user_theta, rng=rng
    )
    bucket = (
        TokenBucket(tenant.rate_limit, tenant.burst, clock=clock.monotonic)
        if tenant.rate_limit is not None
        else None
    )
    arrivals = make_arrivals(
        spec.arrival_kind,
        spec.curve,
        rng,
        scale=tenant.weight / spec.total_weight,
    )
    return _TenantRuntime(
        tenant,
        index,
        arrivals,
        key_gen,
        op_chooser,
        user_chooser,
        bucket,
        key_lo,
        key_span,
        spec.assert_buckets,
    )


def _load_records(workload: SynthCewWorkload, db: DB, spec: SynthSpec) -> int:
    """Bulk-load the account table (fault-free, batched)."""
    state = workload.init_thread(0, 1)
    loaded = 0
    while loaded < spec.records:
        batch = min(1000, spec.records - loaded)
        if not db.start().ok:
            raise RuntimeError("synth load: could not start a load transaction")
        inserted = workload.do_batch_insert(db, state, batch)
        if inserted > 0:
            if not db.commit().ok:
                inserted = 0
        else:
            db.abort()
        if inserted == 0:
            raise RuntimeError(
                f"synth load stalled after {loaded}/{spec.records} records"
            )
        loaded += inserted
    return loaded


def _execute_transaction(
    workload: SynthCewWorkload,
    db: MeasuredDB,
    measurements: Measurements,
    operation: str,
    state,
) -> bool:
    """One operation under YCSB+T transaction wrapping (mirrors Client)."""
    watch = StopWatch()
    if not db.start().ok:
        return False
    executed = workload.run_operation(db, operation, state)
    committed = False
    if executed is not None:
        committed = db.commit().ok
    else:
        db.abort()
    workload.finish_transaction(db, state, executed, committed)
    label = f"TX-{executed}" if executed is not None else "TX-ABORTED"
    measurements.measure(label, watch.elapsed_us())
    measurements.report_status(label, "OK" if committed else "ERROR")
    return committed


def _check_assertions(
    spec: SynthSpec,
    runtimes: list[_TenantRuntime],
    arrivals_by_bucket: list[int],
    target_by_bucket: list[float],
    gamma: float,
    validation_passed: bool,
    peak_user_states: int,
) -> list[AssertionOutcome]:
    outcomes: list[AssertionOutcome] = []
    step = spec.duration_s / spec.assert_buckets

    # (1) Achieved arrival rate tracks the target curve, bucket by bucket.
    worst = 0.0
    worst_bucket = -1
    checked = 0
    stochastic = spec.arrival_kind == "poisson"
    for b, expected in enumerate(target_by_bucket):
        if expected < spec.min_bucket_expected:
            continue
        checked += 1
        tolerance = spec.rate_tolerance
        if stochastic:
            # A Poisson count's relative sd is 1/sqrt(n); allow 4 sigma on
            # top of the modelling tolerance so conformance tests the
            # curve, not sampling noise.
            tolerance += 4.0 / expected**0.5
        error = abs(arrivals_by_bucket[b] - expected) / expected
        if error > tolerance and error > worst:
            worst = error
            worst_bucket = b
    outcomes.append(
        AssertionOutcome(
            name="rate-conformance",
            passed=worst_bucket < 0,
            detail=(
                f"{checked}/{spec.assert_buckets} buckets checked "
                f"(window {step:.0f}s, tolerance {spec.rate_tolerance:.0%})"
                if worst_bucket < 0
                else (
                    f"bucket {worst_bucket}: offered "
                    f"{arrivals_by_bucket[worst_bucket]} vs target "
                    f"{target_by_bucket[worst_bucket]:.0f} "
                    f"({worst:.0%} off, tolerance {spec.rate_tolerance:.0%})"
                )
            ),
        )
    )

    # (2) Per-tenant token-bucket ceilings were never exceeded.
    for rt in runtimes:
        limit = rt.spec.rate_limit
        if limit is None:
            continue
        burst = rt.spec.burst if rt.spec.burst is not None else limit
        allowed = limit * step + burst + 2.0
        over = [
            (b, count)
            for b, count in enumerate(rt.admitted_by_bucket)
            if count > allowed
        ]
        outcomes.append(
            AssertionOutcome(
                name=f"rate-ceiling:{rt.spec.name}",
                passed=not over,
                detail=(
                    f"admitted <= {allowed:.0f}/bucket "
                    f"(limit {limit}/s, burst {burst}, "
                    f"{rt.throttled} throttled)"
                    if not over
                    else (
                        f"bucket {over[0][0]}: admitted {over[0][1]} "
                        f"> allowed {allowed:.0f}"
                    )
                ),
            )
        )

    # (3) The economy stayed closed (serial execution must score zero).
    if spec.require_zero_gamma:
        outcomes.append(
            AssertionOutcome(
                name="zero-gamma",
                passed=gamma == 0.0 and validation_passed,
                detail=f"gamma={gamma:.6f} validation_passed={validation_passed}",
            )
        )

    # (4) Resident user state stayed under the LRU cap: O(active), not O(users).
    outcomes.append(
        AssertionOutcome(
            name="bounded-user-state",
            passed=peak_user_states <= spec.active_users,
            detail=(
                f"peak {peak_user_states} resident of {spec.users} simulated "
                f"(cap {spec.active_users})"
            ),
        )
    )
    return outcomes


def run_synth(
    spec: SynthSpec,
    binding: str | None = None,
    seed: int = 0,
) -> SynthRunResult:
    """Compile and run one synthesized campaign seed in virtual time."""
    binding = binding or spec.binding
    props = _synth_properties(spec, seed)
    clock = SimClock()
    wall_started = time.perf_counter()
    with use_clock(clock):
        db_factory, _fault_layer = _build_binding(binding, props, seed)
        workload = SynthCewWorkload()
        measurements = Measurements.from_properties(props)
        workload.init(props, measurements)

        load_db = MeasuredDB(db_factory(), Measurements())
        load_db.init()
        _load_records(workload, load_db, spec)
        load_db.cleanup()

        db = MeasuredDB(db_factory(), measurements)
        db.init()
        cew_state = workload.init_thread(0, 1)
        runtimes = [
            _build_tenant(spec, tenant, index, seed, clock)
            for index, tenant in enumerate(spec.tenants)
        ]

        buckets = spec.assert_buckets
        step = spec.duration_s / buckets
        arrivals_by_bucket = [0] * buckets
        executed_by_bucket = [0] * buckets
        users: OrderedDict[tuple[int, int], _UserState] = OrderedDict()
        peak_user_states = 0
        distinct_users = 0
        operations = 0
        failed = 0
        throttled = 0

        heap: list[tuple[float, int]] = []
        for rt in runtimes:
            first = next(rt.arrivals)
            if first <= spec.duration_s:
                heapq.heappush(heap, (first, rt.index))

        while heap:
            t, index = heapq.heappop(heap)
            rt = runtimes[index]
            upcoming = next(rt.arrivals)
            if upcoming <= spec.duration_s:
                heapq.heappush(heap, (upcoming, index))

            bucket = min(buckets - 1, int(t / step))
            arrivals_by_bucket[bucket] += 1
            rt.offered += 1
            # Driver-context fast path: advances virtual time in O(1).
            gap = t - clock.monotonic()
            if gap > 0:
                clock.sleep(gap)

            if rt.bucket is not None and not rt.bucket.try_acquire():
                throttled += 1
                rt.throttled += 1
                measurements.increment(f"THROTTLED-{rt.spec.name}")
                continue
            rt.admitted += 1
            rt.admitted_by_bucket[bucket] += 1

            user_id = rt.user_chooser.next_value()
            user_key = (index, user_id)
            user = users.get(user_key)
            if user is None:
                distinct_users += 1
                user = _UserState(rt.key_lo + fnv1_64(user_id) % rt.key_span)
                users[user_key] = user
                if len(users) > spec.active_users:
                    users.popitem(last=False)
            else:
                users.move_to_end(user_key)
            if len(users) > peak_user_states:
                peak_user_states = len(users)
            user.operations += 1

            operation = rt.op_chooser.next_value()
            if operation == "READMODIFYWRITE":
                # The transfer's counterparty is the user's home account:
                # popular users make their home keys hot, naturally.
                workload.inject_keys(rt.key_gen.next_value(), user.home_key)
            elif operation != "INSERT":
                workload.inject_keys(rt.key_gen.next_value())

            committed = _execute_transaction(
                workload, db, measurements, operation, cew_state
            )
            operations += 1
            executed_by_bucket[bucket] += 1
            if not committed:
                failed += 1

        validation = workload.validate(db)
        db.cleanup()
        virtual_time_s = clock.monotonic()

    wall_time_s = time.perf_counter() - wall_started
    gamma = validation.anomaly_score if validation.anomaly_score is not None else 0.0
    target_by_bucket = [
        spec.curve.expected_ops(b * step, (b + 1) * step) for b in range(buckets)
    ]
    assertions = _check_assertions(
        spec,
        runtimes,
        arrivals_by_bucket,
        target_by_bucket,
        gamma,
        validation.passed,
        peak_user_states,
    )
    operation_payloads = measurements.to_dict().get("operations", {})
    histograms = {
        name: payload
        for name, payload in operation_payloads.items()
        if name in _HISTOGRAM_OPS
    }
    return SynthRunResult(
        scenario=spec.name,
        binding=binding,
        seed=seed,
        operations=operations,
        failed_operations=failed,
        throttled_operations=throttled,
        gamma=gamma,
        validation_passed=validation.passed,
        assertions=assertions,
        arrivals_by_bucket=arrivals_by_bucket,
        executed_by_bucket=executed_by_bucket,
        target_by_bucket=target_by_bucket,
        tenant_offered={rt.spec.name: rt.offered for rt in runtimes},
        tenant_admitted={rt.spec.name: rt.admitted for rt in runtimes},
        tenant_throttled={rt.spec.name: rt.throttled for rt in runtimes},
        peak_user_states=peak_user_states,
        distinct_users=distinct_users,
        virtual_time_s=virtual_time_s,
        wall_time_s=wall_time_s,
        counters={
            name: int(value) for name, value in measurements.counters().items()
        },
        histograms=histograms,
        properties=props.as_dict(),
        validation_fields=[
            (str(name), str(value)) for name, value in validation.fields
        ],
    )
