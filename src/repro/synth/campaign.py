"""Synthesis campaigns: seeds x scenarios x bindings, with artifacts.

Mirrors :mod:`repro.sim.campaign`: a campaign sweeps the grid, each cell
is a pure function of its coordinates, and any cell whose deterministic
assertions fail emits a *replayable* violation trace — the full spec,
the seed, and the exact CLI command that reproduces it.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .engine import SynthRunResult, run_synth
from .spec import SCENARIOS, SynthSpec, load_synth_spec

__all__ = [
    "SynthCampaignResult",
    "run_synth_campaign",
    "write_synth_violation_trace",
]


def write_synth_violation_trace(result: SynthRunResult, directory: str | Path) -> Path:
    """Write the minimal reproducing artifact for a failed run."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    spec = SCENARIOS.get(result.scenario)
    payload: dict[str, object] = {
        "kind": "ycsbt-synth-violation",
        "scenario": result.scenario,
        "binding": result.binding,
        "seed": result.seed,
        "operations": result.operations,
        "failed_operations": result.failed_operations,
        "throttled_operations": result.throttled_operations,
        "gamma": result.gamma,
        "validation_passed": result.validation_passed,
        "validation": [list(pair) for pair in result.validation_fields],
        "assertions": [outcome.to_dict() for outcome in result.assertions],
        "arrivals_by_bucket": result.arrivals_by_bucket,
        "target_by_bucket": result.target_by_bucket,
        "tenant_offered": result.tenant_offered,
        "tenant_admitted": result.tenant_admitted,
        "tenant_throttled": result.tenant_throttled,
        "peak_user_states": result.peak_user_states,
        "distinct_users": result.distinct_users,
        "virtual_time_s": result.virtual_time_s,
        "counters": result.counters,
        "properties": result.properties,
        "replay": {
            "command": (
                f"ycsbt synth --scenario {result.scenario} --db {result.binding} "
                f"--seeds 1 --start-seed {result.seed}"
            ),
        },
    }
    if spec is not None:
        payload["spec"] = spec.to_dict()
    path = directory / (
        f"synth-violation-{result.scenario}-{result.binding}-seed{result.seed}.json"
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class SynthCampaignResult:
    """All runs of one synthesis campaign plus the violations surfaced."""

    runs: list[SynthRunResult]
    artifacts: list[Path] = field(default_factory=list)

    @property
    def violations(self) -> list[SynthRunResult]:
        return [run for run in self.runs if run.violation]

    def by_scenario(self, scenario: str) -> list[SynthRunResult]:
        return [run for run in self.runs if run.scenario == scenario]

    def summary(self) -> str:
        lines = []
        scenarios = sorted({run.scenario for run in self.runs})
        for scenario in scenarios:
            runs = self.by_scenario(scenario)
            violations = [run for run in runs if run.violation]
            ops = sum(run.operations for run in runs)
            vtime = sum(run.virtual_time_s for run in runs)
            wall = sum(run.wall_time_s for run in runs)
            peak = max((run.peak_user_states for run in runs), default=0)
            lines.append(
                f"{scenario}: {len(runs)} runs, {len(violations)} violations, "
                f"{ops} ops, peak {peak} resident users, "
                f"{vtime:.0f} simulated s in {wall:.1f} wall s"
            )
        return "\n".join(lines)


def run_synth_campaign(
    scenarios: Sequence[str | SynthSpec],
    seeds: Sequence[int],
    bindings: Sequence[str] | None = None,
    out_dir: str | Path | None = None,
    on_result=None,
) -> SynthCampaignResult:
    """Sweep scenarios x bindings x seeds; write artifacts for violations.

    ``scenarios`` entries are scenario names, spec file paths, or
    :class:`SynthSpec` objects.  ``bindings=None`` uses each spec's own
    binding.  ``on_result`` receives each :class:`SynthRunResult` as it
    completes (the CLI uses it for progressive output).
    """
    result = SynthCampaignResult(runs=[])
    for scenario in scenarios:
        spec = scenario if isinstance(scenario, SynthSpec) else load_synth_spec(scenario)
        sweep_bindings = list(bindings) if bindings else [spec.binding]
        for binding in sweep_bindings:
            for seed in seeds:
                run = run_synth(spec, binding=binding, seed=seed)
                result.runs.append(run)
                if run.violation and out_dir is not None:
                    result.artifacts.append(write_synth_violation_trace(run, out_dir))
                if on_result is not None:
                    on_result(run)
    return result
