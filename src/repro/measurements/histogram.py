"""Latency measurement containers.

YCSB's classic measurement type is a fixed-bucket histogram with one bucket
per millisecond up to ``histogram.buckets`` (default 1000), plus an overflow
bucket; latencies are recorded in microseconds.  ``measurementtype=raw``
keeps every sample instead, which is exact but unbounded.  Both are
implemented here behind a single :class:`OneMeasurement` interface; the
microsecond-resolution streaming default lives in :mod:`repro.measurements.hdr`.

Every container also supports *interval* snapshots
(:meth:`OneMeasurement.interval_summary`): the distribution of samples
recorded since the previous snapshot, consumed by the live status thread
without disturbing the cumulative summary.
"""

from __future__ import annotations

import math
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

__all__ = [
    "MeasurementSummary",
    "OneMeasurement",
    "HistogramMeasurement",
    "RawMeasurement",
    "nearest_rank",
]


def nearest_rank(fraction: float, count: int) -> int:
    """1-based nearest-rank of the ``fraction`` percentile over ``count`` samples.

    The nearest-rank definition is ``ceil(fraction * count)``; ``round()``
    is wrong here both for rounding down (p95 of 10 samples must be the
    10th, not the 9th) and for banker's rounding on exact halves.
    """
    return max(1, math.ceil(fraction * count))


@dataclass
class MeasurementSummary:
    """Aggregated view of one operation's latency series.

    Latencies are microseconds throughout, matching the paper's output
    (Listing 3 prints ``AverageLatency(us)`` etc.).
    """

    operation: str
    count: int = 0
    average_us: float = 0.0
    min_us: int = 0
    max_us: int = 0
    percentile_95_us: float = 0.0
    percentile_99_us: float = 0.0
    return_codes: dict[str, int] = field(default_factory=dict)

    @property
    def total_us(self) -> float:
        return self.average_us * self.count


class OneMeasurement(ABC):
    """Collects the latency series and return codes for one operation."""

    def __init__(self, operation: str):
        self.operation = operation
        self._lock = threading.Lock()
        self._return_codes: dict[str, int] = {}

    def report_status(self, code_name: str) -> None:
        """Count one occurrence of return code ``code_name``."""
        with self._lock:
            self._return_codes[code_name] = self._return_codes.get(code_name, 0) + 1

    def return_codes(self) -> dict[str, int]:
        with self._lock:
            return dict(self._return_codes)

    def _absorb_return_codes(self, codes: dict[str, int]) -> None:
        """Add another container's return-code counts into this one."""
        with self._lock:
            for code, occurrences in codes.items():
                self._return_codes[code] = self._return_codes.get(code, 0) + occurrences

    def merge_from(self, other: "OneMeasurement") -> None:
        """Fold another container's samples into this one (scale-out merge).

        Subclasses merge losslessly where the representation allows it
        (same-shaped histograms add counts elementwise).  Raises
        :class:`ValueError` when the two containers are not compatible.
        """
        raise ValueError(
            f"cannot merge {type(other).__name__} into {type(self).__name__}"
        )

    def to_dict(self) -> dict:
        """JSON-safe snapshot, reversible via the matching ``from_dict``."""
        raise NotImplementedError(f"{type(self).__name__} is not serialisable")

    @abstractmethod
    def measure(self, latency_us: int) -> None:
        """Record one latency sample, in microseconds."""

    @abstractmethod
    def summary(self) -> MeasurementSummary:
        """Aggregate everything recorded so far."""

    @abstractmethod
    def interval_summary(self) -> MeasurementSummary:
        """Aggregate of the samples recorded since the previous call.

        Consumes the interval: each sample appears in exactly one interval
        summary.  Return codes are cumulative-only and stay out of the
        interval view.
        """


class HistogramMeasurement(OneMeasurement):
    """Fixed-bucket histogram: one bucket per millisecond.

    Percentiles are therefore accurate to 1 ms; min/max/average are exact.
    Memory is O(buckets) regardless of sample count, which is what lets
    YCSB run million-operation benchmarks cheaply.
    """

    def __init__(self, operation: str, buckets: int = 1000):
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        super().__init__(operation)
        self._buckets = [0] * buckets
        self._overflow = 0
        self._count = 0
        self._total_us = 0
        self._min_us: int | None = None
        self._max_us: int | None = None
        # Interval (since-last-snapshot) state for the status thread.
        self._iv_buckets = [0] * buckets
        self._iv_base_count = 0
        self._iv_total_us = 0
        self._iv_min_us: int | None = None
        self._iv_max_us: int | None = None

    def measure(self, latency_us: int) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        bucket = latency_us // 1000
        with self._lock:
            if bucket < len(self._buckets):
                self._buckets[bucket] += 1
            else:
                self._overflow += 1
            self._count += 1
            self._total_us += latency_us
            if self._min_us is None or latency_us < self._min_us:
                self._min_us = latency_us
            if self._max_us is None or latency_us > self._max_us:
                self._max_us = latency_us
            self._iv_total_us += latency_us
            if self._iv_min_us is None or latency_us < self._iv_min_us:
                self._iv_min_us = latency_us
            if self._iv_max_us is None or latency_us > self._iv_max_us:
                self._iv_max_us = latency_us

    @staticmethod
    def _percentile_us(
        buckets: list[int], count: int, max_us: int, fraction: float
    ) -> float:
        """Smallest bucket (in µs) covering the nearest-rank percentile.

        A percentile that falls into the overflow bucket reports the
        observed maximum rather than pretending the distribution ends at
        the last regular bucket.
        """
        target = nearest_rank(fraction, count)
        seen = 0
        for bucket_ms, bucket_count in enumerate(buckets):
            seen += bucket_count
            if seen >= target:
                return float(bucket_ms) * 1000.0
        return float(max_us)

    def summary(self) -> MeasurementSummary:
        with self._lock:
            if self._count == 0:
                return MeasurementSummary(self.operation, return_codes=dict(self._return_codes))
            buckets = list(self._buckets)
            count, total = self._count, self._total_us
            min_us, max_us = self._min_us or 0, self._max_us or 0
            codes = dict(self._return_codes)
        return MeasurementSummary(
            operation=self.operation,
            count=count,
            average_us=total / count,
            min_us=min_us,
            max_us=max_us,
            percentile_95_us=self._percentile_us(buckets, count, max_us, 0.95),
            percentile_99_us=self._percentile_us(buckets, count, max_us, 0.99),
            return_codes=codes,
        )

    def interval_summary(self) -> MeasurementSummary:
        with self._lock:
            delta = [
                current - previous
                for current, previous in zip(self._buckets, self._iv_buckets)
            ]
            count = self._count - self._iv_base_count
            total = self._iv_total_us
            min_us = self._iv_min_us or 0
            max_us = self._iv_max_us or 0
            self._iv_buckets = list(self._buckets)
            self._iv_base_count = self._count
            self._iv_total_us = 0
            self._iv_min_us = None
            self._iv_max_us = None
        if count == 0:
            return MeasurementSummary(self.operation)
        return MeasurementSummary(
            operation=self.operation,
            count=count,
            average_us=total / count,
            min_us=min_us,
            max_us=max_us,
            percentile_95_us=self._percentile_us(delta, count, max_us, 0.95),
            percentile_99_us=self._percentile_us(delta, count, max_us, 0.99),
        )

    # -- merge & serialisation -------------------------------------------------

    def merge_from(self, other: "OneMeasurement") -> None:
        if not isinstance(other, HistogramMeasurement):
            raise ValueError(
                f"cannot merge {type(other).__name__} into HistogramMeasurement"
            )
        with other._lock:
            if len(other._buckets) != len(self._buckets):
                raise ValueError(
                    "cannot merge histograms with different bucket counts "
                    f"({len(other._buckets)} vs {len(self._buckets)})"
                )
            buckets = list(other._buckets)
            overflow, count, total = other._overflow, other._count, other._total_us
            min_us, max_us = other._min_us, other._max_us
            codes = dict(other._return_codes)
        with self._lock:
            for index, slot in enumerate(buckets):
                self._buckets[index] += slot
            self._overflow += overflow
            self._count += count
            self._total_us += total
            if min_us is not None and (self._min_us is None or min_us < self._min_us):
                self._min_us = min_us
            if max_us is not None and (self._max_us is None or max_us > self._max_us):
                self._max_us = max_us
        self._absorb_return_codes(codes)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "type": "histogram",
                "operation": self.operation,
                "bucket_count": len(self._buckets),
                "buckets": list(self._buckets),
                "overflow": self._overflow,
                "count": self._count,
                "total_us": self._total_us,
                "min_us": self._min_us,
                "max_us": self._max_us,
                "return_codes": dict(self._return_codes),
            }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramMeasurement":
        instance = cls(data["operation"], buckets=data["bucket_count"])
        instance._buckets = list(data["buckets"])
        instance._iv_buckets = [0] * len(instance._buckets)
        instance._overflow = data["overflow"]
        instance._count = data["count"]
        instance._total_us = data["total_us"]
        instance._min_us = data["min_us"]
        instance._max_us = data["max_us"]
        instance._return_codes = dict(data["return_codes"])
        return instance


class RawMeasurement(OneMeasurement):
    """Stores every sample; exact percentiles at O(n) memory."""

    def __init__(self, operation: str):
        super().__init__(operation)
        self._samples: list[int] = []
        self._iv_start = 0

    def measure(self, latency_us: int) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        with self._lock:
            self._samples.append(latency_us)

    def samples(self) -> list[int]:
        with self._lock:
            return list(self._samples)

    @staticmethod
    def _percentile(ordered: list[int], fraction: float) -> float:
        if not ordered:
            return 0.0
        rank = nearest_rank(fraction, len(ordered))
        return float(ordered[min(rank, len(ordered)) - 1])

    @classmethod
    def _summarize(cls, operation: str, samples: list[int], codes: dict[str, int]):
        if not samples:
            return MeasurementSummary(operation, return_codes=codes)
        ordered = sorted(samples)
        return MeasurementSummary(
            operation=operation,
            count=len(ordered),
            average_us=sum(ordered) / len(ordered),
            min_us=ordered[0],
            max_us=ordered[-1],
            percentile_95_us=cls._percentile(ordered, 0.95),
            percentile_99_us=cls._percentile(ordered, 0.99),
            return_codes=codes,
        )

    def summary(self) -> MeasurementSummary:
        with self._lock:
            samples = list(self._samples)
            codes = dict(self._return_codes)
        return self._summarize(self.operation, samples, codes)

    def interval_summary(self) -> MeasurementSummary:
        with self._lock:
            window = self._samples[self._iv_start :]
            self._iv_start = len(self._samples)
        return self._summarize(self.operation, window, {})

    # -- merge & serialisation -------------------------------------------------

    def merge_from(self, other: "OneMeasurement") -> None:
        if not isinstance(other, RawMeasurement):
            raise ValueError(f"cannot merge {type(other).__name__} into RawMeasurement")
        with other._lock:
            samples = list(other._samples)
            codes = dict(other._return_codes)
        with self._lock:
            self._samples.extend(samples)
        self._absorb_return_codes(codes)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "type": "raw",
                "operation": self.operation,
                "samples": list(self._samples),
                "return_codes": dict(self._return_codes),
            }

    @classmethod
    def from_dict(cls, data: dict) -> "RawMeasurement":
        instance = cls(data["operation"])
        instance._samples = list(data["samples"])
        instance._return_codes = dict(data["return_codes"])
        return instance
