"""Latency measurement containers.

YCSB's default measurement type is a fixed-bucket histogram with one bucket
per millisecond up to ``histogram.buckets`` (default 1000), plus an overflow
bucket; latencies are recorded in microseconds.  ``measurementtype=raw``
keeps every sample instead, which is exact but unbounded.  Both are
implemented here behind a single :class:`OneMeasurement` interface.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

__all__ = [
    "MeasurementSummary",
    "OneMeasurement",
    "HistogramMeasurement",
    "RawMeasurement",
]


@dataclass
class MeasurementSummary:
    """Aggregated view of one operation's latency series.

    Latencies are microseconds throughout, matching the paper's output
    (Listing 3 prints ``AverageLatency(us)`` etc.).
    """

    operation: str
    count: int = 0
    average_us: float = 0.0
    min_us: int = 0
    max_us: int = 0
    percentile_95_us: float = 0.0
    percentile_99_us: float = 0.0
    return_codes: dict[str, int] = field(default_factory=dict)

    @property
    def total_us(self) -> float:
        return self.average_us * self.count


class OneMeasurement(ABC):
    """Collects the latency series and return codes for one operation."""

    def __init__(self, operation: str):
        self.operation = operation
        self._lock = threading.Lock()
        self._return_codes: dict[str, int] = {}

    def report_status(self, code_name: str) -> None:
        """Count one occurrence of return code ``code_name``."""
        with self._lock:
            self._return_codes[code_name] = self._return_codes.get(code_name, 0) + 1

    def return_codes(self) -> dict[str, int]:
        with self._lock:
            return dict(self._return_codes)

    @abstractmethod
    def measure(self, latency_us: int) -> None:
        """Record one latency sample, in microseconds."""

    @abstractmethod
    def summary(self) -> MeasurementSummary:
        """Aggregate everything recorded so far."""


class HistogramMeasurement(OneMeasurement):
    """Fixed-bucket histogram: one bucket per millisecond.

    Percentiles are therefore accurate to 1 ms; min/max/average are exact.
    Memory is O(buckets) regardless of sample count, which is what lets
    YCSB run million-operation benchmarks cheaply.
    """

    def __init__(self, operation: str, buckets: int = 1000):
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        super().__init__(operation)
        self._buckets = [0] * buckets
        self._overflow = 0
        self._count = 0
        self._total_us = 0
        self._min_us: int | None = None
        self._max_us: int | None = None

    def measure(self, latency_us: int) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        bucket = latency_us // 1000
        with self._lock:
            if bucket < len(self._buckets):
                self._buckets[bucket] += 1
            else:
                self._overflow += 1
            self._count += 1
            self._total_us += latency_us
            if self._min_us is None or latency_us < self._min_us:
                self._min_us = latency_us
            if self._max_us is None or latency_us > self._max_us:
                self._max_us = latency_us

    def _percentile_ms(self, fraction: float) -> float:
        """Smallest bucket (in ms) covering ``fraction`` of the samples."""
        target = fraction * self._count
        seen = 0
        for bucket_ms, count in enumerate(self._buckets):
            seen += count
            if seen >= target:
                return float(bucket_ms)
        return float(len(self._buckets))

    def summary(self) -> MeasurementSummary:
        with self._lock:
            if self._count == 0:
                return MeasurementSummary(self.operation, return_codes=dict(self._return_codes))
            return MeasurementSummary(
                operation=self.operation,
                count=self._count,
                average_us=self._total_us / self._count,
                min_us=self._min_us or 0,
                max_us=self._max_us or 0,
                percentile_95_us=self._percentile_ms(0.95) * 1000.0,
                percentile_99_us=self._percentile_ms(0.99) * 1000.0,
                return_codes=dict(self._return_codes),
            )


class RawMeasurement(OneMeasurement):
    """Stores every sample; exact percentiles at O(n) memory."""

    def __init__(self, operation: str):
        super().__init__(operation)
        self._samples: list[int] = []

    def measure(self, latency_us: int) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        with self._lock:
            self._samples.append(latency_us)

    def samples(self) -> list[int]:
        with self._lock:
            return list(self._samples)

    @staticmethod
    def _percentile(ordered: list[int], fraction: float) -> float:
        if not ordered:
            return 0.0
        # Nearest-rank percentile on the sorted series.
        rank = max(1, int(round(fraction * len(ordered))))
        return float(ordered[min(rank, len(ordered)) - 1])

    def summary(self) -> MeasurementSummary:
        with self._lock:
            samples = sorted(self._samples)
            codes = dict(self._return_codes)
        if not samples:
            return MeasurementSummary(self.operation, return_codes=codes)
        return MeasurementSummary(
            operation=self.operation,
            count=len(samples),
            average_us=sum(samples) / len(samples),
            min_us=samples[0],
            max_us=samples[-1],
            percentile_95_us=self._percentile(samples, 0.95),
            percentile_99_us=self._percentile(samples, 0.99),
            return_codes=codes,
        )
