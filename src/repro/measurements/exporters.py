"""Measurement exporters.

The text exporter reproduces the YCSB report format shown in Listing 3 of
the paper: ``[SECTION], Metric, value`` lines, one block per operation type,
preceded by the ``[OVERALL]`` block and — for validating workloads — the
validation block (``[TOTAL CASH]``, ``[COUNTED CASH]``, ``[ACTUAL
OPERATIONS]``, ``[ANOMALY SCORE]``).  JSON and CSV exporters carry the same
data for programmatic consumption.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from .histogram import MeasurementSummary
from .live import StatusSnapshot
from .registry import Measurements
from .timeseries import ThroughputWindow

__all__ = [
    "RunReport",
    "TextExporter",
    "JsonExporter",
    "CsvExporter",
    "JsonLinesExporter",
]


@dataclass
class RunReport:
    """Everything an exporter needs about a finished benchmark run.

    Attributes:
        run_time_ms: wall-clock duration of the measured phase.
        operations: number of operations (or transactions) completed.
        throughput: operations per second over the measured phase.
        summaries: per-operation latency summaries keyed by name.
        validation: ordered extra sections emitted *before* the overall
            block, e.g. the CEW validation result.  Each entry is a
            ``(section, value)`` pair rendered as ``[SECTION], value``.
        validation_passed: None when the workload has no validation stage.
        counters: run counters (retries, injected faults), rendered as
            ``[NAME], Count, value`` lines after the overall block.
        windows: interval throughput windows (``status.interval`` runs).
        intervals: live-status interval snapshots (latency trajectories);
            empty unless the run had the status thread enabled.
    """

    run_time_ms: float
    operations: int
    throughput: float
    summaries: dict[str, MeasurementSummary] = field(default_factory=dict)
    validation: list[tuple[str, Any]] = field(default_factory=list)
    validation_passed: bool | None = None
    counters: dict[str, int] = field(default_factory=dict)
    windows: list[ThroughputWindow] = field(default_factory=list)
    intervals: list[StatusSnapshot] = field(default_factory=list)

    @classmethod
    def from_measurements(
        cls,
        measurements: Measurements,
        run_time_ms: float,
        operations: int,
        validation: Iterable[tuple[str, Any]] = (),
        validation_passed: bool | None = None,
        windows: Iterable[ThroughputWindow] = (),
        intervals: Iterable[StatusSnapshot] = (),
    ) -> "RunReport":
        seconds = run_time_ms / 1000.0
        throughput = operations / seconds if seconds > 0 else 0.0
        return cls(
            run_time_ms=run_time_ms,
            operations=operations,
            throughput=throughput,
            summaries=measurements.summaries(),
            validation=list(validation),
            validation_passed=validation_passed,
            counters=measurements.counters(),
            windows=list(windows),
            intervals=list(intervals),
        )


def _format_number(value: Any) -> str:
    """Numbers print like Java's ``String.valueOf`` (Listing 3 style)."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        return repr(value)
    return str(value)


class TextExporter:
    """Renders a :class:`RunReport` in the YCSB ``[OP], metric, value`` form."""

    def __init__(self, include_percentiles: bool = True):
        self._include_percentiles = include_percentiles

    def export(self, report: RunReport) -> str:
        lines: list[str] = []
        if report.validation_passed is False:
            lines.append("Validation failed")
        for section, value in report.validation:
            lines.append(f"[{section}], {_format_number(value)}")
        if report.validation_passed is False:
            lines.append("Database validation failed")
        elif report.validation_passed is True:
            lines.append("Database validation passed")
        lines.append(f"[OVERALL], RunTime(ms), {_format_number(report.run_time_ms)}")
        lines.append(f"[OVERALL], Throughput(ops/sec), {_format_number(report.throughput)}")
        for name in sorted(report.counters):
            lines.append(f"[{name}], Count, {report.counters[name]}")
        for name, summary in report.summaries.items():
            lines.extend(self._operation_block(name, summary))
        return "\n".join(lines) + "\n"

    def _operation_block(self, name: str, summary: MeasurementSummary) -> list[str]:
        block = [
            f"[{name}], Operations, {summary.count}",
            f"[{name}], AverageLatency(us), {_format_number(summary.average_us)}",
            f"[{name}], MinLatency(us), {summary.min_us}",
            f"[{name}], MaxLatency(us), {summary.max_us}",
        ]
        if self._include_percentiles:
            block.append(
                f"[{name}], 95thPercentileLatency(us), "
                f"{_format_number(summary.percentile_95_us)}"
            )
            block.append(
                f"[{name}], 99thPercentileLatency(us), "
                f"{_format_number(summary.percentile_99_us)}"
            )
        for code_name, count in sorted(summary.return_codes.items()):
            block.append(f"[{name}], Return={code_name}, {count}")
        return block


def _summary_dict(summary: MeasurementSummary) -> Mapping[str, Any]:
    return {
        "operations": summary.count,
        "average_latency_us": summary.average_us,
        "min_latency_us": summary.min_us,
        "max_latency_us": summary.max_us,
        "p95_latency_us": summary.percentile_95_us,
        "p99_latency_us": summary.percentile_99_us,
        "return_codes": summary.return_codes,
    }


def _window_dict(window: ThroughputWindow) -> Mapping[str, Any]:
    return {
        "start_offset_s": window.start_offset_s,
        "operations": window.operations,
        "ops_per_second": window.ops_per_second,
    }


def _interval_dict(snapshot: StatusSnapshot) -> Mapping[str, Any]:
    return {
        "elapsed_s": snapshot.elapsed_s,
        "operations": snapshot.operations,
        "interval_operations": snapshot.interval_operations,
        "ops_per_second": snapshot.ops_per_second,
        "latencies": {
            latency.operation: {
                "count": latency.count,
                "average_us": latency.average_us,
                "p95_us": latency.p95_us,
                "p99_us": latency.p99_us,
            }
            for latency in snapshot.latencies
        },
    }


class JsonExporter:
    """Renders a :class:`RunReport` as a JSON document.

    Interval data (``windows``, ``intervals``) appears only when the run
    collected it, so reports from runs without the status thread are
    unchanged.
    """

    def export(self, report: RunReport) -> str:
        document = {
            "overall": {
                "run_time_ms": report.run_time_ms,
                "operations": report.operations,
                "throughput_ops_sec": report.throughput,
            },
            "validation": {
                "passed": report.validation_passed,
                "fields": {section: value for section, value in report.validation},
            },
            "counters": dict(report.counters),
            "operations": {
                name: _summary_dict(summary) for name, summary in report.summaries.items()
            },
        }
        if report.windows:
            document["windows"] = [_window_dict(window) for window in report.windows]
        if report.intervals:
            document["intervals"] = [_interval_dict(snap) for snap in report.intervals]
        return json.dumps(document, indent=2, sort_keys=True)


class JsonLinesExporter:
    """Renders a :class:`RunReport` as a JSON-lines time series.

    One self-describing object per line (``record`` discriminates), so
    ``BENCH_*.json``-style trajectories can be produced by appending the
    per-phase output — no parsing state needed:

    * ``overall`` — phase totals (always first),
    * ``validation`` — when the workload has a validation stage,
    * ``counter`` — one per run counter, name-sorted,
    * ``operation`` — one per operation summary, insertion order,
    * ``window`` — one per throughput window (``status.interval`` runs),
    * ``interval`` — one per live-status latency snapshot.
    """

    def __init__(self, phase: str | None = None):
        self._phase = phase

    def _line(self, record: str, payload: Mapping[str, Any]) -> str:
        document: dict[str, Any] = {"record": record}
        if self._phase is not None:
            document["phase"] = self._phase
        document.update(payload)
        return json.dumps(document, sort_keys=True)

    def export(self, report: RunReport) -> str:
        lines = [
            self._line(
                "overall",
                {
                    "run_time_ms": report.run_time_ms,
                    "operations": report.operations,
                    "throughput_ops_sec": report.throughput,
                },
            )
        ]
        if report.validation_passed is not None or report.validation:
            lines.append(
                self._line(
                    "validation",
                    {
                        "passed": report.validation_passed,
                        "fields": {section: value for section, value in report.validation},
                    },
                )
            )
        for name in sorted(report.counters):
            lines.append(self._line("counter", {"name": name, "value": report.counters[name]}))
        for name, summary in report.summaries.items():
            lines.append(self._line("operation", {"operation": name, **_summary_dict(summary)}))
        for window in report.windows:
            lines.append(self._line("window", _window_dict(window)))
        for snapshot in report.intervals:
            lines.append(self._line("interval", _interval_dict(snapshot)))
        return "\n".join(lines) + "\n"


class CsvExporter:
    """Renders per-operation summaries as CSV rows.

    Columns: operation, count, avg/min/max/p95/p99 latency (us), ok, failed.
    """

    HEADER = (
        "operation",
        "operations",
        "avg_latency_us",
        "min_latency_us",
        "max_latency_us",
        "p95_latency_us",
        "p99_latency_us",
        "ok",
        "failed",
    )

    def export(self, report: RunReport) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.HEADER)
        for name, summary in report.summaries.items():
            ok = summary.return_codes.get("OK", 0)
            failed = sum(count for code, count in summary.return_codes.items() if code != "OK")
            writer.writerow(
                (
                    name,
                    summary.count,
                    f"{summary.average_us:.3f}",
                    summary.min_us,
                    summary.max_us,
                    f"{summary.percentile_95_us:.1f}",
                    f"{summary.percentile_99_us:.1f}",
                    ok,
                    failed,
                )
            )
        return buffer.getvalue()
