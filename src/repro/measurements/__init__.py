"""Latency measurement, aggregation, live status, and report export (Tiers 1 & 5)."""

from .exporters import (
    CsvExporter,
    JsonExporter,
    JsonLinesExporter,
    RunReport,
    TextExporter,
)
from .hdr import HdrHistogramMeasurement
from .histogram import (
    HistogramMeasurement,
    MeasurementSummary,
    OneMeasurement,
    RawMeasurement,
    nearest_rank,
)
from .live import IntervalLatency, StatusReporter, StatusSnapshot
from .registry import (
    DEFAULT_MEASUREMENT_TYPE,
    MEASUREMENT_TYPES,
    Measurements,
    StopWatch,
)
from .timeseries import ThroughputTimeSeries, ThroughputWindow

__all__ = [
    "CsvExporter",
    "JsonExporter",
    "JsonLinesExporter",
    "RunReport",
    "TextExporter",
    "HdrHistogramMeasurement",
    "HistogramMeasurement",
    "MeasurementSummary",
    "OneMeasurement",
    "RawMeasurement",
    "nearest_rank",
    "IntervalLatency",
    "StatusReporter",
    "StatusSnapshot",
    "DEFAULT_MEASUREMENT_TYPE",
    "MEASUREMENT_TYPES",
    "Measurements",
    "StopWatch",
    "ThroughputTimeSeries",
    "ThroughputWindow",
]
