"""Latency measurement, aggregation, and report export (Tiers 1 & 5)."""

from .exporters import CsvExporter, JsonExporter, RunReport, TextExporter
from .histogram import (
    HistogramMeasurement,
    MeasurementSummary,
    OneMeasurement,
    RawMeasurement,
)
from .registry import Measurements, StopWatch
from .timeseries import ThroughputTimeSeries, ThroughputWindow

__all__ = [
    "CsvExporter",
    "JsonExporter",
    "RunReport",
    "TextExporter",
    "HistogramMeasurement",
    "MeasurementSummary",
    "OneMeasurement",
    "RawMeasurement",
    "Measurements",
    "StopWatch",
    "ThroughputTimeSeries",
    "ThroughputWindow",
]
