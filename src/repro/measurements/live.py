"""Live benchmark status: YCSB ``-s``-style interval reporting.

While a phase runs, a daemon thread wakes every ``status.interval``
seconds, drains the per-operation *interval* latency windows from the
measurement registry (:meth:`Measurements.interval_summaries`), and

* prints one human-readable line per interval (operations done, current
  ops/sec, interval p95/p99 per operation) to the configured sink, and
* appends a structured :class:`StatusSnapshot` so the same data can be
  exported mechanically (JSON-lines time series) after the run.

The reporter never touches the cumulative summaries, so a run with the
status thread enabled produces byte-identical report blocks to one
without it — only the interval side-channel is added.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, TextIO

from .registry import Measurements

__all__ = ["IntervalLatency", "StatusSnapshot", "StatusReporter"]


@dataclass(frozen=True, slots=True)
class IntervalLatency:
    """One operation's latency digest over a single status interval."""

    operation: str
    count: int
    average_us: float
    p95_us: float
    p99_us: float


@dataclass(frozen=True, slots=True)
class StatusSnapshot:
    """Everything one status interval observed."""

    elapsed_s: float
    operations: int  #: cumulative completed client operations
    interval_operations: int
    ops_per_second: float  #: over this interval
    latencies: tuple[IntervalLatency, ...]


class StatusReporter:
    """Periodic status thread over a shared measurement registry.

    Args:
        measurements: registry the client threads record into.
        operation_counter: returns the cumulative completed-operation
            count (typically ``ThroughputTimeSeries.total_operations``).
        interval_s: seconds between status lines.
        phase: label printed at the start of every line.
        sink: where lines go (``None`` silences printing but still
            collects snapshots).
        clock: monotonic clock, injectable for tests.
    """

    def __init__(
        self,
        measurements: Measurements,
        operation_counter: Callable[[], int],
        interval_s: float = 1.0,
        phase: str = "run",
        sink: TextIO | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self._measurements = measurements
        self._counter = operation_counter
        self._interval_s = interval_s
        self._phase = phase
        self._sink = sink
        self._clock = clock
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None
        self._last_total = 0
        self._last_at: float | None = None
        self.snapshots: list[StatusSnapshot] = []

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._started_at = self._last_at = self._clock()
        self._thread = threading.Thread(
            target=self._loop, name=f"ycsbt-status-{self._phase}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread, emitting one final interval so short runs
        (and the tail of long ones) are never silently dropped."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.tick()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval_s):
            self.tick()

    # -- one interval ---------------------------------------------------------

    def tick(self) -> StatusSnapshot:
        """Take one interval snapshot (called from the loop; public for tests)."""
        now = self._clock()
        elapsed = now - (self._started_at if self._started_at is not None else now)
        window_s = now - (self._last_at if self._last_at is not None else now)
        total = self._counter()
        interval_ops = total - self._last_total
        self._last_total = total
        self._last_at = now
        ops_per_second = interval_ops / window_s if window_s > 0 else 0.0
        latencies = tuple(
            IntervalLatency(
                operation=name,
                count=summary.count,
                average_us=summary.average_us,
                p95_us=summary.percentile_95_us,
                p99_us=summary.percentile_99_us,
            )
            for name, summary in self._measurements.interval_summaries().items()
            if summary.count > 0
        )
        snapshot = StatusSnapshot(
            elapsed_s=elapsed,
            operations=total,
            interval_operations=interval_ops,
            ops_per_second=ops_per_second,
            latencies=latencies,
        )
        self.snapshots.append(snapshot)
        if self._sink is not None:
            self._sink.write(format_status_line(self._phase, snapshot) + "\n")
            try:
                self._sink.flush()
            except (AttributeError, ValueError):
                pass  # sink has no flush, or is already closed
        return snapshot


def format_status_line(phase: str, snapshot: StatusSnapshot) -> str:
    """Render one YCSB ``-s``-style interval line."""
    parts = [
        f"[{phase}] {snapshot.elapsed_s:.0f} sec: {snapshot.operations} operations; "
        f"{snapshot.ops_per_second:.1f} current ops/sec"
    ]
    for latency in snapshot.latencies:
        parts.append(
            f"{latency.operation} p95={latency.p95_us:.0f}us p99={latency.p99_us:.0f}us"
        )
    return "; ".join(parts)
