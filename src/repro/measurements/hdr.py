"""Streaming log-bucketed latency histogram (HdrHistogram-style).

The fixed 1 ms-bucket histogram quantises every percentile to a
millisecond, which makes sub-millisecond runs report p95 = 0 µs.  This
module replaces it with the log-linear bucketing scheme of Gil Tene's
HdrHistogram: values are split into power-of-two *buckets*, each divided
into ``sub_bucket_count`` linear *sub-buckets*, so every recorded value
lands in a slot whose width is at most ``2 / sub_bucket_count`` of its
magnitude.  With the default two significant decimal digits
(``sub_bucket_count = 256``) the worst-case relative error of any
reported percentile is under 0.8 %, values below 256 µs are recorded
exactly, and memory stays O(log(max) · sub_bucket_count) — a few
kilobytes — regardless of sample count.

The container also keeps an *interval* view (used by the live status
thread): :meth:`HdrHistogramMeasurement.interval_summary` returns the
distribution of samples recorded since the previous call, computed from
a counts-array diff, without disturbing the cumulative summary.
"""

from __future__ import annotations

import math

from .histogram import MeasurementSummary, OneMeasurement, nearest_rank

__all__ = ["HdrHistogramMeasurement"]


class HdrHistogramMeasurement(OneMeasurement):
    """Log-bucketed histogram with bounded relative error.

    Args:
        operation: operation name the series belongs to.
        significant_digits: decimal digits of value precision (1-5).
            Percentile relative error is bounded by
            ``1 / 10^significant_digits`` (the sub-bucket count is the
            next power of two above ``2 · 10^digits``).
    """

    def __init__(self, operation: str, significant_digits: int = 2):
        if not 1 <= significant_digits <= 5:
            raise ValueError(
                f"significant_digits must be in 1..5, got {significant_digits}"
            )
        super().__init__(operation)
        self.significant_digits = significant_digits
        sub_bucket_count = 1 << math.ceil(math.log2(2 * 10**significant_digits))
        self._sub_bucket_bits = sub_bucket_count.bit_length() - 1
        self._sub_bucket_half = sub_bucket_count // 2
        self._counts: list[int] = []
        self._count = 0
        self._total_us = 0
        self._min_us: int | None = None
        self._max_us: int | None = None
        # Interval (since-last-snapshot) state for the status thread.
        self._iv_counts: list[int] = []
        self._iv_base_count = 0
        self._iv_total_us = 0
        self._iv_min_us: int | None = None
        self._iv_max_us: int | None = None

    # -- indexing -------------------------------------------------------------

    def _index_for(self, value_us: int) -> int:
        bucket = max(0, value_us.bit_length() - self._sub_bucket_bits)
        sub = value_us >> bucket
        if bucket == 0:
            return sub
        return (bucket + 1) * self._sub_bucket_half + (sub - self._sub_bucket_half)

    def _highest_equivalent(self, index: int) -> int:
        """Largest value that maps to slot ``index``."""
        if index < 2 * self._sub_bucket_half:
            return index
        bucket = index // self._sub_bucket_half - 1
        sub = index - (bucket + 1) * self._sub_bucket_half + self._sub_bucket_half
        return ((sub + 1) << bucket) - 1

    @property
    def slot_count(self) -> int:
        """Allocated counts-array length (the O(buckets) memory bound)."""
        with self._lock:
            return len(self._counts)

    # -- recording ------------------------------------------------------------

    def measure(self, latency_us: int) -> None:
        if latency_us < 0:
            raise ValueError(f"negative latency {latency_us}")
        index = self._index_for(latency_us)
        with self._lock:
            if index >= len(self._counts):
                self._counts.extend([0] * (index + 1 - len(self._counts)))
            self._counts[index] += 1
            self._count += 1
            self._total_us += latency_us
            if self._min_us is None or latency_us < self._min_us:
                self._min_us = latency_us
            if self._max_us is None or latency_us > self._max_us:
                self._max_us = latency_us
            self._iv_total_us += latency_us
            if self._iv_min_us is None or latency_us < self._iv_min_us:
                self._iv_min_us = latency_us
            if self._iv_max_us is None or latency_us > self._iv_max_us:
                self._iv_max_us = latency_us

    # -- aggregation ----------------------------------------------------------

    def _percentile_us(
        self, counts: list[int], count: int, max_us: int, fraction: float
    ) -> float:
        """Value at the nearest-rank percentile, clamped to the observed max."""
        target = nearest_rank(fraction, count)
        seen = 0
        for index, slot in enumerate(counts):
            if not slot:
                continue
            seen += slot
            if seen >= target:
                return float(min(self._highest_equivalent(index), max_us))
        return float(max_us)

    def summary(self) -> MeasurementSummary:
        with self._lock:
            if self._count == 0:
                return MeasurementSummary(self.operation, return_codes=dict(self._return_codes))
            counts = list(self._counts)
            count, total = self._count, self._total_us
            min_us, max_us = self._min_us or 0, self._max_us or 0
            codes = dict(self._return_codes)
        return MeasurementSummary(
            operation=self.operation,
            count=count,
            average_us=total / count,
            min_us=min_us,
            max_us=max_us,
            percentile_95_us=self._percentile_us(counts, count, max_us, 0.95),
            percentile_99_us=self._percentile_us(counts, count, max_us, 0.99),
            return_codes=codes,
        )

    def percentile_us(self, fraction: float) -> float:
        """Value at an arbitrary percentile of the cumulative distribution."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        with self._lock:
            counts = list(self._counts)
            count, max_us = self._count, self._max_us or 0
        if count == 0:
            return 0.0
        return self._percentile_us(counts, count, max_us, fraction)

    # -- merge & serialisation -------------------------------------------------

    def merge_from(self, other: "OneMeasurement") -> None:
        """Fold another HDR histogram in, losslessly.

        Two histograms with the same ``significant_digits`` share slot
        boundaries exactly, so merging is elementwise count addition: the
        merged histogram is *identical* to one that had recorded both
        sample streams directly.
        """
        if not isinstance(other, HdrHistogramMeasurement):
            raise ValueError(
                f"cannot merge {type(other).__name__} into HdrHistogramMeasurement"
            )
        if other.significant_digits != self.significant_digits:
            raise ValueError(
                "cannot merge HDR histograms with different precision "
                f"({other.significant_digits} vs {self.significant_digits} digits)"
            )
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._total_us
            min_us, max_us = other._min_us, other._max_us
            codes = dict(other._return_codes)
        with self._lock:
            if len(counts) > len(self._counts):
                self._counts.extend([0] * (len(counts) - len(self._counts)))
            for index, slot in enumerate(counts):
                self._counts[index] += slot
            self._count += count
            self._total_us += total
            if min_us is not None and (self._min_us is None or min_us < self._min_us):
                self._min_us = min_us
            if max_us is not None and (self._max_us is None or max_us > self._max_us):
                self._max_us = max_us
        self._absorb_return_codes(codes)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "type": "hdrhistogram",
                "operation": self.operation,
                "significant_digits": self.significant_digits,
                "counts": list(self._counts),
                "count": self._count,
                "total_us": self._total_us,
                "min_us": self._min_us,
                "max_us": self._max_us,
                "return_codes": dict(self._return_codes),
            }

    @classmethod
    def from_dict(cls, data: dict) -> "HdrHistogramMeasurement":
        instance = cls(data["operation"], significant_digits=data["significant_digits"])
        instance._counts = list(data["counts"])
        instance._count = data["count"]
        instance._total_us = data["total_us"]
        instance._min_us = data["min_us"]
        instance._max_us = data["max_us"]
        instance._return_codes = dict(data["return_codes"])
        return instance

    def interval_summary(self) -> MeasurementSummary:
        with self._lock:
            delta = [
                current - (self._iv_counts[i] if i < len(self._iv_counts) else 0)
                for i, current in enumerate(self._counts)
            ]
            count = self._count - self._iv_base_count
            total = self._iv_total_us
            min_us = self._iv_min_us or 0
            max_us = self._iv_max_us or 0
            self._iv_counts = list(self._counts)
            self._iv_base_count = self._count
            self._iv_total_us = 0
            self._iv_min_us = None
            self._iv_max_us = None
        if count == 0:
            return MeasurementSummary(self.operation)
        return MeasurementSummary(
            operation=self.operation,
            count=count,
            average_us=total / count,
            min_us=min_us,
            max_us=max_us,
            percentile_95_us=self._percentile_us(delta, count, max_us, 0.95),
            percentile_99_us=self._percentile_us(delta, count, max_us, 0.99),
        )
