"""Thread-safe registry of per-operation measurements.

One :class:`Measurements` object exists per benchmark run.  Client threads
call :meth:`Measurements.measure` / :meth:`Measurements.report_status` from
the hot path; the registry lazily creates one measurement container per
operation name ("READ", "TX-READ", "COMMIT", ...).
"""

from __future__ import annotations

import threading

from .hdr import HdrHistogramMeasurement
from ..sim.clock import ambient_perf_counter_ns
from .histogram import HistogramMeasurement, MeasurementSummary, OneMeasurement, RawMeasurement

__all__ = ["Measurements", "StopWatch", "MEASUREMENT_TYPES", "DEFAULT_MEASUREMENT_TYPE"]

#: Accepted ``measurementtype`` property values.
MEASUREMENT_TYPES = ("hdrhistogram", "histogram", "raw")
#: The streaming log-bucketed histogram: microsecond resolution, bounded memory.
DEFAULT_MEASUREMENT_TYPE = "hdrhistogram"


class Measurements:
    """Collects latencies and return codes for every operation type.

    Args:
        measurement_type: ``"hdrhistogram"`` (the default: log-bucketed
            streaming histogram, microsecond resolution, bounded memory),
            ``"histogram"`` (YCSB's classic fixed 1 ms buckets) or
            ``"raw"`` (every sample kept; exact but unbounded).
        histogram_buckets: bucket count for histogram mode; the paper's
            Listing 2 sets ``histogram.buckets=0`` which YCSB treats as
            "use the default", reproduced here.
        hdr_digits: significant decimal digits for hdrhistogram mode
            (percentile relative error bound ``10^-digits``).
    """

    def __init__(
        self,
        measurement_type: str = DEFAULT_MEASUREMENT_TYPE,
        histogram_buckets: int = 1000,
        hdr_digits: int = 2,
    ):
        if measurement_type not in MEASUREMENT_TYPES:
            raise ValueError(f"unknown measurement type {measurement_type!r}")
        self._type = measurement_type
        self._buckets = histogram_buckets if histogram_buckets > 0 else 1000
        self._hdr_digits = hdr_digits
        self._lock = threading.Lock()
        self._measurements: dict[str, OneMeasurement] = {}
        self._counters: dict[str, int] = {}

    @property
    def measurement_type(self) -> str:
        return self._type

    @classmethod
    def from_properties(cls, properties) -> "Measurements":
        """Build a registry from benchmark properties.

        Reads ``measurementtype``, ``histogram.buckets`` and
        ``hdrhistogram.digits``; single source of truth for every phase
        entry point (client, CLI, harness).
        """
        return cls(
            measurement_type=properties.get_str("measurementtype", DEFAULT_MEASUREMENT_TYPE),
            histogram_buckets=properties.get_int("histogram.buckets", 1000),
            hdr_digits=properties.get_int("hdrhistogram.digits", 2),
        )

    def _get(self, operation: str) -> OneMeasurement:
        # Double-checked creation: the common case is a hit without the lock.
        found = self._measurements.get(operation)
        if found is not None:
            return found
        with self._lock:
            found = self._measurements.get(operation)
            if found is None:
                if self._type == "raw":
                    found = RawMeasurement(operation)
                elif self._type == "histogram":
                    found = HistogramMeasurement(operation, self._buckets)
                else:
                    found = HdrHistogramMeasurement(operation, self._hdr_digits)
                self._measurements[operation] = found
            return found

    def measure(self, operation: str, latency_us: int) -> None:
        """Record one latency sample for ``operation``."""
        self._get(operation).measure(latency_us)

    def report_status(self, operation: str, code_name: str) -> None:
        """Record one return code for ``operation``."""
        self._get(operation).report_status(code_name)

    # -- run counters (retries, injected faults, ...) ------------------------

    def increment(self, counter: str, amount: int = 1) -> None:
        """Add ``amount`` to the named run counter."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def set_counter(self, counter: str, value: int) -> None:
        """Overwrite a run counter with a cumulative snapshot value.

        Retry/fault sources keep their own cumulative totals; phases that
        share one registry (load then run) re-snapshot rather than sum,
        so the reported number is the process-lifetime total, not double
        counted.
        """
        with self._lock:
            self._counters[counter] = int(value)

    def counter(self, counter: str) -> int:
        with self._lock:
            return self._counters.get(counter, 0)

    def counters(self) -> dict[str, int]:
        """Snapshot of every run counter, keyed by name."""
        with self._lock:
            return dict(self._counters)

    def operations(self) -> list[str]:
        """Operation names observed so far, in first-seen order."""
        with self._lock:
            return list(self._measurements)

    def summaries(self) -> dict[str, MeasurementSummary]:
        """Summaries of every operation, keyed by name."""
        with self._lock:
            containers = dict(self._measurements)
        return {name: container.summary() for name, container in containers.items()}

    def interval_summaries(self) -> dict[str, MeasurementSummary]:
        """Per-operation summaries of the samples since the previous call.

        Consumes the interval window of every container — intended for a
        single periodic consumer (the live status thread).  Operations
        with no samples this interval report ``count == 0``.
        """
        with self._lock:
            containers = dict(self._measurements)
        return {name: container.interval_summary() for name, container in containers.items()}

    def summary_for(self, operation: str) -> MeasurementSummary:
        """Summary of one operation (empty summary if never observed)."""
        with self._lock:
            container = self._measurements.get(operation)
        if container is None:
            return MeasurementSummary(operation)
        return container.summary()

    # -- merge & serialisation (scale-out result aggregation) ------------------

    def merge_from(self, other: "Measurements") -> None:
        """Fold another registry's samples and counters into this one.

        Per-operation containers merge pairwise (HDR histograms of equal
        precision merge losslessly); counters are summed — each worker
        process kept its own cumulative totals, so across processes the
        run total is the sum.
        """
        with other._lock:
            containers = dict(other._measurements)
            counters = dict(other._counters)
        for operation, container in containers.items():
            self._get(operation).merge_from(container)
        with self._lock:
            for counter, value in counters.items():
                self._counters[counter] = self._counters.get(counter, 0) + value

    def to_dict(self) -> dict:
        """JSON-safe snapshot of the whole registry."""
        with self._lock:
            containers = dict(self._measurements)
            counters = dict(self._counters)
        return {
            "measurement_type": self._type,
            "histogram_buckets": self._buckets,
            "hdr_digits": self._hdr_digits,
            "operations": {name: c.to_dict() for name, c in containers.items()},
            "counters": counters,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Measurements":
        instance = cls(
            measurement_type=data["measurement_type"],
            histogram_buckets=data["histogram_buckets"],
            hdr_digits=data["hdr_digits"],
        )
        decoders = {
            "hdrhistogram": HdrHistogramMeasurement.from_dict,
            "histogram": HistogramMeasurement.from_dict,
            "raw": RawMeasurement.from_dict,
        }
        for name, payload in data["operations"].items():
            instance._measurements[name] = decoders[payload["type"]](payload)
        instance._counters = dict(data["counters"])
        return instance


class StopWatch:
    """Microsecond stopwatch for the measurement hot path.

    ``perf_counter_ns`` is monotonic and the cheapest high-resolution clock
    CPython exposes.
    """

    __slots__ = ("_start_ns", "_clock_ns")

    def __init__(self, clock_ns=ambient_perf_counter_ns) -> None:
        self._clock_ns = clock_ns
        self._start_ns = clock_ns()

    def restart(self) -> None:
        self._start_ns = self._clock_ns()

    def elapsed_us(self) -> int:
        return (self._clock_ns() - self._start_ns) // 1000
