"""Thread-safe registry of per-operation measurements.

One :class:`Measurements` object exists per benchmark run.  Client threads
call :meth:`Measurements.measure` / :meth:`Measurements.report_status` from
the hot path; the registry lazily creates one measurement container per
operation name ("READ", "TX-READ", "COMMIT", ...).
"""

from __future__ import annotations

import threading
import time

from .histogram import HistogramMeasurement, MeasurementSummary, OneMeasurement, RawMeasurement

__all__ = ["Measurements", "StopWatch"]


class Measurements:
    """Collects latencies and return codes for every operation type.

    Args:
        measurement_type: ``"histogram"`` (bounded memory, ms-resolution
            percentiles — YCSB's default) or ``"raw"`` (every sample kept).
        histogram_buckets: bucket count for histogram mode; the paper's
            Listing 2 sets ``histogram.buckets=0`` which YCSB treats as
            "use the default", reproduced here.
    """

    def __init__(self, measurement_type: str = "histogram", histogram_buckets: int = 1000):
        if measurement_type not in ("histogram", "raw"):
            raise ValueError(f"unknown measurement type {measurement_type!r}")
        self._type = measurement_type
        self._buckets = histogram_buckets if histogram_buckets > 0 else 1000
        self._lock = threading.Lock()
        self._measurements: dict[str, OneMeasurement] = {}
        self._counters: dict[str, int] = {}

    def _get(self, operation: str) -> OneMeasurement:
        # Double-checked creation: the common case is a hit without the lock.
        found = self._measurements.get(operation)
        if found is not None:
            return found
        with self._lock:
            found = self._measurements.get(operation)
            if found is None:
                if self._type == "raw":
                    found = RawMeasurement(operation)
                else:
                    found = HistogramMeasurement(operation, self._buckets)
                self._measurements[operation] = found
            return found

    def measure(self, operation: str, latency_us: int) -> None:
        """Record one latency sample for ``operation``."""
        self._get(operation).measure(latency_us)

    def report_status(self, operation: str, code_name: str) -> None:
        """Record one return code for ``operation``."""
        self._get(operation).report_status(code_name)

    # -- run counters (retries, injected faults, ...) ------------------------

    def increment(self, counter: str, amount: int = 1) -> None:
        """Add ``amount`` to the named run counter."""
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + amount

    def set_counter(self, counter: str, value: int) -> None:
        """Overwrite a run counter with a cumulative snapshot value.

        Retry/fault sources keep their own cumulative totals; phases that
        share one registry (load then run) re-snapshot rather than sum,
        so the reported number is the process-lifetime total, not double
        counted.
        """
        with self._lock:
            self._counters[counter] = int(value)

    def counter(self, counter: str) -> int:
        with self._lock:
            return self._counters.get(counter, 0)

    def counters(self) -> dict[str, int]:
        """Snapshot of every run counter, keyed by name."""
        with self._lock:
            return dict(self._counters)

    def operations(self) -> list[str]:
        """Operation names observed so far, in first-seen order."""
        with self._lock:
            return list(self._measurements)

    def summaries(self) -> dict[str, MeasurementSummary]:
        """Summaries of every operation, keyed by name."""
        with self._lock:
            containers = dict(self._measurements)
        return {name: container.summary() for name, container in containers.items()}

    def summary_for(self, operation: str) -> MeasurementSummary:
        """Summary of one operation (empty summary if never observed)."""
        with self._lock:
            container = self._measurements.get(operation)
        if container is None:
            return MeasurementSummary(operation)
        return container.summary()


class StopWatch:
    """Microsecond stopwatch for the measurement hot path.

    ``perf_counter_ns`` is monotonic and the cheapest high-resolution clock
    CPython exposes.
    """

    __slots__ = ("_start_ns",)

    def __init__(self) -> None:
        self._start_ns = time.perf_counter_ns()

    def restart(self) -> None:
        self._start_ns = time.perf_counter_ns()

    def elapsed_us(self) -> int:
        return (time.perf_counter_ns() - self._start_ns) // 1000
