"""Windowed throughput time series.

YCSB's ``-s`` flag prints interval throughput while the benchmark runs;
the same data reveals warm-up effects, throttling plateaus and GC-like
stalls.  :class:`ThroughputTimeSeries` aggregates completed operations
into fixed wall-clock windows with O(windows) memory.

For open-ended runs — a synthesized campaign can span a simulated day at
millions of operations — ``max_windows`` bounds the memory to O(1): when
the window list would exceed the cap, adjacent windows are merged
pairwise and the window width doubles, so the series always covers the
whole run at the finest resolution the cap allows (a classic decimating
ring, the same trick HDR histograms use for value ranges).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..sim.clock import ambient_monotonic

__all__ = ["ThroughputWindow", "ThroughputTimeSeries"]


@dataclass(frozen=True, slots=True)
class ThroughputWindow:
    """One completed measurement window."""

    start_offset_s: float
    operations: int
    ops_per_second: float


class ThroughputTimeSeries:
    """Counts operations into consecutive windows of ``window_s`` seconds."""

    def __init__(
        self,
        window_s: float = 1.0,
        clock=ambient_monotonic,
        max_windows: int | None = None,
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if max_windows is not None and max_windows < 2:
            raise ValueError(f"max_windows must be >= 2, got {max_windows}")
        self._window_s = window_s
        self._max_windows = max_windows
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at: float | None = None
        self._counts: list[int] = []

    @property
    def window_s(self) -> float:
        """Current window width (doubles when a bounded series decimates)."""
        with self._lock:
            return self._window_s

    @property
    def max_windows(self) -> int | None:
        return self._max_windows

    def _halve_locked(self) -> None:
        """Merge adjacent window pairs; the window width doubles."""
        counts = self._counts
        self._counts = [
            counts[i] + (counts[i + 1] if i + 1 < len(counts) else 0)
            for i in range(0, len(counts), 2)
        ]
        self._window_s *= 2.0

    @classmethod
    def from_window_counts(cls, window_s: float, counts: list[int]) -> "ThroughputTimeSeries":
        """Rebuild a series from serialised per-window counts."""
        instance = cls(window_s)
        instance._counts = [int(count) for count in counts]
        if instance._counts:
            instance._started_at = 0.0
        return instance

    def window_counts(self) -> list[int]:
        """Per-window operation counts (the serialisable representation)."""
        with self._lock:
            return list(self._counts)

    def merge_from(self, other: "ThroughputTimeSeries") -> None:
        """Add another series' window counts, aligned by window index.

        Workers start each phase at a shared coordination barrier, so
        window *i* of every worker covers the same wall-clock interval;
        merging is elementwise addition.
        """
        if other.window_s != self.window_s:
            raise ValueError(
                f"cannot merge series with window {other.window_s}s into {self.window_s}s"
            )
        counts = other.window_counts()
        with self._lock:
            if self._started_at is None and counts:
                self._started_at = 0.0
            while len(self._counts) < len(counts):
                self._counts.append(0)
            for index, count in enumerate(counts):
                self._counts[index] += count

    def record(self, operations: int = 1) -> None:
        """Count ``operations`` completions at the current time."""
        now = self._clock()
        with self._lock:
            if self._started_at is None:
                self._started_at = now
            index = int((now - self._started_at) / self._window_s)
            if self._max_windows is not None:
                # Decimate *before* extending so the list never exceeds
                # the cap, even transiently.
                while index >= self._max_windows:
                    self._halve_locked()
                    index = int((now - self._started_at) / self._window_s)
            while len(self._counts) <= index:
                self._counts.append(0)
            self._counts[index] += operations

    def windows(self) -> list[ThroughputWindow]:
        """All windows so far (the last one may still be filling)."""
        with self._lock:
            counts = list(self._counts)
            window_s = self._window_s
        return [
            ThroughputWindow(
                start_offset_s=index * window_s,
                operations=count,
                ops_per_second=count / window_s,
            )
            for index, count in enumerate(counts)
        ]

    def total_operations(self) -> int:
        with self._lock:
            return sum(self._counts)

    def peak_ops_per_second(self) -> float:
        """Highest single-window throughput (0.0 before any data)."""
        windows = self.windows()
        if not windows:
            return 0.0
        return max(window.ops_per_second for window in windows)
